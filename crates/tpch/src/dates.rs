//! TPC-H date handling: civil dates as days since 1992-01-01.

/// Days since 1992-01-01 (the start of the TPC-H date range).
pub type Date = i32;

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// `date(y, m, d)` → days since 1992-01-01. Supports 1992..=1999.
pub fn date(year: i32, month: i32, day: i32) -> Date {
    assert!((1992..=1999).contains(&year), "year {year} outside TPC-H range");
    assert!((1..=12).contains(&month));
    assert!((1..=31).contains(&day));
    let mut days = 0;
    for y in 1992..year {
        days += if is_leap(y) { 366 } else { 365 };
    }
    for m in 1..month {
        days += DAYS_IN_MONTH[(m - 1) as usize];
        if m == 2 && is_leap(year) {
            days += 1;
        }
    }
    days + day - 1
}

/// The year a date falls in.
pub fn year_of(d: Date) -> i32 {
    let mut year = 1992;
    let mut rem = d;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if rem < len {
            return year;
        }
        rem -= len;
        year += 1;
    }
}

/// Last representable date (1998-12-31).
pub fn max_date() -> Date {
    date(1998, 12, 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date(1992, 1, 1), 0);
    }

    #[test]
    fn leap_years_counted() {
        // 1992 is a leap year: 366 days to 1993-01-01.
        assert_eq!(date(1993, 1, 1), 366);
        assert_eq!(date(1992, 3, 1), 31 + 29);
    }

    #[test]
    fn known_interval() {
        // Q1's threshold: 1998-12-01 minus 90 days.
        let t = date(1998, 12, 1) - 90;
        assert!(t > date(1998, 1, 1));
        assert!(t < date(1998, 12, 1));
    }

    #[test]
    fn year_of_round_trips() {
        for (y, m, d) in [(1992, 1, 1), (1994, 6, 15), (1996, 2, 29), (1998, 12, 31)] {
            assert_eq!(year_of(date(y, m, d)), y, "{y}-{m}-{d}");
        }
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(date(1994, 1, 1) < date(1995, 1, 1));
        assert!(date(1995, 12, 31) < date(1996, 1, 1));
    }
}
