//! # hape-tpch — TPC-H substrate
//!
//! A dbgen-equivalent generator at configurable scale factor, plus the
//! paper's evaluation queries (§6.4) as engine plans: Q1 and Q6 (scan-bound
//! aggregations) and Q5 and Q9* (join-heavy; Q9 per the paper runs without
//! the `LIKE` condition and the join to the filtered `part` table).
//!
//! Every query also has a naive reference evaluator used by the tests to
//! validate engine results bit-for-bit across CPU-only / GPU-only / hybrid
//! placements.

#![forbid(unsafe_code)]

pub mod dates;
pub mod events;
pub mod gen;
pub mod queries;
pub mod reference;

pub use dates::{date, Date};
pub use events::{behavioral_queries, events_catalog, generate_events};
pub use gen::{generate, TpchData};
pub use queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};
pub use reference::{q1_reference, q5_reference, q6_reference, q9_reference};

/// Commonly used items.
pub mod prelude {
    pub use crate::events::{behavioral_queries, events_catalog, generate_events};
    pub use crate::gen::{generate, TpchData};
    pub use crate::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};
}
