//! The paper's TPC-H queries as logical [`Query`]s (§6.4).
//!
//! Q1 and Q6 are scan-bound aggregations (they "stress the interconnect and
//! memory bandwidth utilization"); Q5 and Q9* are join-heavy. Q9 follows the
//! paper: no `LIKE` condition and no join to the filtered `part` table.
//!
//! The queries are written against *named columns* of the base tables in
//! [`base_catalog`]; lowering derives the per-query columnar projections
//! automatically (each scan reads exactly the referenced columns, so scan
//! and transfer costs are charged on exactly the touched bytes — what the
//! old hand-maintained `prepare_catalog` projections did manually).
//!
//! The paper's hybrid Q9 — hash tables exceed GPU memory, so the heavy
//! lineitem⋈orders join runs as the §5 co-processing join while the CPU
//! materialises the lineitem-side intermediate ("the cornerstone for
//! evaluating Q9") — no longer needs a hand-written runner: the cost-based
//! optimizer plans it as a first-class co-processing stage. Execute
//! [`q9_query`] under `Placement::Auto` and the placed plan carries a
//! `PlacedStage::CoProcess` the engine drives through its device
//! providers.

use hape_core::{Catalog, JoinAlgo, Query};
use hape_ops::{col, lit, AggFunc};

use crate::dates::date;
use crate::gen::TpchData;

/// Register the base tables in a catalog.
///
/// Queries reference columns by name; lowering pushes the per-query
/// projections down onto these tables as zero-copy views.
pub fn base_catalog(data: &TpchData) -> Catalog {
    let mut c = Catalog::new();
    c.register(data.lineitem.clone());
    c.register(data.orders.clone());
    c.register(data.customer.clone());
    c.register(data.supplier.clone());
    c.register(data.partsupp.clone());
    c.register(data.nation.clone());
    c.register(data.region.clone());
    c
}

/// TPC-H Q1: pricing summary report.
pub fn q1_query() -> Query {
    let threshold = date(1998, 12, 1) - 90;
    let disc_price = col("l_extendedprice").mul(lit(1.0).sub(col("l_discount")));
    Query::new("Q1")
        .from_table("lineitem")
        .filter(col("l_shipdate").le(lit(threshold)))
        .group_by(&["l_returnflag", "l_linestatus"])
        .agg(vec![
            (AggFunc::Sum, col("l_quantity")),
            (AggFunc::Sum, col("l_extendedprice")),
            (AggFunc::Sum, disc_price.clone()),
            (AggFunc::Sum, disc_price.mul(lit(1.0).add(col("l_tax")))),
            (AggFunc::Avg, col("l_quantity")),
            (AggFunc::Avg, col("l_extendedprice")),
            (AggFunc::Avg, col("l_discount")),
            (AggFunc::Count, col("l_quantity")),
        ])
}

/// TPC-H Q6: forecasting revenue change.
pub fn q6_query() -> Query {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    Query::new("Q6")
        .from_table("lineitem")
        .filter(
            col("l_shipdate").between(lit(lo), lit(hi)).and(
                col("l_discount")
                    .ge(lit(0.0499))
                    .and(col("l_discount").le(lit(0.0701)))
                    .and(col("l_quantity").lt(lit(24.0))),
            ),
        )
        .agg(vec![(AggFunc::Sum, col("l_extendedprice").mul(col("l_discount")))])
}

/// TPC-H Q5: local supplier volume (region = ASIA, orders of 1994), with
/// `algo` selecting the GPU join flavour (the Figure 9 toggle).
///
/// The `"ASIA"` literal resolves through the region dictionary during
/// lowering — no manual code lookup.
pub fn q5_query(algo: JoinAlgo) -> Query {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    let asia_regions = Query::scan("region").filter(col("r_name").eq(lit("ASIA")));
    let asia_nations =
        Query::scan("nation").join(asia_regions, "n_regionkey", "r_regionkey", algo);
    let customers =
        Query::scan("customer").join(asia_nations.clone(), "c_nationkey", "n_nationkey", algo);
    let orders = Query::scan("orders")
        .filter(col("o_orderdate").between(lit(lo), lit(hi)))
        .join(customers, "o_custkey", "c_custkey", algo);
    let suppliers =
        Query::scan("supplier").join(asia_nations, "s_nationkey", "n_nationkey", algo);
    Query::new("Q5")
        .from_table("lineitem")
        .join(orders, "l_orderkey", "o_orderkey", algo)
        .join(suppliers, "l_suppkey", "s_suppkey", algo)
        // Customer and supplier in the same nation.
        .filter(col("c_nationkey").eq(col("s_nationkey")))
        .group_by(&["n_name"])
        .agg(vec![(AggFunc::Sum, col("l_extendedprice").mul(lit(1.0).sub(col("l_discount"))))])
}

/// TPC-H Q9* (no LIKE / no part join, as run in the paper): product-type
/// profit by nation and year.
pub fn q9_query(algo: JoinAlgo) -> Query {
    Query::new("Q9*")
        .from_table("lineitem")
        .join(Query::scan("partsupp"), "l_pskey", "ps_pskey", algo)
        .join(q9_suppliers(algo), "l_suppkey", "s_suppkey", algo)
        .join(Query::scan("orders"), "l_orderkey", "o_orderkey", algo)
        .group_by(&["n_name", "o_year"])
        .agg(vec![(
            AggFunc::Sum,
            // price*(1-disc) - supplycost*qty
            col("l_extendedprice")
                .mul(lit(1.0).sub(col("l_discount")))
                .sub(col("ps_supplycost").mul(col("l_quantity"))),
        )])
}

/// Suppliers with their nation name attached — Q9's build side.
fn q9_suppliers(algo: JoinAlgo) -> Query {
    Query::scan("supplier").join(Query::scan("nation"), "s_nationkey", "n_nationkey", algo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::reference;
    use hape_core::{Engine, ExecConfig, Placement};
    use hape_sim::topology::Server;

    #[test]
    fn q1_matches_reference_on_cpu() {
        let data = generate(0.002, 11);
        let catalog = base_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let q1 = q1_query().lower(&catalog).unwrap();
        let rep =
            engine.run(&q1.catalog, &q1.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let reference = reference::q1_reference(&data);
        assert!(
            reference::rows_approx_eq(&rep.rows, &reference),
            "{:?}\n{:?}",
            rep.rows,
            reference
        );
        assert_eq!(rep.rows.len(), 4); // A/F, N/F, N/O, R/F
    }

    #[test]
    fn q1_projection_is_pushed_down() {
        let data = generate(0.002, 11);
        let catalog = base_catalog(&data);
        let q1 = q1_query().lower(&catalog).unwrap();
        // The lineitem scan reads exactly the 7 referenced columns.
        let view = q1.catalog.get("Q1.lineitem").expect("projected lineitem view");
        assert_eq!(view.schema.len(), 7);
        assert!(view.schema.contains("l_shipdate"));
        assert!(!view.schema.contains("l_orderkey"));
    }

    #[test]
    fn q5_shared_asia_chain_builds_once() {
        use hape_core::plan::Stage;
        let data = generate(0.002, 13);
        let catalog = base_catalog(&data);
        let q5 = q5_query(JoinAlgo::NonPartitioned).lower(&catalog).unwrap();
        // The ASIA-nations chain (region → nation) is shared by the
        // customer and supplier sub-queries; the structural-hash memo
        // lowers it once: 5 builds + 1 stream, no `#2` duplicates.
        assert_eq!(q5.plan.stages.len(), 6);
        let builds: Vec<&str> = q5
            .plan
            .stages
            .iter()
            .filter_map(|s| match s {
                Stage::Build { name, .. } => Some(name.as_str()),
                Stage::Stream { .. } => None,
            })
            .collect();
        assert_eq!(
            builds,
            vec!["Q5.region", "Q5.nation", "Q5.customer", "Q5.orders", "Q5.supplier"]
        );
        // Both the customer and the supplier builds probe the one shared
        // nation table.
        let probes_nation = |i: usize| -> bool {
            let Stage::Build { pipeline, .. } = &q5.plan.stages[i] else { return false };
            pipeline.tables_probed() == vec!["Q5.nation"]
        };
        assert!(probes_nation(2), "customer probes the shared nation table");
        assert!(probes_nation(4), "supplier probes the shared nation table");
    }

    #[test]
    fn q5_payloads_ride_the_latest_providing_join() {
        use hape_core::plan::{PipeOp, Stage};
        let data = generate(0.002, 13);
        let catalog = base_catalog(&data);
        let q5 = q5_query(JoinAlgo::NonPartitioned).lower(&catalog).unwrap();
        // The paper's hand-written plan shape: the orders join carries only
        // c_nationkey; n_name rides the small supplier build (not the whole
        // orders→customers→nations chain).
        let Some(Stage::Stream { pipeline }) = q5.plan.stages.last() else {
            panic!("stream stage last");
        };
        let probes: Vec<&PipeOp> =
            pipeline.ops.iter().filter(|op| matches!(op, PipeOp::JoinProbe { .. })).collect();
        assert_eq!(probes.len(), 2);
        let PipeOp::JoinProbe { build_payload_cols: orders_payload, .. } = probes[0] else {
            unreachable!()
        };
        let PipeOp::JoinProbe { build_payload_cols: supplier_payload, .. } = probes[1] else {
            unreachable!()
        };
        assert_eq!(orders_payload.len(), 1, "orders join carries only c_nationkey");
        assert_eq!(supplier_payload.len(), 2, "supplier join carries s_nationkey + n_name");
    }

    #[test]
    fn q6_matches_reference_all_placements() {
        let data = generate(0.002, 12);
        let catalog = base_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q6_reference(&data);
        let q6 = q6_query().lower(&catalog).unwrap();
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine.run(&q6.catalog, &q6.plan, &ExecConfig::new(placement)).unwrap();
            assert!(
                reference::rows_approx_eq(&rep.rows, &reference),
                "{placement:?}: {:?} vs {reference:?}",
                rep.rows
            );
        }
    }

    #[test]
    fn q5_matches_reference() {
        let data = generate(0.002, 13);
        let catalog = base_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q5_reference(&data);
        for algo in [JoinAlgo::NonPartitioned, JoinAlgo::Partitioned] {
            let q5 = q5_query(algo).lower(&catalog).unwrap();
            let rep =
                engine.run(&q5.catalog, &q5.plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
            assert!(
                reference::rows_approx_eq(&rep.rows, &reference),
                "{algo:?}: {:?} vs {reference:?}",
                rep.rows
            );
        }
    }

    #[test]
    fn q9_matches_reference_on_cpu_and_under_auto() {
        let data = generate(0.002, 14);
        let catalog = base_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q9_reference(&data);
        let q9 = q9_query(JoinAlgo::NonPartitioned).lower(&catalog).unwrap();
        let rep =
            engine.run(&q9.catalog, &q9.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        assert!(reference::rows_approx_eq(&rep.rows, &reference));
        // Auto replaces the old hand-written hybrid runner: whatever mode
        // the optimizer picks on this (full-memory) server must agree.
        let auto =
            engine.run(&q9.catalog, &q9.plan, &ExecConfig::new(Placement::Auto)).unwrap();
        assert!(
            reference::rows_approx_eq(&auto.rows, &reference),
            "{:?} vs {reference:?}",
            auto.rows
        );
    }
}
