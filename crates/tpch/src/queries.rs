//! The paper's TPC-H queries as engine plans (§6.4).
//!
//! Q1 and Q6 are scan-bound aggregations (they "stress the interconnect and
//! memory bandwidth utilization"); Q5 and Q9* are join-heavy. Q9 follows the
//! paper: no `LIKE` condition and no join to the filtered `part` table.
//!
//! [`run_q9_hybrid`] implements the paper's hybrid Q9: the plan's hash
//! tables exceed GPU memory, so the heavy lineitem⋈orders join runs as the
//! §5 co-processing join while the CPU materialises the lineitem-side
//! intermediate — "the cornerstone for evaluating Q9".

use hape_core::engine::EngineError;
use hape_core::provider::TableStore;
use hape_core::{Catalog, Engine, JoinAlgo, Pipeline, QueryPlan, Stage};
use hape_join::{coprocess_join, CoprocessConfig, JoinInput, OutputMode};
use hape_ops::{AggFunc, AggSpec, Expr, GroupKey};
use hape_sim::{CpuCostModel, SimTime};

use crate::dates::date;
use crate::gen::TpchData;

/// Register the query-specific columnar projections in a catalog.
///
/// A columnar engine only reads referenced columns; we make that explicit
/// by registering per-query projections of the base tables, so scan and
/// transfer costs are charged on exactly the touched bytes.
pub fn prepare_catalog(data: &TpchData) -> Catalog {
    let mut c = Catalog::new();
    c.register_as(
        "lineitem_q1",
        data.lineitem.project(&[
            "l_shipdate",
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ]),
    );
    c.register_as(
        "lineitem_q6",
        data.lineitem.project(&["l_shipdate", "l_quantity", "l_discount", "l_extendedprice"]),
    );
    c.register_as(
        "lineitem_q5",
        data.lineitem.project(&["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"]),
    );
    c.register_as(
        "lineitem_q9",
        data.lineitem.project(&[
            "l_orderkey",
            "l_pskey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ]),
    );
    c.register_as("orders_q5", data.orders.project(&["o_orderkey", "o_custkey", "o_orderdate"]));
    c.register_as("orders_q9", data.orders.project(&["o_orderkey", "o_year"]));
    c.register_as("customer", data.customer.clone());
    c.register_as("supplier", data.supplier.clone());
    c.register_as("partsupp", data.partsupp.clone());
    c.register_as("nation", data.nation.clone());
    c.register_as("region", data.region.clone());
    c
}

/// TPC-H Q1: pricing summary report.
pub fn q1_plan() -> QueryPlan {
    let threshold = date(1998, 12, 1) - 90;
    QueryPlan::new(
        "Q1",
        vec![Stage::Stream {
            pipeline: Pipeline::scan("lineitem_q1")
                .filter(Expr::le(Expr::col(0), Expr::LitI32(threshold)))
                .aggregate(AggSpec::grouped(
                    vec![1, 2], // returnflag, linestatus
                    vec![
                        (AggFunc::Sum, Expr::col(3)),
                        (AggFunc::Sum, Expr::col(4)),
                        (
                            AggFunc::Sum,
                            Expr::mul(
                                Expr::col(4),
                                Expr::sub(Expr::LitF64(1.0), Expr::col(5)),
                            ),
                        ),
                        (
                            AggFunc::Sum,
                            Expr::mul(
                                Expr::mul(
                                    Expr::col(4),
                                    Expr::sub(Expr::LitF64(1.0), Expr::col(5)),
                                ),
                                Expr::add(Expr::LitF64(1.0), Expr::col(6)),
                            ),
                        ),
                        (AggFunc::Avg, Expr::col(3)),
                        (AggFunc::Avg, Expr::col(4)),
                        (AggFunc::Avg, Expr::col(5)),
                        (AggFunc::Count, Expr::col(3)),
                    ],
                )),
        }],
    )
}

/// TPC-H Q6: forecasting revenue change.
pub fn q6_plan() -> QueryPlan {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    QueryPlan::new(
        "Q6",
        vec![Stage::Stream {
            pipeline: Pipeline::scan("lineitem_q6")
                .filter(Expr::and(
                    Expr::and(
                        Expr::ge(Expr::col(0), Expr::LitI32(lo)),
                        Expr::lt(Expr::col(0), Expr::LitI32(hi)),
                    ),
                    Expr::and(
                        Expr::and(
                            Expr::ge(Expr::col(2), Expr::LitF64(0.0499)),
                            Expr::le(Expr::col(2), Expr::LitF64(0.0701)),
                        ),
                        Expr::lt(Expr::col(1), Expr::LitF64(24.0)),
                    ),
                ))
                .aggregate(AggSpec::ungrouped(vec![(
                    AggFunc::Sum,
                    Expr::mul(Expr::col(3), Expr::col(2)),
                )])),
        }],
    )
}

/// TPC-H Q5: local supplier volume (region = ASIA, orders of 1994), with
/// `algo` selecting the GPU join flavour (the Figure 9 toggle).
pub fn q5_plan(data: &TpchData, algo: JoinAlgo) -> QueryPlan {
    let asia = data
        .region
        .column("r_name")
        .dict()
        .expect("region dictionary")
        .code_of("ASIA")
        .expect("ASIA region") as i32;
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    QueryPlan::new(
        "Q5",
        vec![
            Stage::Build {
                name: "q5_region".into(),
                key_col: 0,
                pipeline: Pipeline::scan("region")
                    .filter(Expr::eq(Expr::col(1), Expr::LitI32(asia))),
            },
            Stage::Build {
                name: "q5_nation".into(),
                key_col: 0,
                // nation ⋈ region (keeps ASIA nations): (nationkey, regionkey, name)
                pipeline: Pipeline::scan("nation").join("q5_region", 1, vec![], algo),
            },
            Stage::Build {
                name: "q5_customer".into(),
                key_col: 0,
                // customers of ASIA nations: (custkey, nationkey)
                pipeline: Pipeline::scan("customer").join("q5_nation", 1, vec![], algo),
            },
            Stage::Build {
                name: "q5_orders".into(),
                key_col: 0,
                // 1994 orders by those customers: (+ c_nationkey payload)
                pipeline: Pipeline::scan("orders_q5")
                    .filter(Expr::and(
                        Expr::ge(Expr::col(2), Expr::LitI32(lo)),
                        Expr::lt(Expr::col(2), Expr::LitI32(hi)),
                    ))
                    .join("q5_customer", 1, vec![1], algo),
            },
            Stage::Build {
                name: "q5_supplier".into(),
                key_col: 0,
                // ASIA suppliers with their nation name: (suppkey, nationkey, n_name)
                pipeline: Pipeline::scan("supplier").join("q5_nation", 1, vec![2], algo),
            },
            Stage::Stream {
                pipeline: Pipeline::scan("lineitem_q5")
                    // + c_nationkey
                    .join("q5_orders", 0, vec![3], algo)
                    // + s_nationkey, n_name
                    .join("q5_supplier", 1, vec![1, 2], algo)
                    // customer and supplier in the same nation
                    .filter(Expr::eq(Expr::col(4), Expr::col(5)))
                    .aggregate(AggSpec::grouped(
                        vec![6], // n_name
                        vec![(
                            AggFunc::Sum,
                            Expr::mul(
                                Expr::col(2),
                                Expr::sub(Expr::LitF64(1.0), Expr::col(3)),
                            ),
                        )],
                    )),
            },
        ],
    )
}

/// TPC-H Q9* (no LIKE / no part join, as run in the paper): product-type
/// profit by nation and year.
pub fn q9_plan(algo: JoinAlgo) -> QueryPlan {
    QueryPlan::new(
        "Q9*",
        vec![
            Stage::Build {
                name: "q9_nation".into(),
                key_col: 0,
                pipeline: Pipeline::scan("nation"),
            },
            Stage::Build {
                name: "q9_supplier".into(),
                key_col: 0,
                // (suppkey, nationkey, n_name)
                pipeline: Pipeline::scan("supplier").join("q9_nation", 1, vec![2], algo),
            },
            Stage::Build {
                name: "q9_partsupp".into(),
                key_col: 0,
                pipeline: Pipeline::scan("partsupp"),
            },
            Stage::Build {
                name: "q9_orders".into(),
                key_col: 0,
                pipeline: Pipeline::scan("orders_q9"),
            },
            Stage::Stream {
                pipeline: Pipeline::scan("lineitem_q9")
                    // + ps_supplycost
                    .join("q9_partsupp", 1, vec![2], algo)
                    // + n_name
                    .join("q9_supplier", 2, vec![2], algo)
                    // + o_year
                    .join("q9_orders", 0, vec![1], algo)
                    .aggregate(AggSpec::grouped(
                        vec![7, 8], // n_name, o_year
                        vec![(
                            AggFunc::Sum,
                            // price*(1-disc) - supplycost*qty
                            Expr::sub(
                                Expr::mul(
                                    Expr::col(4),
                                    Expr::sub(Expr::LitF64(1.0), Expr::col(5)),
                                ),
                                Expr::mul(Expr::col(6), Expr::col(3)),
                            ),
                        )],
                    )),
            },
        ],
    )
}

/// Result of the hybrid Q9 run.
#[derive(Debug, Clone)]
pub struct Q9HybridReport {
    /// Aggregated rows, same shape as the engine's Q9 output.
    pub rows: Vec<(GroupKey, Vec<f64>)>,
    /// End-to-end simulated time.
    pub time: SimTime,
    /// Time of the CPU-side intermediate materialisation.
    pub intermediate_time: SimTime,
    /// Time of the co-processed lineitem⋈orders join.
    pub coprocess_time: SimTime,
}

/// Run Q9 in hybrid mode: the plan's hash tables exceed GPU memory
/// (GPU-only fails — §6.4), so the engine materialises the lineitem-side
/// intermediate on the CPUs and runs the big intermediate⋈orders join as
/// the §5 co-processing join across all GPUs.
pub fn run_q9_hybrid(
    engine: &Engine,
    catalog: &Catalog,
    data: &TpchData,
) -> Result<Q9HybridReport, EngineError> {
    let mut tables = TableStore::new();
    let mut clock = SimTime::ZERO;

    // CPU-side builds for the small tables.
    let (nation, end, _) = engine.build_join_table(
        catalog,
        &Pipeline::scan("nation"),
        0,
        &tables,
        clock,
    )?;
    tables.insert("q9_nation".into(), nation);
    clock = end;
    let (supplier, end, _) = engine.build_join_table(
        catalog,
        &Pipeline::scan("supplier").join("q9_nation", 1, vec![2], JoinAlgo::NonPartitioned),
        0,
        &tables,
        clock,
    )?;
    tables.insert("q9_supplier".into(), supplier);
    clock = end;
    let (partsupp, end, _) = engine.build_join_table(
        catalog,
        &Pipeline::scan("partsupp"),
        0,
        &tables,
        clock,
    )?;
    tables.insert("q9_partsupp".into(), partsupp);
    clock = end;

    // Materialise lineitem ⋈ partsupp ⋈ supplier on the CPUs:
    // (l_orderkey, .., qty, price, disc, supplycost, n_name).
    let inter_pipeline = Pipeline::scan("lineitem_q9")
        .join("q9_partsupp", 1, vec![2], JoinAlgo::NonPartitioned)
        .join("q9_supplier", 2, vec![2], JoinAlgo::NonPartitioned);
    let (inter, inter_end, _) =
        engine.materialize_cpu(catalog, &inter_pipeline, &tables, clock)?;
    let intermediate_time = inter_end;

    // Co-processed join: intermediate ⋈ orders on o_orderkey.
    let inter_keys: Vec<i32> = inter.col(0).as_i32().to_vec();
    let inter_vals: Vec<u32> = (0..inter.rows() as u32).collect();
    let order_keys: Vec<i32> = data.orders.column("o_orderkey").as_i32().to_vec();
    let order_vals: Vec<u32> = (0..order_keys.len() as u32).collect();
    let cfg = CoprocessConfig {
        n_gpus: engine.server.gpus.len().max(1),
        cpu_workers: engine.server.total_cpu_cores(),
        mode: OutputMode::MatchIndices,
        ..Default::default()
    };
    let cop = coprocess_join(
        &engine.server,
        JoinInput::new(&order_keys, &order_vals),
        JoinInput::new(&inter_keys, &inter_vals),
        &cfg,
    )
    .expect("co-processing join failed");
    let coprocess_time = cop.outcome.time;

    // Final aggregation over the match pairs (CPU side, trivially cheap
    // relative to the join).
    let (order_rows, inter_rows) = cop.outcome.pairs.as_ref().expect("match indices");
    let o_year = data.orders.column("o_year").as_i32();
    let qty = inter.col(3).as_i32();
    let price = inter.col(4).as_f64();
    let disc = inter.col(5).as_f64();
    let cost = inter.col(6).as_f64();
    let names = inter.col(7).as_codes();
    let mut groups: std::collections::HashMap<GroupKey, f64> =
        std::collections::HashMap::new();
    for (&o, &i) in order_rows.iter().zip(inter_rows) {
        let (o, i) = (o as usize, i as usize);
        let amount = price[i] * (1.0 - disc[i]) - cost[i] * qty[i] as f64;
        let key: GroupKey = [names[i] as i64, o_year[o] as i64, 0, 0];
        *groups.entry(key).or_insert(0.0) += amount;
    }
    let mut rows: Vec<(GroupKey, Vec<f64>)> =
        groups.into_iter().map(|(k, v)| (k, vec![v])).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let model = CpuCostModel::new(engine.server.cpus[0].clone(), engine.server.cpus[0].cores);
    let agg_time = model.random_accesses(order_rows.len() as u64, 1 << 16)
        / (engine.server.total_cpu_cores() as f64 * 0.9);

    Ok(Q9HybridReport {
        rows,
        time: inter_end + coprocess_time + agg_time,
        intermediate_time,
        coprocess_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::reference;
    use hape_core::{ExecConfig, Placement};
    use hape_sim::topology::Server;

    #[test]
    fn q1_matches_reference_on_cpu() {
        let data = generate(0.002, 11);
        let catalog = prepare_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let rep = engine.run(&catalog, &q1_plan(), &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let reference = reference::q1_reference(&data);
        assert!(reference::rows_approx_eq(&rep.rows, &reference), "{:?}\n{:?}", rep.rows, reference);
        assert_eq!(rep.rows.len(), 4); // A/F, N/F, N/O, R/F
    }

    #[test]
    fn q6_matches_reference_all_placements() {
        let data = generate(0.002, 12);
        let catalog = prepare_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q6_reference(&data);
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine.run(&catalog, &q6_plan(), &ExecConfig::new(placement)).unwrap();
            assert!(
                reference::rows_approx_eq(&rep.rows, &reference),
                "{placement:?}: {:?} vs {reference:?}",
                rep.rows
            );
        }
    }

    #[test]
    fn q5_matches_reference() {
        let data = generate(0.002, 13);
        let catalog = prepare_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q5_reference(&data);
        for algo in [JoinAlgo::NonPartitioned, JoinAlgo::Partitioned] {
            let rep = engine
                .run(&catalog, &q5_plan(&data, algo), &ExecConfig::new(Placement::Hybrid))
                .unwrap();
            assert!(
                reference::rows_approx_eq(&rep.rows, &reference),
                "{algo:?}: {:?} vs {reference:?}",
                rep.rows
            );
        }
    }

    #[test]
    fn q9_matches_reference_and_hybrid_agrees() {
        let data = generate(0.002, 14);
        let catalog = prepare_catalog(&data);
        let engine = Engine::new(Server::paper_testbed());
        let reference = reference::q9_reference(&data);
        let rep = engine
            .run(&catalog, &q9_plan(JoinAlgo::NonPartitioned), &ExecConfig::new(Placement::CpuOnly))
            .unwrap();
        assert!(reference::rows_approx_eq(&rep.rows, &reference));
        let hybrid = run_q9_hybrid(&engine, &catalog, &data).unwrap();
        assert!(
            reference::rows_approx_eq(&hybrid.rows, &reference),
            "{:?} vs {reference:?}",
            hybrid.rows
        );
    }
}
