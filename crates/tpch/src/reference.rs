//! Naive reference evaluators for the four queries.
//!
//! Straight-line row-at-a-time implementations over the generated tables,
//! used to validate the engine (and the baselines) bit-for-bit — modulo
//! floating-point summation order, hence [`rows_approx_eq`].

use std::collections::HashMap;

use hape_ops::GroupKey;

use crate::dates::date;
use crate::gen::TpchData;

/// Compare aggregated row sets with a relative tolerance on the values
/// (parallel execution sums floats in a different order).
pub fn rows_approx_eq(a: &[(GroupKey, Vec<f64>)], b: &[(GroupKey, Vec<f64>)]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for ((ka, va), (kb, vb)) in a.iter().zip(b) {
        if ka != kb || va.len() != vb.len() {
            return false;
        }
        for (&x, &y) in va.iter().zip(vb) {
            let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > tol {
                return false;
            }
        }
    }
    true
}

fn sorted(groups: HashMap<GroupKey, Vec<f64>>) -> Vec<(GroupKey, Vec<f64>)> {
    let mut rows: Vec<_> = groups.into_iter().collect();
    rows.sort_by_key(|a| a.0);
    rows
}

/// Q1 reference.
pub fn q1_reference(data: &TpchData) -> Vec<(GroupKey, Vec<f64>)> {
    let threshold = date(1998, 12, 1) - 90;
    let li = &data.lineitem;
    let ship = li.column("l_shipdate").as_i32();
    let rf = li.column("l_returnflag").as_codes();
    let ls = li.column("l_linestatus").as_codes();
    let qty = li.column("l_quantity").as_i32();
    let price = li.column("l_extendedprice").as_f64();
    let disc = li.column("l_discount").as_f64();
    let tax = li.column("l_tax").as_f64();
    // accumulators: sums for qty, price, disc_price, charge, disc; count.
    let mut acc: HashMap<GroupKey, (f64, f64, f64, f64, f64, u64)> = HashMap::new();
    for i in 0..li.rows() {
        if ship[i] > threshold {
            continue;
        }
        let key: GroupKey = [rf[i] as i64, ls[i] as i64, 0, 0];
        let e = acc.entry(key).or_default();
        let dp = price[i] * (1.0 - disc[i]);
        e.0 += qty[i] as f64;
        e.1 += price[i];
        e.2 += dp;
        e.3 += dp * (1.0 + tax[i]);
        e.4 += disc[i];
        e.5 += 1;
    }
    let groups = acc
        .into_iter()
        .map(|(k, (sq, sp, sdp, sc, sd, n))| {
            let nf = n as f64;
            (k, vec![sq, sp, sdp, sc, sq / nf, sp / nf, sd / nf, nf])
        })
        .collect();
    sorted(groups)
}

/// Q6 reference.
pub fn q6_reference(data: &TpchData) -> Vec<(GroupKey, Vec<f64>)> {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    let li = &data.lineitem;
    let ship = li.column("l_shipdate").as_i32();
    let qty = li.column("l_quantity").as_i32();
    let price = li.column("l_extendedprice").as_f64();
    let disc = li.column("l_discount").as_f64();
    let mut revenue = 0.0;
    for i in 0..li.rows() {
        if ship[i] >= lo
            && ship[i] < hi
            && disc[i] >= 0.0499
            && disc[i] <= 0.0701
            && (qty[i] as f64) < 24.0
        {
            revenue += price[i] * disc[i];
        }
    }
    vec![([0, 0, 0, 0], vec![revenue])]
}

/// Q5 reference.
pub fn q5_reference(data: &TpchData) -> Vec<(GroupKey, Vec<f64>)> {
    let dict = data.region.column("r_name").dict().expect("r_name is dictionary-encoded");
    let asia = dict.code_of("ASIA").expect("ASIA region present");
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    let n_region = data.nation.column("n_regionkey").as_i32();
    let asia_nation: Vec<bool> = n_region.iter().map(|&r| r == asia as i32).collect();
    let c_nation = data.customer.column("c_nationkey").as_i32();
    let s_nation = data.supplier.column("s_nationkey").as_i32();
    let n_name = data.nation.column("n_name").as_codes();
    // orders in range by ASIA customers: orderkey -> c_nationkey.
    let o_key = data.orders.column("o_orderkey").as_i32();
    let o_cust = data.orders.column("o_custkey").as_i32();
    let o_date = data.orders.column("o_orderdate").as_i32();
    let mut order_nation: HashMap<i32, i32> = HashMap::new();
    for i in 0..data.orders.rows() {
        if o_date[i] >= lo && o_date[i] < hi {
            let cn = c_nation[o_cust[i] as usize];
            if asia_nation[cn as usize] {
                order_nation.insert(o_key[i], cn);
            }
        }
    }
    let li = &data.lineitem;
    let l_order = li.column("l_orderkey").as_i32();
    let l_supp = li.column("l_suppkey").as_i32();
    let price = li.column("l_extendedprice").as_f64();
    let disc = li.column("l_discount").as_f64();
    let mut acc: HashMap<GroupKey, f64> = HashMap::new();
    for i in 0..li.rows() {
        let Some(&cn) = order_nation.get(&l_order[i]) else { continue };
        let sn = s_nation[l_supp[i] as usize];
        if sn != cn || !asia_nation[sn as usize] {
            continue;
        }
        let key: GroupKey = [n_name[sn as usize] as i64, 0, 0, 0];
        *acc.entry(key).or_default() += price[i] * (1.0 - disc[i]);
    }
    sorted(acc.into_iter().map(|(k, v)| (k, vec![v])).collect())
}

/// Q9* reference.
pub fn q9_reference(data: &TpchData) -> Vec<(GroupKey, Vec<f64>)> {
    let s_nation = data.supplier.column("s_nationkey").as_i32();
    let n_name = data.nation.column("n_name").as_codes();
    let ps_cost = data.partsupp.column("ps_supplycost").as_f64();
    let o_year = data.orders.column("o_year").as_i32();
    let li = &data.lineitem;
    let l_order = li.column("l_orderkey").as_i32();
    let l_ps = li.column("l_pskey").as_i32();
    let l_supp = li.column("l_suppkey").as_i32();
    let qty = li.column("l_quantity").as_i32();
    let price = li.column("l_extendedprice").as_f64();
    let disc = li.column("l_discount").as_f64();
    let mut acc: HashMap<GroupKey, f64> = HashMap::new();
    for i in 0..li.rows() {
        let nation = n_name[s_nation[l_supp[i] as usize] as usize] as i64;
        let year = o_year[l_order[i] as usize] as i64;
        let amount = price[i] * (1.0 - disc[i]) - ps_cost[l_ps[i] as usize] * qty[i] as f64;
        *acc.entry([nation, year, 0, 0]).or_default() += amount;
    }
    sorted(acc.into_iter().map(|(k, v)| (k, vec![v])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn q1_has_four_groups_and_sane_averages() {
        let data = generate(0.002, 21);
        let rows = q1_reference(&data);
        assert_eq!(rows.len(), 4);
        for (_, vals) in &rows {
            assert_eq!(vals.len(), 8);
            let (sum_qty, avg_qty, count) = (vals[0], vals[4], vals[7]);
            assert!((sum_qty / count - avg_qty).abs() < 1e-9);
            assert!((1.0..=50.0).contains(&avg_qty));
        }
    }

    #[test]
    fn q6_selects_a_fraction() {
        let data = generate(0.002, 22);
        let rows = q6_reference(&data);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].1[0] > 0.0, "no Q6 revenue — distribution bug?");
    }

    #[test]
    fn q5_nonempty_with_asia_nations_only() {
        let data = generate(0.005, 23);
        let rows = q5_reference(&data);
        assert!(!rows.is_empty());
        // All group keys must be ASIA nation names.
        let asia = data.region.column("r_name").dict().unwrap().code_of("ASIA").unwrap();
        let n_region = data.nation.column("n_regionkey").as_i32();
        let n_name = data.nation.column("n_name").as_codes();
        let asia_names: Vec<i64> =
            (0..25).filter(|&n| n_region[n] == asia as i32).map(|n| n_name[n] as i64).collect();
        for (k, _) in &rows {
            assert!(asia_names.contains(&k[0]), "{k:?}");
        }
    }

    #[test]
    fn q9_groups_by_nation_and_year() {
        let data = generate(0.002, 24);
        let rows = q9_reference(&data);
        assert!(rows.len() > 25, "expected nation x year groups, got {}", rows.len());
        for (k, _) in &rows {
            assert!((1992..=1998).contains(&(k[1] as i32)), "{k:?}");
        }
    }

    #[test]
    fn rows_approx_eq_tolerates_ulps_only() {
        let a = vec![([1, 0, 0, 0], vec![100.0])];
        let mut b = a.clone();
        assert!(rows_approx_eq(&a, &b));
        b[0].1[0] += 1e-7 * 100.0;
        assert!(!rows_approx_eq(&a, &b));
    }
}
