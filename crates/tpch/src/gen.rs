//! TPC-H data generation (dbgen-equivalent, scaled).
//!
//! Cardinalities follow the spec: `lineitem ≈ 6M·SF`, `orders = 1.5M·SF`,
//! `customer = 150k·SF`, `supplier = 10k·SF`, `part = 200k·SF`,
//! `partsupp = 4·part`, 25 nations in 5 regions. Value distributions are
//! simplified but preserve everything the four queries select on:
//! date ranges, discounts/quantities, return flags, and the
//! part↔supplier↔lineitem relationships (each part has 4 suppliers; a
//! composite `pskey = partkey·4 + slot` key joins lineitem to partsupp).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hape_storage::{Batch, Column, DataType, Schema, Table};

use crate::dates::{date, year_of, Date};

/// The 25 TPC-H nations with their region assignment.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The generated database.
#[derive(Debug)]
pub struct TpchData {
    /// Scale factor used.
    pub sf: f64,
    /// lineitem.
    pub lineitem: Table,
    /// orders.
    pub orders: Table,
    /// customer.
    pub customer: Table,
    /// supplier.
    pub supplier: Table,
    /// partsupp.
    pub partsupp: Table,
    /// nation.
    pub nation: Table,
    /// region.
    pub region: Table,
}

impl TpchData {
    /// Total bytes across all tables.
    pub fn bytes(&self) -> u64 {
        self.lineitem.bytes()
            + self.orders.bytes()
            + self.customer.bytes()
            + self.supplier.bytes()
            + self.partsupp.bytes()
            + self.nation.bytes()
            + self.region.bytes()
    }
}

fn scaled(base: usize, sf: f64) -> usize {
    ((base as f64 * sf) as usize).max(1)
}

/// Generate a TPC-H database at scale factor `sf` (SF 1 ≈ 6M lineitems).
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_orders = scaled(1_500_000, sf);
    let n_customer = scaled(150_000, sf);
    let n_supplier = scaled(10_000, sf);
    let n_part = scaled(200_000, sf);

    // ---- region / nation.
    let region = Table::new(
        "region",
        Schema::new([("r_regionkey", DataType::I32), ("r_name", DataType::Str)]),
        Batch::new(vec![Column::from_i32((0..5).collect()), Column::from_strs(REGIONS)]),
    );
    let nation = Table::new(
        "nation",
        Schema::new([
            ("n_nationkey", DataType::I32),
            ("n_regionkey", DataType::I32),
            ("n_name", DataType::Str),
        ]),
        Batch::new(vec![
            Column::from_i32((0..25).collect()),
            Column::from_i32(NATIONS.iter().map(|(_, r)| *r as i32).collect()),
            Column::from_strs(NATIONS.iter().map(|(n, _)| *n)),
        ]),
    );

    // ---- customer / supplier.
    let customer = Table::new(
        "customer",
        Schema::new([("c_custkey", DataType::I32), ("c_nationkey", DataType::I32)]),
        Batch::new(vec![
            Column::from_i32((0..n_customer as i32).collect()),
            Column::from_i32((0..n_customer).map(|_| rng.gen_range(0..25)).collect()),
        ]),
    );
    let supplier = Table::new(
        "supplier",
        Schema::new([("s_suppkey", DataType::I32), ("s_nationkey", DataType::I32)]),
        Batch::new(vec![
            Column::from_i32((0..n_supplier as i32).collect()),
            Column::from_i32((0..n_supplier).map(|_| rng.gen_range(0..25)).collect()),
        ]),
    );

    // ---- partsupp: 4 suppliers per part; pskey = partkey*4 + slot.
    let n_partsupp = n_part * 4;
    let mut ps_pskey = Vec::with_capacity(n_partsupp);
    let mut ps_suppkey = Vec::with_capacity(n_partsupp);
    let mut ps_supplycost = Vec::with_capacity(n_partsupp);
    for p in 0..n_part {
        for slot in 0..4usize {
            ps_pskey.push((p * 4 + slot) as i32);
            ps_suppkey.push(((p + slot * (n_supplier / 4 + 1)) % n_supplier) as i32);
            ps_supplycost.push(rng.gen_range(1.0..1000.0f64));
        }
    }
    let partsupp = Table::new(
        "partsupp",
        Schema::new([
            ("ps_pskey", DataType::I32),
            ("ps_suppkey", DataType::I32),
            ("ps_supplycost", DataType::F64),
        ]),
        Batch::new(vec![
            Column::from_i32(ps_pskey),
            Column::from_i32(ps_suppkey.clone()),
            Column::from_f64(ps_supplycost),
        ]),
    );

    // ---- orders.
    let last_order_day = date(1998, 8, 2); // spec: orderdate ≤ 1998-12-31 - 151d
    let mut o_orderdate: Vec<Date> = Vec::with_capacity(n_orders);
    let mut o_custkey = Vec::with_capacity(n_orders);
    let mut o_year = Vec::with_capacity(n_orders);
    for _ in 0..n_orders {
        let d = rng.gen_range(0..=last_order_day);
        o_orderdate.push(d);
        o_year.push(year_of(d));
        o_custkey.push(rng.gen_range(0..n_customer as i32));
    }
    let orders = Table::new(
        "orders",
        Schema::new([
            ("o_orderkey", DataType::I32),
            ("o_custkey", DataType::I32),
            ("o_orderdate", DataType::Date),
            ("o_year", DataType::I32),
        ]),
        Batch::new(vec![
            Column::from_i32((0..n_orders as i32).collect()),
            Column::from_i32(o_custkey),
            Column::from_i32(o_orderdate.clone()),
            Column::from_i32(o_year),
        ]),
    );

    // ---- lineitem: 1..7 lines per order (avg 4 → ≈6M·SF).
    let est = n_orders * 4 + 1024;
    let mut l_orderkey = Vec::with_capacity(est);
    let mut l_pskey = Vec::with_capacity(est);
    let mut l_suppkey = Vec::with_capacity(est);
    let mut l_quantity: Vec<i32> = Vec::with_capacity(est);
    let mut l_extendedprice = Vec::with_capacity(est);
    let mut l_discount = Vec::with_capacity(est);
    let mut l_tax = Vec::with_capacity(est);
    let mut l_returnflag = Vec::with_capacity(est);
    let mut l_linestatus = Vec::with_capacity(est);
    let mut l_shipdate = Vec::with_capacity(est);
    let cutoff = date(1995, 6, 17);
    for (ok, &od) in o_orderdate.iter().enumerate() {
        let lines = rng.gen_range(1..=7);
        for _ in 0..lines {
            let part = rng.gen_range(0..n_part);
            let slot = rng.gen_range(0..4usize);
            let ship = (od + rng.gen_range(1..=121)).min(crate::dates::max_date());
            let qty: i32 = rng.gen_range(1..=50);
            let price = qty as f64 * rng.gen_range(900.0..100_000.0f64) / 50.0;
            l_orderkey.push(ok as i32);
            l_pskey.push((part * 4 + slot) as i32);
            l_suppkey.push(ps_suppkey[part * 4 + slot]);
            l_quantity.push(qty);
            l_extendedprice.push(price);
            l_discount.push(rng.gen_range(0..=10) as f64 / 100.0);
            l_tax.push(rng.gen_range(0..=8) as f64 / 100.0);
            // Return flag follows the *receipt* date (spec 4.2.3): lines
            // received by 1995-06-17 are A/R, later ones N — so a thin
            // N/F band exists where shipdate ≤ cutoff < receiptdate.
            let receipt = ship + rng.gen_range(1..=30);
            l_returnflag.push(if receipt <= cutoff {
                if rng.gen_bool(0.5) {
                    "A"
                } else {
                    "R"
                }
            } else {
                "N"
            });
            l_linestatus.push(if ship > cutoff { "O" } else { "F" });
            l_shipdate.push(ship);
        }
    }
    let lineitem = Table::new(
        "lineitem",
        Schema::new([
            ("l_orderkey", DataType::I32),
            ("l_pskey", DataType::I32),
            ("l_suppkey", DataType::I32),
            ("l_quantity", DataType::I32),
            ("l_extendedprice", DataType::F64),
            ("l_discount", DataType::F64),
            ("l_tax", DataType::F64),
            ("l_returnflag", DataType::Str),
            ("l_linestatus", DataType::Str),
            ("l_shipdate", DataType::Date),
        ]),
        Batch::new(vec![
            Column::from_i32(l_orderkey),
            Column::from_i32(l_pskey),
            Column::from_i32(l_suppkey),
            Column::from_i32(l_quantity),
            Column::from_f64(l_extendedprice),
            Column::from_f64(l_discount),
            Column::from_f64(l_tax),
            Column::from_strs(l_returnflag.iter().copied()),
            Column::from_strs(l_linestatus.iter().copied()),
            Column::from_i32(l_shipdate),
        ]),
    );

    TpchData { sf, lineitem, orders, customer, supplier, partsupp, nation, region }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let d = generate(0.01, 42);
        assert_eq!(d.orders.rows(), 15_000);
        assert_eq!(d.customer.rows(), 1_500);
        assert_eq!(d.supplier.rows(), 100);
        assert_eq!(d.partsupp.rows(), 2_000 * 4);
        assert_eq!(d.nation.rows(), 25);
        assert_eq!(d.region.rows(), 5);
        let li = d.lineitem.rows();
        assert!((45_000..75_000).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(
            a.lineitem.column("l_orderkey").as_i32(),
            b.lineitem.column("l_orderkey").as_i32()
        );
        let c = generate(0.001, 8);
        assert_ne!(
            a.lineitem.column("l_shipdate").as_i32(),
            c.lineitem.column("l_shipdate").as_i32()
        );
    }

    #[test]
    fn foreign_keys_resolve() {
        let d = generate(0.005, 3);
        let n_cust = d.customer.rows() as i32;
        assert!(d.orders.column("o_custkey").as_i32().iter().all(|&c| c < n_cust));
        let n_orders = d.orders.rows() as i32;
        assert!(d.lineitem.column("l_orderkey").as_i32().iter().all(|&o| o < n_orders));
        let n_ps = d.partsupp.rows() as i32;
        assert!(d.lineitem.column("l_pskey").as_i32().iter().all(|&p| p < n_ps));
        // lineitem's suppkey matches its partsupp row's suppkey.
        let ps_supp = d.partsupp.column("ps_suppkey").as_i32();
        for (i, &pk) in d.lineitem.column("l_pskey").as_i32().iter().enumerate().take(500) {
            assert_eq!(d.lineitem.column("l_suppkey").as_i32()[i], ps_supp[pk as usize]);
        }
    }

    #[test]
    fn flags_follow_shipdate() {
        let d = generate(0.002, 9);
        let cutoff = date(1995, 6, 17);
        let flags = d.lineitem.column("l_linestatus");
        let dict = flags.dict().unwrap().clone();
        for (i, &ship) in d.lineitem.column("l_shipdate").as_i32().iter().enumerate().take(500)
        {
            let status = dict.get(flags.as_codes()[i]).unwrap();
            if ship > cutoff {
                assert_eq!(status, "O");
            } else {
                assert_eq!(status, "F");
            }
        }
    }
}
