//! Web-analytics event workload: a deterministic clickstream generator
//! plus the behavioral query suite (B1–B4) over it.
//!
//! The generator emits one `events` table with `(user_id, ts, event)`
//! rows, **sorted by `(user_id, ts)`** — the physical contract every
//! order-sensitive stateful aggregate ([`hape_ops::StatefulAgg`]) assumes.
//! Per-user event counts are skewed (a few heavy users, a long tail of
//! light ones) and inter-event gaps are drawn from a short/medium/long
//! mixture so the data carries real session boundaries, funnel chains and
//! multi-week retention structure rather than uniform noise.
//!
//! The four behavioral queries exercise each stateful operator through
//! the named-column [`Query`] front-end:
//!
//! - **B1 sessions**: sessionize at a 30-minute gap, totals over users.
//! - **B2 funnel**: view→cart→purchase within an hour, users per depth.
//! - **B3 retention**: signup cohort, weekly return visits.
//! - **B4 sequence**: search→view→purchase subsequence on recent events
//!   (a filter precedes the stateful op, exercising the fused prefix).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hape_core::{Catalog, Query};
use hape_ops::{col, lit, AggFunc};
use hape_storage::{Batch, Column, DataType, Schema, Table};

/// Event vocabulary, in dictionary (first-seen) order: the generator
/// seeds the dictionary so event-name literals resolve for any seed.
pub const EVENT_TYPES: [&str; 6] = ["view", "search", "cart", "purchase", "signup", "visit"];

/// Session gap used by B1 (30 minutes, in seconds).
pub const SESSION_GAP: i64 = 1_800;

/// Funnel window used by B2 (1 hour, in seconds).
pub const FUNNEL_WINDOW: i64 = 3_600;

/// Retention period used by B3 (7 days, in seconds).
pub const RETENTION_PERIOD: i64 = 604_800;

/// Timestamp cutoff used by B4's filter (day 2 of the simulated month).
pub const RECENT_CUTOFF: i64 = 172_800;

/// Mean events per user the generator targets — keep in sync with
/// [`hape_core::cost::STATEFUL_EVENTS_PER_USER`], which the optimizer
/// uses as its per-user run-length estimate.
pub const MEAN_EVENTS_PER_USER: usize = 32;

/// Generate the `events` table for `n_users` users: `(user_id, ts,
/// event)` sorted by `(user_id, ts)`, deterministic per seed.
pub fn generate_events(n_users: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let est = n_users * MEAN_EVENTS_PER_USER + 64;
    let mut user_id: Vec<i32> = Vec::with_capacity(est);
    let mut ts: Vec<i64> = Vec::with_capacity(est);
    let mut event: Vec<&str> = Vec::with_capacity(est);
    // Seed the dictionary with the full vocabulary in canonical order so
    // literal resolution (and dictionary codes) never depend on which
    // events a particular seed happens to emit first. These header rows
    // belong to a sentinel user whose timestamps precede every real event.
    for (i, e) in EVENT_TYPES.iter().enumerate() {
        user_id.push(0);
        ts.push(i as i64);
        event.push(e);
    }
    for u in 1..=n_users {
        // Skewed activity: mostly light users, a heavy tail. The mixture
        // averages out near MEAN_EVENTS_PER_USER.
        let n_events = match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(2..24),  // light
            6..=8 => rng.gen_range(24..64), // regular
            _ => rng.gen_range(64..160),    // heavy
        };
        let mut t: i64 = rng.gen_range(0..30 * 86_400);
        let signs_up = rng.gen_bool(0.5);
        for i in 0..n_events {
            user_id.push(u as i32);
            ts.push(t);
            let e = if i == 0 && signs_up {
                "signup"
            } else {
                match rng.gen_range(0..100u32) {
                    0..=44 => "view",
                    45..=59 => "search",
                    60..=71 => "cart",
                    72..=79 => "purchase",
                    _ => "visit",
                }
            };
            event.push(e);
            // Gap mixture: within-session bursts, between-session pauses,
            // and multi-day absences (retention structure).
            t += match rng.gen_range(0..10u32) {
                0..=6 => rng.gen_range(10..600),         // same session
                7..=8 => rng.gen_range(3_600..36_000),   // next session
                _ => rng.gen_range(86_400..14 * 86_400), // days later
            };
        }
    }
    Table::new(
        "events",
        Schema::new([
            ("user_id", DataType::I32),
            ("ts", DataType::I64),
            ("event", DataType::Str),
        ]),
        Batch::new(vec![
            Column::from_i32(user_id),
            Column::from_i64(ts),
            Column::from_strs(event),
        ]),
    )
}

/// Register the events table in a fresh catalog.
pub fn events_catalog(events: &Table) -> Catalog {
    let mut c = Catalog::new();
    c.register(events.clone());
    c
}

/// B1 — session totals: sessionize every user's clickstream at a
/// 30-minute gap and report total sessions, total events and user count.
pub fn b1_sessions_query() -> Query {
    Query::new("B1").from_table("events").sessionize("user_id", "ts", SESSION_GAP).agg(vec![
        (AggFunc::Sum, col("sessions")),
        (AggFunc::Sum, col("events")),
        (AggFunc::Count, col("user_id")),
    ])
}

/// B2 — conversion funnel: deepest view→cart→purchase chain completed
/// within an hour, users counted per depth reached.
pub fn b2_funnel_query() -> Query {
    Query::new("B2")
        .from_table("events")
        .window_funnel("user_id", "ts", "event", &["view", "cart", "purchase"], FUNNEL_WINDOW)
        .group_by(&["funnel_depth"])
        .agg(vec![(AggFunc::Count, col("user_id"))])
}

/// B3 — weekly retention: of the users who signed up, how many came back
/// to visit in week 1 and week 2 after the signup.
pub fn b3_retention_query() -> Query {
    Query::new("B3")
        .from_table("events")
        .retention("user_id", "ts", "event", "signup", &["visit", "visit"], RETENTION_PERIOD)
        .agg(vec![
            (AggFunc::Sum, col("in_cohort")),
            (AggFunc::Sum, col("ret1")),
            (AggFunc::Sum, col("ret2")),
        ])
}

/// B4 — search conversion: among recent events, users whose stream
/// contains search→view→purchase in order. The timestamp filter runs
/// fused ahead of the stateful pass.
pub fn b4_sequence_query() -> Query {
    Query::new("B4")
        .from_table("events")
        .filter(col("ts").ge(lit(RECENT_CUTOFF)))
        .sequence_match("user_id", "ts", "event", &["search", "view", "purchase"])
        .agg(vec![(AggFunc::Sum, col("matched")), (AggFunc::Count, col("user_id"))])
}

/// The whole behavioral suite, in canonical order.
pub fn behavioral_queries() -> Vec<Query> {
    vec![b1_sessions_query(), b2_funnel_query(), b3_retention_query(), b4_sequence_query()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_by_user_then_ts() {
        let t = generate_events(200, 11);
        let users = t.column("user_id").as_i32();
        let ts = t.column("ts").as_i64();
        for i in 1..t.rows() {
            assert!(
                (users[i - 1], ts[i - 1]) <= (users[i], ts[i]),
                "row {i} out of order: {:?} > {:?}",
                (users[i - 1], ts[i - 1]),
                (users[i], ts[i])
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_events(100, 3);
        let b = generate_events(100, 3);
        assert_eq!(a.column("ts").as_i64(), b.column("ts").as_i64());
        assert_eq!(a.column("event").as_codes(), b.column("event").as_codes());
        let c = generate_events(100, 4);
        assert_ne!(a.column("ts").as_i64(), c.column("ts").as_i64());
    }

    #[test]
    fn dictionary_carries_full_vocabulary_in_canonical_order() {
        let t = generate_events(5, 1);
        let dict = t.column("event").dict().expect("event dictionary");
        for (i, e) in EVENT_TYPES.iter().enumerate() {
            assert_eq!(dict.code_of(e), Some(i as u32), "code of {e}");
        }
    }

    #[test]
    fn mean_run_length_near_target() {
        let t = generate_events(2_000, 5);
        let mean = t.rows() as f64 / 2_000.0;
        assert!(
            (MEAN_EVENTS_PER_USER as f64 * 0.5..MEAN_EVENTS_PER_USER as f64 * 1.5)
                .contains(&mean),
            "mean events/user {mean}"
        );
    }

    #[test]
    fn behavioral_queries_lower() {
        let catalog = events_catalog(&generate_events(50, 2));
        for q in behavioral_queries() {
            let lowered = q.lower(&catalog).unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert_eq!(lowered.plan.stages.len(), 1, "{} is a pure stream", q.name);
        }
    }
}
