//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace crate
//! provides exactly the surface the HAPE data generators use:
//! [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] (integer and float ranges), [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64: deterministic
//! per seed and statistically fine for test-data generation, but the
//! streams are **not** compatible with upstream `rand` — swapping the real
//! crate back in changes generated datasets (all HAPE tests are
//! self-consistent against references computed from the same data, so they
//! do not care).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the subset HAPE uses).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its standard domain (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable over a standard domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can be drawn over.
///
/// The blanket [`SampleRange`] impls below go through this trait so that
/// integer-literal ranges (`1..=7`) resolve to one applicable impl and the
/// default `i32` literal fallback kicks in, exactly as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// A sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((0..25).contains(&r.gen_range(0..25)));
            assert!((1..=7).contains(&r.gen_range(1..=7)));
            let f = r.gen_range(900.0..100_000.0f64);
            assert!((900.0..100_000.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(1..=7) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((4000..6000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<i32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(2));
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
