//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace crate
//! provides the cursor/buffer surface `hape-storage`'s binary format uses:
//! [`Bytes`] (a consuming read cursor), [`BytesMut`] (an append buffer) and
//! the [`Buf`]/[`BufMut`] trait names they are imported through. Semantics
//! match upstream for this subset, including panics on reads past the end
//! (the format code checks `remaining()` first).

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Consume `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "buffer underflow");
        let out = Bytes::from(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned byte buffer consumed front-to-back through [`Buf`].
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// The unconsumed bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// A growable byte buffer filled through [`BufMut`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-5);
        w.put_i64_le(i64::MIN);
        w.put_u64_le(u64::MAX);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.get_f64_le(), 1.5);
        let tail = r.copy_to_bytes(2);
        assert_eq!(tail.to_vec(), b"ab");
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn copy_to_slice_consumes() {
        let mut r = Bytes::from(vec![1, 2, 3, 4]);
        let mut out = [0u8; 2];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2]);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from(vec![1]).get_u32_le();
    }
}
