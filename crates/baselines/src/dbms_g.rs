//! DBMS G: the GPU operator-at-a-time engine.

use hape_core::engine::EngineError;
use hape_core::plan::{JoinTable, PipeOp, QueryPlan, Stage};
use hape_core::provider::{probe_join, TableStore};
use hape_core::Catalog;
use hape_join::{gpu_npj, JoinInput, JoinOutcome, OutputMode};
use hape_ops::agg::AggState;
use hape_sim::gpu::OutOfGpuMemory;
use hape_sim::topology::Server;
use hape_sim::{Fidelity, GpuSim, SimTime};
use hape_storage::Batch;

use crate::{BaselineError, BaselineReport};

/// Why DBMS G refused a query.
#[derive(Debug, Clone)]
pub struct GpuUnsupported {
    /// Human-readable reason (matches the paper's capacity argument).
    pub reason: String,
}

impl std::fmt::Display for GpuUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DBMS G cannot run this query: {}", self.reason)
    }
}

impl std::error::Error for GpuUnsupported {}

/// Operator-at-a-time materialisation overhead versus a fused pipeline
/// (extra kernels + full intermediate writes/reads in device memory).
const MATERIALISE_FACTOR: f64 = 1.15;

/// The DBMS G stand-in.
#[derive(Debug, Clone)]
pub struct DbmsG {
    /// Host server (its GPUs and PCIe links are used).
    pub server: Server,
}

impl DbmsG {
    /// DBMS G on a server.
    pub fn new(server: Server) -> Self {
        assert!(!server.gpus.is_empty(), "DBMS G needs GPUs");
        DbmsG { server }
    }

    fn aggregate_capacity(&self) -> u64 {
        self.server.gpus.iter().map(|g| g.dram_capacity as u64).sum()
    }

    /// Run a plan operator-at-a-time, entirely in GPU memory.
    ///
    /// Every operator is a separate kernel launch over the *whole* column
    /// set, reading its materialised input and materialising its output in
    /// device memory — so the query's working set is inputs + every
    /// intermediate + the hash tables, all at once. Queries that do not fit
    /// return [`GpuUnsupported`] (in the paper DBMS G could run only Q6 of
    /// the four, §6.4).
    pub fn run_plan(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
    ) -> Result<BaselineReport, BaselineError> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let n_gpus = self.server.gpus.len() as f64;
        let gpu = &self.server.gpus[0];
        let pcie_bw: f64 = self.server.pcie.iter().map(|l| l.bw).sum();
        let mut tables = TableStore::new();
        let mut total = SimTime::ZERO;
        let mut rows = Vec::new();
        let mut resident: u64 = 0; // bytes pinned in device memory

        for stage in &plan.stages {
            let pipeline = match stage {
                Stage::Build { pipeline, .. } | Stage::Stream { pipeline } => pipeline,
            };
            let table = catalog.lookup(&pipeline.source)?;
            // Transfer the inputs (split across the PCIe links).
            let in_bytes = table.bytes();
            resident += in_bytes;
            total += SimTime::from_secs(in_bytes as f64 / pcie_bw + 20e-6);

            // Operator-at-a-time execution over the whole input.
            let mut cur = table.data.clone();
            let mut t_stage = SimTime::ZERO;
            for op in &pipeline.ops {
                if cur.rows() == 0 {
                    break;
                }
                let in_b = cur.bytes();
                match op {
                    PipeOp::Filter(pred) => {
                        let keep = hape_ops::eval_bool(pred, &cur);
                        let sel: Vec<u32> = keep
                            .iter()
                            .enumerate()
                            .filter(|(_, &k)| k)
                            .map(|(i, _)| i as u32)
                            .collect();
                        cur = Batch {
                            columns: cur.columns.iter().map(|c| c.take(&sel)).collect(),
                            partition: cur.partition,
                        };
                    }
                    PipeOp::Project(exprs) => {
                        let cols = exprs
                            .iter()
                            .map(|e| {
                                hape_storage::Column::from_f64(
                                    hape_ops::eval(e, &cur).as_f64().to_vec(),
                                )
                            })
                            .collect();
                        cur = Batch { columns: cols, partition: cur.partition };
                    }
                    PipeOp::JoinProbe { ht, key_col, build_payload_cols, .. } => {
                        let jt = tables.get(ht).expect("table built");
                        let probes = cur.rows() as f64;
                        let (out, chain) = probe_join(&cur, jt, *key_col, build_payload_cols);
                        // Random device-memory probes over-fetch a line each.
                        t_stage += SimTime::from_secs(
                            probes * (1.0 + chain) * gpu.l1.line as f64
                                / (gpu.dram_bw * n_gpus),
                        );
                        cur = out;
                    }
                    PipeOp::Stateful(sagg) => {
                        // Operator-at-a-time over the whole input, so the
                        // per-user runs stay intact — but every row is one
                        // step of a serial state chain the GPU cannot
                        // latency-hide (the engine's sequential-state term,
                        // at full strength).
                        let rows = cur.rows() as f64;
                        let (out, users) = hape_ops::stateful::run_stateful(sagg, &cur);
                        let state_ws = (users as u64 * sagg.state_bytes_per_user()).max(64);
                        t_stage += SimTime::from_secs(
                            rows * gpu.random_access_ns(state_ws)
                                * hape_ops::stateful::GPU_SEQ_CHAIN_FACTOR
                                / 1e9
                                / n_gpus,
                        );
                        cur = out;
                    }
                }
                let out_b = cur.bytes();
                resident += out_b;
                // One kernel per operator: stream in + materialise out.
                t_stage += SimTime::from_secs(
                    (in_b + out_b) as f64 * MATERIALISE_FACTOR / (gpu.dram_bw * n_gpus),
                ) + SimTime::from_ns(gpu.launch_overhead_ns);
            }
            if resident > self.aggregate_capacity() {
                return Err(GpuUnsupported {
                    reason: format!(
                        "working set {resident} bytes exceeds aggregate GPU memory {}",
                        self.aggregate_capacity()
                    ),
                }
                .into());
            }
            total += t_stage;
            match stage {
                Stage::Build { name, key_col, .. } => {
                    let jt = JoinTable::build(cur, *key_col);
                    resident += jt.bytes();
                    tables.insert(name.clone(), std::sync::Arc::new(jt));
                }
                Stage::Stream { pipeline } => {
                    // Guaranteed by the validate() at entry.
                    let spec = pipeline.agg.clone().expect("validated stream aggregates");
                    let mut agg = AggState::new(spec);
                    if cur.rows() > 0 {
                        // Final aggregation kernel.
                        total +=
                            SimTime::from_secs(cur.bytes() as f64 / (gpu.dram_bw * n_gpus))
                                + SimTime::from_ns(gpu.launch_overhead_ns);
                        agg.update(&cur);
                    }
                    rows = agg.finish();
                }
            }
        }
        Ok(BaselineReport { rows, time: total })
    }

    /// DBMS G's equi-join for Figure 6 (data pre-loaded in GPU memory):
    /// a non-partitioned join plus operator-at-a-time materialisation.
    pub fn join_microbench(
        &self,
        r: JoinInput<'_>,
        s: JoinInput<'_>,
    ) -> Result<JoinOutcome, OutOfGpuMemory> {
        let sim = GpuSim::new(self.server.gpus[0].clone(), Fidelity::Analytic);
        // Materialised join output must also fit (before aggregation).
        let pool_extra = (r.len() as u64) * 16;
        let mut probe_pool = hape_sim::GpuMemPool::for_spec(sim.spec());
        probe_pool.alloc(r.bytes() + s.bytes() + r.bytes() * 3 + pool_extra).map(|_| ())?;
        let mut out = gpu_npj(&sim, r, s, OutputMode::AggregateOnly)?;
        out.time = out.time * MATERIALISE_FACTOR
            + SimTime::from_secs(pool_extra as f64 / sim.spec().dram_bw);
        Ok(out)
    }

    /// DBMS G on out-of-GPU data (Figure 7): UVA-style access over the
    /// interconnect. Every hash-table access drags a cache line across
    /// PCIe, so the join collapses to interconnect random-access throughput
    /// — "not designed for out-of-GPU datasets … performs poorly even after
    /// 512 million tuples" (§6.3).
    pub fn join_uva_time(&self, n_tuples: u64) -> SimTime {
        let gpu = &self.server.gpus[0];
        let pcie_bw: f64 = self.server.pcie.iter().map(|l| l.bw).sum();
        let line = gpu.l1.line as f64;
        // Build: stream r over PCIe + random HT writes (line each).
        // Probe: stream s + ~1.5 chain accesses, a line each.
        let stream = 2.0 * (n_tuples * 8) as f64 / pcie_bw;
        let random = (n_tuples as f64) * (1.0 + 1.5) * line / pcie_bw;
        SimTime::from_secs(stream + random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_core::JoinAlgo;
    use hape_storage::datagen::gen_unique_keys;
    use hape_tpch::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};
    use hape_tpch::reference::{q6_reference, rows_approx_eq};

    fn scaled_server(sf: f64) -> Server {
        Server::tpch_scaled(sf)
    }

    #[test]
    fn q6_runs_and_matches_reference() {
        let sf = 0.01;
        let data = hape_tpch::generate(sf, 41);
        let q6 = q6_query().lower(&base_catalog(&data)).unwrap();
        let dbms = DbmsG::new(scaled_server(sf));
        let rep = dbms.run_plan(&q6.catalog, &q6.plan).unwrap();
        assert!(rows_approx_eq(&rep.rows, &q6_reference(&data)));
    }

    #[test]
    fn q1_q5_q9_unsupported_at_paper_scale() {
        // With GPU memory scaled to the data's scale factor (as at SF 100),
        // DBMS G can run only Q6 of the four (§6.4).
        let sf = 0.01;
        let data = hape_tpch::generate(sf, 42);
        let catalog = base_catalog(&data);
        let dbms = DbmsG::new(scaled_server(sf));
        let lower = |q: hape_core::Query| q.lower(&catalog).unwrap();
        let q1 = lower(q1_query());
        assert!(dbms.run_plan(&q1.catalog, &q1.plan).is_err(), "Q1 should not fit");
        let q5 = lower(q5_query(JoinAlgo::NonPartitioned));
        assert!(dbms.run_plan(&q5.catalog, &q5.plan).is_err(), "Q5 should not fit");
        let q9 = lower(q9_query(JoinAlgo::NonPartitioned));
        assert!(dbms.run_plan(&q9.catalog, &q9.plan).is_err(), "Q9 should not fit");
        let q6 = lower(q6_query());
        assert!(dbms.run_plan(&q6.catalog, &q6.plan).is_ok(), "Q6 must fit");
    }

    #[test]
    fn microbench_join_works_in_gpu_sizes() {
        let n = 1 << 16;
        let keys = gen_unique_keys(n, 6);
        let vals = vec![0u32; n];
        let r = JoinInput::new(&keys, &vals);
        let dbms = DbmsG::new(Server::paper_testbed());
        let out = dbms.join_microbench(r, r).unwrap();
        assert_eq!(out.stats.matches, n as u64);
    }

    #[test]
    fn uva_join_collapses_out_of_gpu() {
        let dbms = DbmsG::new(Server::paper_testbed());
        let t_256m = dbms.join_uva_time(256 << 20);
        let t_512m = dbms.join_uva_time(512 << 20);
        // Linear in n but at PCIe random-access throughput: seconds, not ms.
        assert!(t_256m.as_secs() > 1.0, "{t_256m}");
        assert!(t_512m.as_secs() > 1.9 * t_256m.as_secs() * 0.9);
    }
}
