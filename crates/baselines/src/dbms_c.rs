//! DBMS C: the MonetDB/X100-style vector-at-a-time CPU columnar engine.

use hape_core::engine::EngineError;
use hape_core::error::PlanError;
use hape_core::plan::{JoinTable, PipeOp, Pipeline, QueryPlan, Stage};
use hape_core::provider::{probe_join, TableStore};
use hape_core::Catalog;
use hape_join::{cpu_npj, cpu_radix, JoinInput, JoinOutcome, OutputMode};
use hape_ops::agg::AggState;
use hape_ops::cpu as cpu_ops;
use hape_sim::spec::CpuSpec;
use hape_sim::topology::Server;
use hape_sim::{CpuCostModel, SimTime};
use hape_storage::Batch;

use crate::{BaselineError, BaselineReport};

/// X100-style vector length.
const VECTOR_ROWS: usize = 1024;
/// Effective cache bandwidth for re-reading materialised vectors, bytes/s
/// per core.
const VECTOR_CACHE_BW: f64 = 25.0e9;
/// Interpretation overhead per operator per vector.
const INTERP_NS: f64 = 90.0;
/// Parallel efficiency across cores.
const PAR_EFF: f64 = 0.88;

/// The DBMS C stand-in.
#[derive(Debug, Clone)]
pub struct DbmsC {
    /// The host server (only the CPU sockets are used).
    pub server: Server,
}

impl DbmsC {
    /// DBMS C on a server.
    pub fn new(server: Server) -> Self {
        DbmsC { server }
    }

    fn model(&self) -> CpuCostModel {
        let spec: &CpuSpec = &self.server.cpus[0];
        CpuCostModel::new(spec.clone(), spec.cores)
    }

    fn workers(&self) -> f64 {
        self.server.total_cpu_cores() as f64 * PAR_EFF
    }

    /// The vector materialisation + interpretation surcharge for one
    /// operator boundary over one vector of `bytes`.
    fn vector_overhead(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(2.0 * bytes as f64 / VECTOR_CACHE_BW) + SimTime::from_ns(INTERP_NS)
    }

    /// Run a query plan vector-at-a-time. Results match the engine's; the
    /// cost model charges one full materialisation (+ re-read) per operator
    /// per vector, which is the execution-model difference the paper
    /// highlights on Q1.
    pub fn run_plan(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
    ) -> Result<BaselineReport, BaselineError> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let model = self.model();
        let mut tables = TableStore::new();
        let mut total = SimTime::ZERO;
        let mut rows = Vec::new();
        for stage in &plan.stages {
            match stage {
                Stage::Build { name, key_col, pipeline } => {
                    let (batch, t) =
                        self.run_pipeline(catalog, pipeline, &tables, &model, None)?;
                    total += t;
                    tables.insert(
                        name.clone(),
                        std::sync::Arc::new(JoinTable::build(batch, *key_col)),
                    );
                }
                Stage::Stream { pipeline } => {
                    let spec = pipeline.agg.clone().ok_or_else(|| {
                        EngineError::InvalidPlan(PlanError::StreamWithoutAggregate {
                            name: plan.name.clone(),
                        })
                    })?;
                    let mut agg = AggState::new(spec);
                    let (_, t) =
                        self.run_pipeline(catalog, pipeline, &tables, &model, Some(&mut agg))?;
                    total += t;
                    rows = agg.finish();
                }
            }
        }
        Ok(BaselineReport { rows, time: total })
    }

    fn run_pipeline(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        tables: &TableStore,
        model: &CpuCostModel,
        mut agg: Option<&mut AggState>,
    ) -> Result<(Batch, SimTime), EngineError> {
        let table = catalog.lookup(&pipeline.source)?;
        let mut outputs: Vec<Batch> = Vec::new();
        let mut t = SimTime::ZERO;
        // Stateful aggregates consume whole per-user runs; align the
        // vector boundaries the same way the engine aligns its packets.
        let vectors = match pipeline.stateful_agg() {
            Some(sagg) => hape_ops::stateful::split_user_aligned(
                &table.data,
                sagg.user_col(),
                VECTOR_ROWS,
            ),
            None => table.data.split(VECTOR_ROWS),
        };
        for vector in vectors {
            t += cpu_ops::scan_cost(vector.bytes(), model);
            let mut cur = vector;
            for op in &pipeline.ops {
                if cur.rows() == 0 {
                    break;
                }
                // Vector-at-a-time: the operator's input vector was
                // materialised by its producer and is re-read here.
                t += self.vector_overhead(cur.bytes());
                match op {
                    PipeOp::Filter(pred) => {
                        let (out, dt) = cpu_ops::filter(&cur, pred, model);
                        cur = out;
                        t += dt;
                    }
                    PipeOp::Project(exprs) => {
                        let (out, dt) = cpu_ops::project(&cur, exprs, model);
                        cur = out;
                        t += dt;
                    }
                    PipeOp::JoinProbe { ht, key_col, build_payload_cols, .. } => {
                        let jt = tables.get(ht).expect("table built");
                        let n = cur.rows() as u64;
                        let (out, chain) = probe_join(&cur, jt, *key_col, build_payload_cols);
                        t += model.ht_probe(n, chain, jt.bytes());
                        t += model.seq_write(out.bytes());
                        cur = out;
                    }
                    PipeOp::Stateful(sagg) => {
                        // Vectors were user-aligned above, so the per-user
                        // runs are intact inside each vector.
                        let n = cur.rows() as u64;
                        let (out, users) = hape_ops::stateful::run_stateful(sagg, &cur);
                        t += hape_ops::stateful::cpu_cost(
                            n,
                            users as u64,
                            users as u64 * sagg.state_bytes_per_user(),
                            sagg.ops_per_row(),
                            model,
                        );
                        t += model.seq_write(out.bytes());
                        cur = out;
                    }
                }
            }
            if let Some(state) = agg.as_deref_mut() {
                if cur.rows() > 0 {
                    t += self.vector_overhead(cur.bytes());
                    // Vectorised aggregation runs one primitive per
                    // aggregate, each reading its argument vector and
                    // materialising a result vector — the "multiple in-L1
                    // passes" the paper blames for DBMS C's Q1 gap (§6.4).
                    // Each expression node is its own primitive too
                    // (x100-style: `1-disc`, `price*tmp`, … are separate
                    // map primitives over temporary vectors).
                    let spec = state.spec();
                    let expr_passes: f64 = spec.aggs.iter().map(|(_, e)| e.ops_per_row()).sum();
                    let passes = spec.aggs.len() + expr_passes.ceil() as usize;
                    let prim_bytes = (cur.rows() * 16) as u64;
                    for _ in 0..passes {
                        t += self.vector_overhead(prim_bytes);
                    }
                    t += cpu_ops::agg_update(state, &cur, model);
                }
            } else if cur.rows() > 0 {
                outputs.push(cur);
            }
        }
        let batch = match outputs.len() {
            0 => Batch::empty(),
            1 => outputs.pop().expect("len checked"),
            _ => {
                let cols = (0..outputs[0].columns.len())
                    .map(|c| {
                        let parts: Vec<_> =
                            outputs.iter().map(|b| b.columns[c].clone()).collect();
                        hape_storage::Column::concat(&parts)
                    })
                    .collect();
                Batch::new(cols)
            }
        };
        Ok((batch, t / self.workers()))
    }

    /// DBMS C's equi-join for the Figure 6 microbenchmark: a
    /// non-partitioned hash join with vector-at-a-time overheads.
    pub fn join_microbench(&self, r: JoinInput<'_>, s: JoinInput<'_>) -> JoinOutcome {
        let mut out = cpu_npj(
            r,
            s,
            &self.model(),
            self.server.total_cpu_cores(),
            OutputMode::AggregateOnly,
        );
        out.time = out.time * 1.25; // vector materialisation between phases
        out
    }

    /// DBMS C's join for the out-of-GPU sizes of Figure 7: internally a
    /// multi-pass partitioned join, but paying full vector materialisation
    /// between the passes — which is why its throughput stays "significantly
    /// lower than the PCIe throughput" (§6.3).
    pub fn join_large(&self, r: JoinInput<'_>, s: JoinInput<'_>) -> JoinOutcome {
        let mut out = cpu_radix(
            r,
            s,
            &self.model(),
            self.server.total_cpu_cores(),
            OutputMode::AggregateOnly,
        );
        out.time = out.time * 1.5;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_core::{Engine, ExecConfig, JoinAlgo, Placement};
    use hape_storage::datagen::gen_unique_keys;
    use hape_tpch::queries::{base_catalog, q1_query, q5_query};
    use hape_tpch::reference::{q1_reference, q5_reference, rows_approx_eq};

    #[test]
    fn q1_results_match_reference() {
        let data = hape_tpch::generate(0.002, 31);
        let q1 = q1_query().lower(&base_catalog(&data)).unwrap();
        let dbms = DbmsC::new(Server::paper_testbed());
        let rep = dbms.run_plan(&q1.catalog, &q1.plan).unwrap();
        assert!(rows_approx_eq(&rep.rows, &q1_reference(&data)));
    }

    #[test]
    fn q5_results_match_reference() {
        let data = hape_tpch::generate(0.002, 32);
        let q5 = q5_query(JoinAlgo::NonPartitioned).lower(&base_catalog(&data)).unwrap();
        let dbms = DbmsC::new(Server::paper_testbed());
        let rep = dbms.run_plan(&q5.catalog, &q5.plan).unwrap();
        assert!(rows_approx_eq(&rep.rows, &q5_reference(&data)));
    }

    #[test]
    fn slower_than_proteus_cpu_on_q1() {
        // The paper's Figure 8: multiple aggregates make DBMS C pay for its
        // vector-at-a-time passes where JIT fusion does not.
        let data = hape_tpch::generate(0.1, 33);
        let q1 = q1_query().lower(&base_catalog(&data)).unwrap();
        let server = Server::paper_testbed();
        let dbms = DbmsC::new(server.clone());
        let t_c = dbms.run_plan(&q1.catalog, &q1.plan).unwrap().time;
        let engine = Engine::new(server);
        let t_proteus = engine
            .run(&q1.catalog, &q1.plan, &ExecConfig::new(Placement::CpuOnly))
            .unwrap()
            .time;
        assert!(
            t_c.as_secs() > 1.3 * t_proteus.as_secs(),
            "DBMS C {t_c} vs Proteus CPU {t_proteus}"
        );
    }

    #[test]
    fn microbench_join_slower_than_plain_npj() {
        let n = 1 << 16;
        let keys = gen_unique_keys(n, 5);
        let vals = vec![0u32; n];
        let r = JoinInput::new(&keys, &vals);
        let server = Server::paper_testbed();
        let dbms = DbmsC::new(server.clone());
        let out = dbms.join_microbench(r, r);
        assert_eq!(out.stats.matches, n as u64);
        let plain = cpu_npj(
            r,
            r,
            &CpuCostModel::new(server.cpus[0].clone(), server.cpus[0].cores),
            server.total_cpu_cores(),
            OutputMode::AggregateOnly,
        );
        assert!(out.time > plain.time);
    }
}
