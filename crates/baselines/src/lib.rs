//! # hape-baselines — the commercial-system stand-ins
//!
//! The paper compares against two closed-source systems (§6.1):
//!
//! * **DBMS C** — "a CPU-based columnar DBMS … based on MonetDB/X100, uses
//!   SIMD vector-at-a-time execution and supports multi-CPU execution".
//!   [`DbmsC`] is a vector-at-a-time executor: operators exchange ~1K-row
//!   vectors that are fully materialised between operators, so every extra
//!   operator is an extra in-cache pass — the overhead the paper blames for
//!   its Q1 gap (§6.4). Its join is a non-partitioned hash join.
//!
//! * **DBMS G** — "a GPU-based DBMS that supports multi-GPU execution and
//!   uses just-in-time code generation for the in-GPU kernels", optimised
//!   for star schemas and *in-GPU* processing. [`DbmsG`] is an
//!   operator-at-a-time GPU executor that materialises every intermediate
//!   in device memory and refuses queries whose working set exceeds the
//!   aggregate GPU memory (why it runs only Q6 of the four, §6.4), and
//!   falls off a cliff on out-of-GPU joins (UVA-style access over PCIe,
//!   Fig. 7).
//!
//! Both produce *real* results (they share the operator semantics with the
//! engine) while charging their own execution-model costs.

#![forbid(unsafe_code)]

pub mod dbms_c;
pub mod dbms_g;

pub use dbms_c::DbmsC;
pub use dbms_g::{DbmsG, GpuUnsupported};

use hape_core::engine::EngineError;
use hape_ops::GroupKey;
use hape_sim::SimTime;

/// Why a baseline refused or failed a query.
#[derive(Debug)]
pub enum BaselineError {
    /// Shared execution failure (missing table, invalid plan, …).
    Engine(EngineError),
    /// The query exceeds the system's capabilities (DBMS G's in-GPU
    /// working-set constraint).
    Unsupported(GpuUnsupported),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Engine(e) => write!(f, "{e}"),
            BaselineError::Unsupported(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Engine(e) => Some(e),
            BaselineError::Unsupported(e) => Some(e),
        }
    }
}

impl From<EngineError> for BaselineError {
    fn from(e: EngineError) -> Self {
        BaselineError::Engine(e)
    }
}

impl From<GpuUnsupported> for BaselineError {
    fn from(e: GpuUnsupported) -> Self {
        BaselineError::Unsupported(e)
    }
}

/// A baseline query result.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Aggregated rows (same shape as the engine's).
    pub rows: Vec<(GroupKey, Vec<f64>)>,
    /// Simulated latency.
    pub time: SimTime,
}

/// Commonly used items.
pub mod prelude {
    pub use crate::dbms_c::DbmsC;
    pub use crate::dbms_g::DbmsG;
    pub use crate::{BaselineError, BaselineReport};
}
