//! The co-processing radix join (§5, Sioulas et al. \[30\]).
//!
//! When the inputs exceed GPU memory, the CPU performs a *low-fanout*
//! co-partitioning local to the data — fanout chosen just large enough that
//! each co-partition (plus the GPU join's working space) fits GPU memory.
//! Low fanout keeps the CPU side near DRAM bandwidth. Each co-partition pair
//! then makes a **single pass over PCIe** and is joined on a GPU with the
//! hardware-conscious radix join, whose radix continues where the CPU's
//! stopped. With several GPUs on dedicated links, co-partitions are
//! load-balanced across them (Fig. 7's 1.7× scaling from a second GPU).
//!
//! The join is **heterogeneity-aware**: every selected GPU is priced and
//! capacity-checked against *its own* spec, budget, link and kernel
//! simulator ([`coprocess_join_on`]), so a server mixing GPU models (or
//! links of different widths) schedules each co-partition onto the device
//! where it finishes earliest — and never onto one it does not fit.

use hape_sim::des::Resource;
use hape_sim::spec::CpuSpec;
use hape_sim::topology::Server;
use hape_sim::{Fidelity, GpuSim, SimTime};

use crate::common::{JoinInput, JoinOutcome, JoinStats, OutputMode};
use crate::cpu_radix::RadixPlan;
use crate::gpu_radix::{gpu_radix_with_shift, BuildProbeVariant};
use crate::partition::radix_partition_with_threads;
use hape_sim::CpuCostModel;

/// Maximum CPU-side partition passes the co-partitioning may take. Each
/// pass streams both inputs at near-DRAM bandwidth (§5's low-fanout
/// argument); together with [`CpuSpec::max_partition_fanout`] this bounds
/// the total fanout the planner may request.
pub const COPROCESS_MAX_PASSES: u32 = 3;

/// Configuration of a co-processing run.
#[derive(Debug, Clone, Copy)]
pub struct CoprocessConfig {
    /// GPUs to use (must not exceed the server's).
    pub n_gpus: usize,
    /// CPU cores performing the co-partitioning.
    pub cpu_workers: usize,
    /// GPU-side build & probe variant.
    pub variant: BuildProbeVariant,
    /// Output mode.
    pub mode: OutputMode,
    /// GPU memory-model fidelity.
    pub fidelity: Fidelity,
    /// Real threads executing the co-partitioning passes (the simulated
    /// cost is governed by `cpu_workers`; this knob only changes the wall
    /// clock — results are byte-identical at any value).
    pub threads: usize,
}

impl Default for CoprocessConfig {
    fn default() -> Self {
        CoprocessConfig {
            n_gpus: 1,
            cpu_workers: 24,
            variant: BuildProbeVariant::Sm,
            mode: OutputMode::AggregateOnly,
            fidelity: Fidelity::Analytic,
            threads: 1,
        }
    }
}

/// Errors of the co-processing join.
#[derive(Debug)]
pub enum CoprocessError {
    /// A single co-partition exceeds every selected GPU's memory even at
    /// maximum fanout — the skew case the paper's single-pass guarantee
    /// excludes (§5).
    OversizedCoPartition {
        /// The offending partition index.
        partition: usize,
        /// Its size in bytes (both sides + working space).
        bytes: u64,
        /// The largest GPU budget it had to fit in.
        budget: u64,
    },
    /// No GPUs configured (or none of the requested ids exist).
    NoGpus,
    /// The co-partitioning needs CPUs, but the server has none.
    NoCpus,
    /// A selected GPU id is beyond the server's GPU list.
    UnknownGpu {
        /// The requested GPU index.
        gpu: usize,
    },
    /// A selected GPU has no PCIe link in the server topology (the
    /// topology lists fewer links than GPUs) — co-partitions could never
    /// reach it.
    MissingLink {
        /// The link-less GPU index.
        gpu: usize,
    },
    /// The inputs need a higher co-partitioning fanout than the CPU can
    /// produce in [`COPROCESS_MAX_PASSES`] passes (each bounded by
    /// [`CpuSpec::max_partition_fanout`]).
    FanoutExceeded {
        /// Radix bits the GPU budget demands.
        required_bits: u32,
        /// Radix bits the CPU can produce.
        max_bits: u32,
    },
}

impl std::fmt::Display for CoprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoprocessError::OversizedCoPartition { partition, bytes, budget } => write!(
                f,
                "co-partition {partition} needs {bytes} bytes > GPU budget {budget} \
                 (skewed key?)"
            ),
            CoprocessError::NoGpus => write!(f, "co-processing requires at least one GPU"),
            CoprocessError::NoCpus => {
                write!(f, "co-processing requires CPUs for the co-partitioning")
            }
            CoprocessError::UnknownGpu { gpu } => {
                write!(f, "selected gpu{gpu} does not exist on this server")
            }
            CoprocessError::MissingLink { gpu } => {
                write!(f, "selected gpu{gpu} has no PCIe link in the topology")
            }
            CoprocessError::FanoutExceeded { required_bits, max_bits } => write!(
                f,
                "co-partitioning needs 2^{required_bits} fanout but the CPU tops out at \
                 2^{max_bits} in {COPROCESS_MAX_PASSES} passes"
            ),
        }
    }
}

impl std::error::Error for CoprocessError {}

/// Detailed result of a co-processing run.
#[derive(Debug, Clone)]
pub struct CoprocessReport {
    /// Join results and end-to-end simulated time.
    pub outcome: JoinOutcome,
    /// CPU-side partitioning time (before overlap).
    pub cpu_partition_time: SimTime,
    /// Aggregate PCIe busy time across links.
    pub transfer_busy: SimTime,
    /// Aggregate GPU busy time.
    pub gpu_busy: SimTime,
    /// Host-to-device bytes moved (every co-partition pair crosses its
    /// GPU's link exactly once — the single-pass guarantee).
    pub h2d_bytes: u64,
    /// When the *first* co-partition's join completed — the earliest
    /// moment any match pairs exist (consumers overlapping with the join
    /// cannot start before this).
    pub first_join_done: SimTime,
    /// Number of co-partitions.
    pub co_partitions: usize,
    /// CPU-side radix bits.
    pub cpu_bits: u32,
    /// Per-GPU co-partition assignment counts (indexed like the selected
    /// GPU ids).
    pub per_gpu_assignments: Vec<usize>,
}

/// The fraction of a GPU's device memory the co-partitioning may plan
/// against (the rest is working-space slack for tails/bookkeeping).
const GPU_BUDGET_FRACTION: f64 = 0.9;

/// A GPU's co-partition budget: the device memory available to one
/// resident co-partition pair plus the join's double buffers.
pub fn gpu_budget(dram_capacity: usize) -> u64 {
    (dram_capacity as f64 * GPU_BUDGET_FRACTION) as u64
}

/// Pick the CPU-side fanout: the smallest power of two such that one
/// co-partition pair plus the GPU join's double-buffered working space fits
/// in `budget` bytes of GPU memory (§5: partitions "just small enough to
/// fit in GPU-memory").
///
/// The fanout is bounded by what `cpu` can produce in
/// [`COPROCESS_MAX_PASSES`] passes of at most
/// [`CpuSpec::max_partition_fanout`] each; inputs that would need more are
/// the typed [`CoprocessError::FanoutExceeded`], surfaced at *planning*
/// time instead of silently under-partitioning and failing later with a
/// misleading skew error.
pub fn plan_cpu_bits(
    r_bytes: u64,
    s_bytes: u64,
    budget: u64,
    cpu: &CpuSpec,
) -> Result<u32, CoprocessError> {
    // gpu_radix allocates in+out buffers for both sides: 2×(r+s) per
    // co-partition, plus slack for tails/bookkeeping.
    let max_pass_bits = cpu.max_partition_fanout().trailing_zeros().max(1);
    let max_bits = max_pass_bits * COPROCESS_MAX_PASSES;
    let mut bits = 0u32;
    while (2 * (r_bytes + s_bytes)) >> bits > budget.max(1) {
        bits += 1;
        if bits > max_bits {
            return Err(CoprocessError::FanoutExceeded { required_bits: bits, max_bits });
        }
    }
    // At least 8 co-partitions: enough packets to pipeline transfers with
    // GPU execution and to load-balance across GPUs, while the fanout stays
    // far below the TLB bound (so the CPU side keeps its near-DRAM
    // throughput, §5).
    Ok(bits.max(3))
}

/// Run the co-processing join on `server` (CPU-resident inputs), using the
/// first `cfg.n_gpus` GPUs. See [`coprocess_join_on`] for explicit device
/// selection.
pub fn coprocess_join(
    server: &Server,
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    cfg: &CoprocessConfig,
) -> Result<CoprocessReport, CoprocessError> {
    let ids: Vec<usize> = (0..cfg.n_gpus.min(server.gpus.len())).collect();
    coprocess_join_on(server, &ids, r, s, cfg)
}

/// One selected GPU with its own spec-derived state: budget, link, kernel
/// simulator and clocked resources — no device borrows another's spec.
struct GpuLane {
    budget: u64,
    link: hape_sim::interconnect::Link,
    gpu: Resource,
    /// Index into the distinct-spec simulator list (GPUs sharing a spec
    /// share per-partition join pricing, computed once).
    sim_group: usize,
}

/// Run the co-processing join on an explicit GPU subset (`gpu_ids` index
/// into `server.gpus`). Every GPU is validated, priced and
/// capacity-checked against its own spec, budget and PCIe link.
pub fn coprocess_join_on(
    server: &Server,
    gpu_ids: &[usize],
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    cfg: &CoprocessConfig,
) -> Result<CoprocessReport, CoprocessError> {
    if gpu_ids.is_empty() || server.gpus.is_empty() {
        return Err(CoprocessError::NoGpus);
    }
    if server.cpus.is_empty() {
        return Err(CoprocessError::NoCpus);
    }
    // ---- Validate the subset up front: every GPU must exist *and* have a
    // PCIe link (a topology listing fewer links than GPUs is a typed
    // error, not an out-of-bounds panic).
    let mut sims: Vec<GpuSim> = Vec::new();
    let mut lanes: Vec<GpuLane> = Vec::with_capacity(gpu_ids.len());
    for &g in gpu_ids {
        let spec = server.gpus.get(g).ok_or(CoprocessError::UnknownGpu { gpu: g })?;
        let link = server.pcie.get(g).ok_or(CoprocessError::MissingLink { gpu: g })?;
        let sim_group = match sims.iter().position(|s| s.spec() == spec) {
            Some(i) => i,
            None => {
                sims.push(GpuSim::new(spec.clone(), cfg.fidelity));
                sims.len() - 1
            }
        };
        let mut link = link.clone();
        link.reset();
        lanes.push(GpuLane {
            budget: gpu_budget(spec.dram_capacity),
            link,
            gpu: Resource::new(format!("gpu{g}")),
            sim_group,
        });
    }
    let min_budget = lanes.iter().map(|l| l.budget).min().unwrap_or(0);
    let max_budget = lanes.iter().map(|l| l.budget).max().unwrap_or(0);
    let cpu_spec = &server.cpus[0];

    // ---- Plan and execute the CPU-side co-partitioning. Prefer the
    // fanout at which a co-partition fits *every* selected GPU (best load
    // balance); if only a larger budget is reachable within the fanout
    // bound, plan for it and let the per-partition routing skip the
    // smaller devices.
    let cpu_bits = plan_cpu_bits(r.bytes(), s.bytes(), min_budget, cpu_spec)
        .or_else(|_| plan_cpu_bits(r.bytes(), s.bytes(), max_budget, cpu_spec))?;
    let max_pass_bits = cpu_spec.max_partition_fanout().trailing_zeros().max(1);
    let plan = {
        let mut pass_bits = Vec::new();
        let mut rem = cpu_bits;
        while rem > 0 {
            let b = rem.min(max_pass_bits);
            pass_bits.push(b);
            rem -= b;
        }
        RadixPlan { pass_bits, total_bits: cpu_bits }
    };
    let (rp, _) = radix_partition_with_threads(r, cpu_bits, max_pass_bits, cfg.threads);
    let (sp, _) = radix_partition_with_threads(s, cpu_bits, max_pass_bits, cfg.threads);
    let fanout = rp.fanout();

    // CPU partitioning cost: the low fanout keeps every pass near DRAM
    // bandwidth. Both sockets' workers share the work.
    let per_socket = (cfg.cpu_workers / server.cpus.len()).max(1);
    let model = CpuCostModel::new(cpu_spec.clone(), per_socket.min(cpu_spec.cores));
    let mut t_cpu = SimTime::ZERO;
    for &bits in &plan.pass_bits {
        t_cpu += model.partition_pass(r.len() as u64, 8, 1 << bits);
        t_cpu += model.partition_pass(s.len() as u64, 8, 1 << bits);
    }
    let t_cpu = t_cpu / (cfg.cpu_workers.max(1) as f64 * 0.92);

    // ---- Schedule co-partitions over GPUs (load-aware routing).
    let mut assignments = vec![0usize; lanes.len()];
    let mut stats = JoinStats::default();
    let mut pairs = match cfg.mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };
    let mut makespan = SimTime::ZERO;
    let mut first_join_done: Option<SimTime> = None;
    let mut h2d_bytes = 0u64;
    // Per-spec-group join-time estimate for the load-aware pick, seeded
    // from the spec (single-pass radix join ≈ a few device-memory trips
    // plus the launch overhead) and replaced by each observed join time —
    // so the real join executes exactly once per co-partition, on the
    // chosen lane's own simulator. Co-partitions are near-equal sized, so
    // the previous partition's time is an accurate predictor; with
    // homogeneous GPUs (one group) the estimate is identical for every
    // lane and the pick reduces to the link/queue comparison.
    let mut group_est: Vec<Option<SimTime>> = vec![None; sims.len()];

    for p in 0..fanout {
        let rpart = rp.part(p);
        let spart = sp.part(p);
        if rpart.is_empty() && spart.is_empty() {
            continue;
        }
        let pair_bytes = rpart.bytes() + spart.bytes();
        if 2 * pair_bytes > max_budget {
            return Err(CoprocessError::OversizedCoPartition {
                partition: p,
                bytes: 2 * pair_bytes,
                budget: max_budget,
            });
        }
        // The co-partition becomes available as the CPU pass streams through
        // the data (pipelined production).
        let ready = t_cpu * ((p + 1) as f64 / fanout as f64);

        // Load-aware GPU choice among the devices the co-partition fits:
        // earliest estimated completion wins, each lane priced with its
        // own link and its own spec group's join-time estimate.
        let mut best: Option<usize> = None;
        let mut best_end: Option<SimTime> = None;
        for (i, lane) in lanes.iter().enumerate() {
            if 2 * pair_bytes > lane.budget {
                continue;
            }
            let join_time = group_est[lane.sim_group].unwrap_or_else(|| {
                let spec = sims[lane.sim_group].spec();
                SimTime::from_ns(
                    4.0 * pair_bytes as f64 / spec.dram_bw * 1e9 + spec.launch_overhead_ns,
                )
            });
            let t_start = lane.link.free_at().max(ready);
            let t_arrive = t_start + lane.link.duration(pair_bytes);
            let end = lane.gpu.free_at().max(t_arrive) + join_time;
            if best_end.is_none_or(|b| end < b) {
                best_end = Some(end);
                best = Some(i);
            }
        }
        let Some(best) = best else {
            return Err(CoprocessError::OversizedCoPartition {
                partition: p,
                bytes: 2 * pair_bytes,
                budget: max_budget,
            });
        };
        // The in-GPU join, once, on the chosen lane's own simulator.
        let group = lanes[best].sim_group;
        let join =
            gpu_radix_with_shift(&sims[group], rpart, spart, cpu_bits, cfg.variant, cfg.mode)
                .map_err(|e| CoprocessError::OversizedCoPartition {
                partition: p,
                bytes: e.requested,
                budget: e.available,
            })?;
        group_est[group] = Some(join.time);
        stats.merge(&join.stats);
        if let (Some((pr, ps)), Some((jr, js))) = (pairs.as_mut(), join.pairs.as_ref()) {
            pr.extend_from_slice(jr);
            ps.extend_from_slice(js);
        }
        let lane = &mut lanes[best];
        let (_, arrived) = lane.link.transfer(ready, pair_bytes);
        let (_, done) = lane.gpu.acquire(arrived, join.time);
        assignments[best] += 1;
        h2d_bytes += pair_bytes;
        makespan = makespan.max(done);
        first_join_done = Some(first_join_done.map_or(done, |f| f.min(done)));
    }
    let transfer_busy = lanes.iter().map(|l| l.link.busy_time()).sum::<SimTime>();
    let gpu_busy = lanes.iter().map(|l| l.gpu.busy_time()).sum::<SimTime>();

    Ok(CoprocessReport {
        outcome: JoinOutcome { stats, pairs, time: makespan },
        cpu_partition_time: t_cpu,
        transfer_busy,
        gpu_busy,
        h2d_bytes,
        first_join_done: first_join_done.unwrap_or(SimTime::ZERO),
        co_partitions: fanout,
        cpu_bits,
        per_gpu_assignments: assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use hape_sim::spec::GpuSpec;
    use hape_storage::datagen::{gen_unique_keys, gen_zipf_i32};

    fn small_gpu_server(capacity_factor: f64) -> Server {
        Server::paper_testbed_gpu_mem_scaled(capacity_factor)
    }

    #[test]
    fn matches_reference() {
        let n = 1 << 14;
        let rk = gen_unique_keys(n, 71);
        let sk = gen_unique_keys(n, 72);
        let rv: Vec<u32> = (0..n as u32).collect();
        let sv: Vec<u32> = (0..n as u32).map(|i| i + 3).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        // GPU memory scaled way down so the join is genuinely out-of-GPU.
        let server = small_gpu_server(1.0 / 65536.0); // 128 KiB
        let cfg = CoprocessConfig { mode: OutputMode::MatchIndices, ..Default::default() };
        let rep = coprocess_join(&server, r, s, &cfg).unwrap();
        let reference = reference_join(r, s);
        assert_eq!(rep.outcome.stats, reference.stats);
        assert_eq!(rep.outcome.sorted_pairs(), reference.sorted_pairs());
        assert!(rep.co_partitions > 1, "expected real co-partitioning");
        assert!(rep.h2d_bytes > 0, "co-partitions must cross PCIe");
    }

    #[test]
    fn second_gpu_speeds_up() {
        let n = 1 << 16;
        let rk = gen_unique_keys(n, 73);
        let rv = vec![1u32; n];
        let r = JoinInput::new(&rk, &rv);
        let server = small_gpu_server(1.0 / 65536.0);
        let one =
            coprocess_join(&server, r, r, &CoprocessConfig { n_gpus: 1, ..Default::default() })
                .unwrap();
        let two =
            coprocess_join(&server, r, r, &CoprocessConfig { n_gpus: 2, ..Default::default() })
                .unwrap();
        assert_eq!(one.outcome.stats, two.outcome.stats);
        let speedup = one.outcome.time / two.outcome.time;
        assert!(speedup > 1.3, "2-GPU speedup only {speedup:.2}x");
        assert!(speedup < 2.2, "2-GPU speedup implausible: {speedup:.2}x");
        assert!(
            two.per_gpu_assignments.iter().all(|&a| a > 0),
            "{:?}",
            two.per_gpu_assignments
        );
    }

    #[test]
    fn partition_threads_are_a_pure_wall_clock_knob() {
        // Same results, pairs, simulated times and transfer bytes at any
        // real-thread count: the chunked partition passes may not leak
        // into anything observable.
        let n = 1 << 14;
        let rk = gen_unique_keys(n, 91);
        let sk = gen_unique_keys(n, 92);
        let rv: Vec<u32> = (0..n as u32).collect();
        let sv: Vec<u32> = (0..n as u32).map(|i| i + 7).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let server = small_gpu_server(1.0 / 65536.0);
        let cfg = CoprocessConfig { mode: OutputMode::MatchIndices, ..Default::default() };
        let base = coprocess_join(&server, r, s, &cfg).unwrap();
        for threads in [2, 8, 24] {
            let rep =
                coprocess_join(&server, r, s, &CoprocessConfig { threads, ..cfg }).unwrap();
            assert_eq!(rep.outcome.stats, base.outcome.stats, "threads={threads}");
            assert_eq!(rep.outcome.pairs, base.outcome.pairs, "threads={threads}");
            assert_eq!(rep.outcome.time, base.outcome.time, "threads={threads}");
            assert_eq!(rep.cpu_partition_time, base.cpu_partition_time, "threads={threads}");
            assert_eq!(rep.h2d_bytes, base.h2d_bytes, "threads={threads}");
            assert_eq!(rep.per_gpu_assignments, base.per_gpu_assignments, "threads={threads}");
        }
    }

    #[test]
    fn skewed_key_detected() {
        // All tuples share one key: the co-partition cannot be split.
        let n = 1 << 14;
        let keys = vec![42i32; n];
        let vals = vec![0u32; n];
        let r = JoinInput::new(&keys, &vals);
        let server = small_gpu_server(1.0 / 1_000_000.0);
        let err = coprocess_join(&server, r, r, &CoprocessConfig::default()).unwrap_err();
        assert!(matches!(err, CoprocessError::OversizedCoPartition { .. }), "{err}");
    }

    #[test]
    fn moderate_zipf_still_works() {
        let n = 1 << 14;
        let keys = gen_zipf_i32(n, 1 << 13, 0.5, 5);
        let vals = vec![1u32; n];
        let r = JoinInput::new(&keys, &vals);
        let server = small_gpu_server(1.0 / 16384.0);
        let rep = coprocess_join(&server, r, r, &CoprocessConfig::default()).unwrap();
        assert!(rep.outcome.stats.matches >= n as u64);
    }

    #[test]
    fn fanout_planning_fits_budget() {
        let gpu = GpuSpec::gtx_1080();
        let cpu = CpuSpec::xeon_e5_2650l_v3();
        let budget = gpu_budget(gpu.dram_capacity);
        let bits = plan_cpu_bits(16 << 30, 16 << 30, budget, &cpu).unwrap();
        // 2*(32GB) >> bits <= 0.9*8GB  →  bits >= 4.
        assert!(bits >= 4);
        assert!(((2u64 * 32) << 30) >> bits <= budget);
    }

    #[test]
    fn fanout_planning_goes_beyond_the_old_16_bit_break() {
        // A budget small enough to need a ~18-bit fanout: the old code
        // silently broke out at 16 bits, under-partitioned, and failed
        // later with a skew error; the fanout now follows the CPU spec.
        let cpu = CpuSpec::xeon_e5_2650l_v3();
        let max_pass_bits = cpu.max_partition_fanout().trailing_zeros().max(1);
        assert!(
            max_pass_bits * COPROCESS_MAX_PASSES > 16,
            "spec-derived bound must exceed the old hard-coded 16"
        );
        let total: u64 = 1 << 40; // 1 TiB of input
        let budget: u64 = 8 << 20; // 8 MiB per co-partition
        let bits = plan_cpu_bits(total / 2, total / 2, budget, &cpu).unwrap();
        assert!(bits > 16, "needed {bits} bits");
        assert!((2 * total) >> bits <= budget);
        // Past the spec bound the planner errs out, typed.
        let err = plan_cpu_bits(total / 2, total / 2, 16, &cpu).unwrap_err();
        assert!(matches!(err, CoprocessError::FanoutExceeded { .. }), "{err}");
    }

    #[test]
    fn missing_pcie_link_is_a_typed_error_not_a_panic() {
        let n = 1 << 12;
        let rk = gen_unique_keys(n, 77);
        let rv = vec![1u32; n];
        let r = JoinInput::new(&rk, &rv);
        // Two GPUs, one PCIe link: the old code indexed links[1] out of
        // bounds mid-schedule.
        let mut server = small_gpu_server(1.0 / 65536.0);
        server.pcie.truncate(1);
        let err =
            coprocess_join(&server, r, r, &CoprocessConfig { n_gpus: 2, ..Default::default() })
                .unwrap_err();
        assert!(matches!(err, CoprocessError::MissingLink { gpu: 1 }), "{err}");
    }

    #[test]
    fn unknown_gpu_and_empty_servers_are_typed() {
        let n = 1 << 10;
        let rk = gen_unique_keys(n, 78);
        let rv = vec![1u32; n];
        let r = JoinInput::new(&rk, &rv);
        let server = small_gpu_server(1.0 / 65536.0);
        let err =
            coprocess_join_on(&server, &[7], r, r, &CoprocessConfig::default()).unwrap_err();
        assert!(matches!(err, CoprocessError::UnknownGpu { gpu: 7 }), "{err}");
        let mut no_cpus = small_gpu_server(1.0 / 65536.0);
        no_cpus.cpus.clear();
        let err = coprocess_join(&no_cpus, r, r, &CoprocessConfig::default()).unwrap_err();
        assert!(matches!(err, CoprocessError::NoCpus), "{err}");
        let err =
            coprocess_join_on(&server, &[], r, r, &CoprocessConfig::default()).unwrap_err();
        assert!(matches!(err, CoprocessError::NoGpus), "{err}");
    }

    #[test]
    fn heterogeneous_gpus_match_reference_and_respect_budgets() {
        let n = 1 << 14;
        let rk = gen_unique_keys(n, 81);
        let sk = gen_unique_keys(n, 82);
        let rv: Vec<u32> = (0..n as u32).collect();
        let sv: Vec<u32> = (0..n as u32).map(|i| i + 9).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        // GPU 1 has half GPU 0's memory and a slower link.
        let mut server = small_gpu_server(1.0 / 8192.0);
        server.gpus[1].dram_capacity /= 2;
        server.pcie[1].bw /= 4.0;
        let cfg =
            CoprocessConfig { n_gpus: 2, mode: OutputMode::MatchIndices, ..Default::default() };
        let rep = coprocess_join(&server, r, s, &cfg).unwrap();
        let reference = reference_join(r, s);
        assert_eq!(rep.outcome.stats, reference.stats);
        assert_eq!(rep.outcome.sorted_pairs(), reference.sorted_pairs());
        // Planned for the *smaller* budget, so both devices stay usable —
        // and the faster link still attracts more co-partitions.
        let small_budget = gpu_budget(server.gpus[1].dram_capacity);
        let max_pair = (2 * (r.bytes() + s.bytes())) >> rep.cpu_bits;
        assert!(
            max_pair <= small_budget,
            "per-partition {max_pair} B exceeds the small GPU's {small_budget} B"
        );
        assert!(
            rep.per_gpu_assignments.iter().all(|&a| a > 0),
            "{:?}",
            rep.per_gpu_assignments
        );
    }

    #[test]
    fn tiny_second_gpu_is_skipped_not_overcommitted() {
        let n = 1 << 14;
        let rk = gen_unique_keys(n, 83);
        let rv = vec![1u32; n];
        let r = JoinInput::new(&rk, &rv);
        // GPU 1 is so small that min-budget planning would exceed the
        // fanout bound; the planner falls back to GPU 0's budget and the
        // routing never assigns GPU 1 a partition it cannot hold.
        let mut server = small_gpu_server(1.0 / 65536.0);
        server.gpus[1].dram_capacity = 16;
        let cfg = CoprocessConfig { n_gpus: 2, ..Default::default() };
        let rep = coprocess_join(&server, r, r, &cfg).unwrap();
        let reference = reference_join(r, r);
        assert_eq!(rep.outcome.stats, reference.stats);
        assert_eq!(rep.per_gpu_assignments[1], 0, "{:?}", rep.per_gpu_assignments);
        assert!(rep.per_gpu_assignments[0] > 0);
    }
}
