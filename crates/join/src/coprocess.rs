//! The co-processing radix join (§5, Sioulas et al. \[30\]).
//!
//! When the inputs exceed GPU memory, the CPU performs a *low-fanout*
//! co-partitioning local to the data — fanout chosen just large enough that
//! each co-partition (plus the GPU join's working space) fits GPU memory.
//! Low fanout keeps the CPU side near DRAM bandwidth. Each co-partition pair
//! then makes a **single pass over PCIe** and is joined on a GPU with the
//! hardware-conscious radix join, whose radix continues where the CPU's
//! stopped. With several GPUs on dedicated links, co-partitions are
//! load-balanced across them (Fig. 7's 1.7× scaling from a second GPU).

use hape_sim::des::Resource;
use hape_sim::spec::GpuSpec;
use hape_sim::topology::Server;
use hape_sim::{Fidelity, GpuSim, SimTime};

use crate::common::{JoinInput, JoinOutcome, JoinStats, OutputMode};
use crate::cpu_radix::RadixPlan;
use crate::gpu_radix::{gpu_radix_with_shift, BuildProbeVariant};
use crate::partition::radix_partition;
use hape_sim::CpuCostModel;

/// Configuration of a co-processing run.
#[derive(Debug, Clone, Copy)]
pub struct CoprocessConfig {
    /// GPUs to use (must not exceed the server's).
    pub n_gpus: usize,
    /// CPU cores performing the co-partitioning.
    pub cpu_workers: usize,
    /// GPU-side build & probe variant.
    pub variant: BuildProbeVariant,
    /// Output mode.
    pub mode: OutputMode,
    /// GPU memory-model fidelity.
    pub fidelity: Fidelity,
}

impl Default for CoprocessConfig {
    fn default() -> Self {
        CoprocessConfig {
            n_gpus: 1,
            cpu_workers: 24,
            variant: BuildProbeVariant::Sm,
            mode: OutputMode::AggregateOnly,
            fidelity: Fidelity::Analytic,
        }
    }
}

/// Errors of the co-processing join.
#[derive(Debug)]
pub enum CoprocessError {
    /// A single co-partition exceeds GPU memory even at maximum fanout —
    /// the skew case the paper's single-pass guarantee excludes (§5).
    OversizedCoPartition {
        /// The offending partition index.
        partition: usize,
        /// Its size in bytes (both sides + working space).
        bytes: u64,
        /// The GPU budget it had to fit in.
        budget: u64,
    },
    /// No GPUs configured.
    NoGpus,
}

impl std::fmt::Display for CoprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoprocessError::OversizedCoPartition { partition, bytes, budget } => write!(
                f,
                "co-partition {partition} needs {bytes} bytes > GPU budget {budget} \
                 (skewed key?)"
            ),
            CoprocessError::NoGpus => write!(f, "co-processing requires at least one GPU"),
        }
    }
}

impl std::error::Error for CoprocessError {}

/// Detailed result of a co-processing run.
#[derive(Debug, Clone)]
pub struct CoprocessReport {
    /// Join results and end-to-end simulated time.
    pub outcome: JoinOutcome,
    /// CPU-side partitioning time (before overlap).
    pub cpu_partition_time: SimTime,
    /// Aggregate PCIe busy time across links.
    pub transfer_busy: SimTime,
    /// Aggregate GPU busy time.
    pub gpu_busy: SimTime,
    /// Number of co-partitions.
    pub co_partitions: usize,
    /// CPU-side radix bits.
    pub cpu_bits: u32,
    /// Per-GPU co-partition assignment counts.
    pub per_gpu_assignments: Vec<usize>,
}

/// Pick the CPU-side fanout: the smallest power of two such that one
/// co-partition pair plus the GPU join's double-buffered working space fits
/// in GPU memory (§5: partitions "just small enough to fit in GPU-memory").
pub fn plan_cpu_bits(r_bytes: u64, s_bytes: u64, gpu: &GpuSpec) -> u32 {
    // gpu_radix allocates in+out buffers for both sides: 2×(r+s) per
    // co-partition, plus slack for tails/bookkeeping.
    let budget = (gpu.dram_capacity as f64 * 0.9) as u64;
    let mut bits = 0u32;
    while (2 * (r_bytes + s_bytes)) >> bits > budget {
        bits += 1;
        if bits >= 16 {
            break;
        }
    }
    // At least 8 co-partitions: enough packets to pipeline transfers with
    // GPU execution and to load-balance across GPUs, while the fanout stays
    // far below the TLB bound (so the CPU side keeps its near-DRAM
    // throughput, §5).
    bits.max(3)
}

/// Run the co-processing join on `server` (CPU-resident inputs).
pub fn coprocess_join(
    server: &Server,
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    cfg: &CoprocessConfig,
) -> Result<CoprocessReport, CoprocessError> {
    if cfg.n_gpus == 0 || server.gpus.is_empty() {
        return Err(CoprocessError::NoGpus);
    }
    let n_gpus = cfg.n_gpus.min(server.gpus.len());
    let gpu_spec = &server.gpus[0];
    let cpu_spec = &server.cpus[0];

    // ---- Plan and execute the CPU-side co-partitioning.
    let cpu_bits = plan_cpu_bits(r.bytes(), s.bytes(), gpu_spec);
    let max_pass_bits = cpu_spec.max_partition_fanout().trailing_zeros().max(1);
    let plan = {
        let mut pass_bits = Vec::new();
        let mut rem = cpu_bits;
        while rem > 0 {
            let b = rem.min(max_pass_bits);
            pass_bits.push(b);
            rem -= b;
        }
        RadixPlan { pass_bits, total_bits: cpu_bits }
    };
    let (rp, _) = radix_partition(r, cpu_bits, max_pass_bits);
    let (sp, _) = radix_partition(s, cpu_bits, max_pass_bits);
    let fanout = rp.fanout();

    // CPU partitioning cost: the low fanout keeps every pass near DRAM
    // bandwidth. Both sockets' workers share the work.
    let per_socket = (cfg.cpu_workers / server.cpus.len()).max(1);
    let model = CpuCostModel::new(cpu_spec.clone(), per_socket.min(cpu_spec.cores));
    let mut t_cpu = SimTime::ZERO;
    for &bits in &plan.pass_bits {
        t_cpu += model.partition_pass(r.len() as u64, 8, 1 << bits);
        t_cpu += model.partition_pass(s.len() as u64, 8, 1 << bits);
    }
    let t_cpu = t_cpu / (cfg.cpu_workers as f64 * 0.92);

    // ---- Schedule co-partitions over GPUs (load-aware routing).
    let budget = (gpu_spec.dram_capacity as f64 * 0.9) as u64;
    let sim = GpuSim::new(gpu_spec.clone(), cfg.fidelity);
    let mut links: Vec<_> = server
        .pcie
        .iter()
        .take(n_gpus)
        .map(|l| {
            let mut l = l.clone();
            l.reset();
            l
        })
        .collect();
    let mut gpus: Vec<Resource> =
        (0..n_gpus).map(|g| Resource::new(format!("gpu{g}"))).collect();
    let mut assignments = vec![0usize; n_gpus];

    let mut stats = JoinStats::default();
    let mut pairs = match cfg.mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };
    let mut makespan = SimTime::ZERO;
    let mut transfer_busy = SimTime::ZERO;

    for p in 0..fanout {
        let rpart = rp.part(p);
        let spart = sp.part(p);
        if rpart.is_empty() && spart.is_empty() {
            continue;
        }
        let pair_bytes = rpart.bytes() + spart.bytes();
        if 2 * pair_bytes > budget {
            return Err(CoprocessError::OversizedCoPartition {
                partition: p,
                bytes: 2 * pair_bytes,
                budget,
            });
        }
        // The co-partition becomes available as the CPU pass streams through
        // the data (pipelined production).
        let ready = t_cpu * ((p + 1) as f64 / fanout as f64);

        // The in-GPU join (real work + simulated kernel time).
        let join = gpu_radix_with_shift(&sim, rpart, spart, cpu_bits, cfg.variant, cfg.mode)
            .map_err(|e| CoprocessError::OversizedCoPartition {
                partition: p,
                bytes: e.requested,
                budget: e.available,
            })?;
        stats.merge(&join.stats);
        if let (Some((pr, ps)), Some((jr, js))) = (pairs.as_mut(), join.pairs.as_ref()) {
            pr.extend_from_slice(jr);
            ps.extend_from_slice(js);
        }

        // Load-aware GPU choice: earliest completion wins.
        let mut best = 0usize;
        let mut best_end: Option<SimTime> = None;
        for g in 0..n_gpus {
            let t_start = links[g].free_at().max(ready);
            let t_arrive = t_start + links[g].duration(pair_bytes);
            let end = gpus[g].free_at().max(t_arrive) + join.time;
            if best_end.is_none_or(|b| end < b) {
                best_end = Some(end);
                best = g;
            }
        }
        let (_, arrived) = links[best].transfer(ready, pair_bytes);
        let (_, done) = gpus[best].acquire(arrived, join.time);
        assignments[best] += 1;
        makespan = makespan.max(done);
    }
    transfer_busy += links.iter().map(|l| l.busy_time()).sum::<SimTime>();
    let gpu_busy = gpus.iter().map(|g| g.busy_time()).sum::<SimTime>();

    Ok(CoprocessReport {
        outcome: JoinOutcome { stats, pairs, time: makespan },
        cpu_partition_time: t_cpu,
        transfer_busy,
        gpu_busy,
        co_partitions: fanout,
        cpu_bits,
        per_gpu_assignments: assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use hape_storage::datagen::{gen_unique_keys, gen_zipf_i32};

    fn small_gpu_server(capacity_factor: f64) -> Server {
        Server::paper_testbed_gpu_mem_scaled(capacity_factor)
    }

    #[test]
    fn matches_reference() {
        let n = 1 << 14;
        let rk = gen_unique_keys(n, 71);
        let sk = gen_unique_keys(n, 72);
        let rv: Vec<u32> = (0..n as u32).collect();
        let sv: Vec<u32> = (0..n as u32).map(|i| i + 3).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        // GPU memory scaled way down so the join is genuinely out-of-GPU.
        let server = small_gpu_server(1.0 / 65536.0); // 128 KiB
        let cfg = CoprocessConfig { mode: OutputMode::MatchIndices, ..Default::default() };
        let rep = coprocess_join(&server, r, s, &cfg).unwrap();
        let reference = reference_join(r, s);
        assert_eq!(rep.outcome.stats, reference.stats);
        assert_eq!(rep.outcome.sorted_pairs(), reference.sorted_pairs());
        assert!(rep.co_partitions > 1, "expected real co-partitioning");
    }

    #[test]
    fn second_gpu_speeds_up() {
        let n = 1 << 16;
        let rk = gen_unique_keys(n, 73);
        let rv = vec![1u32; n];
        let r = JoinInput::new(&rk, &rv);
        let server = small_gpu_server(1.0 / 65536.0);
        let one =
            coprocess_join(&server, r, r, &CoprocessConfig { n_gpus: 1, ..Default::default() })
                .unwrap();
        let two =
            coprocess_join(&server, r, r, &CoprocessConfig { n_gpus: 2, ..Default::default() })
                .unwrap();
        assert_eq!(one.outcome.stats, two.outcome.stats);
        let speedup = one.outcome.time / two.outcome.time;
        assert!(speedup > 1.3, "2-GPU speedup only {speedup:.2}x");
        assert!(speedup < 2.2, "2-GPU speedup implausible: {speedup:.2}x");
        assert!(
            two.per_gpu_assignments.iter().all(|&a| a > 0),
            "{:?}",
            two.per_gpu_assignments
        );
    }

    #[test]
    fn skewed_key_detected() {
        // All tuples share one key: the co-partition cannot be split.
        let n = 1 << 14;
        let keys = vec![42i32; n];
        let vals = vec![0u32; n];
        let r = JoinInput::new(&keys, &vals);
        let server = small_gpu_server(1.0 / 1_000_000.0);
        let err = coprocess_join(&server, r, r, &CoprocessConfig::default()).unwrap_err();
        assert!(matches!(err, CoprocessError::OversizedCoPartition { .. }), "{err}");
    }

    #[test]
    fn moderate_zipf_still_works() {
        let n = 1 << 14;
        let keys = gen_zipf_i32(n, 1 << 13, 0.5, 5);
        let vals = vec![1u32; n];
        let r = JoinInput::new(&keys, &vals);
        let server = small_gpu_server(1.0 / 16384.0);
        let rep = coprocess_join(&server, r, r, &CoprocessConfig::default()).unwrap();
        assert!(rep.outcome.stats.matches >= n as u64);
    }

    #[test]
    fn fanout_planning_fits_budget() {
        let gpu = GpuSpec::gtx_1080();
        let bits = plan_cpu_bits(16 << 30, 16 << 30, &gpu);
        // 2*(32GB) >> bits <= 0.9*8GB  →  bits >= 4.
        assert!(bits >= 4);
        assert!(((2u64 * 32) << 30) >> bits <= (gpu.dram_capacity as f64 * 0.9) as u64);
    }
}
