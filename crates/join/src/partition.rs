//! Radix partitioning (the algorithmic skeleton shared by CPU and GPU).
//!
//! §4.1: "the skeleton of the algorithm remains the same for both CPUs and
//! GPUs" — partitioning moves tuples so that co-partitions become small
//! enough for a fast memory. What differs per device is the *fanout bound*
//! (TLB entries on CPUs, scratchpad staging capacity on GPUs) and therefore
//! the number of passes. This module is the skeleton: the device algorithms
//! charge their own pass costs.

use crate::common::JoinInput;

/// The result of radix-partitioning one input: tuples regrouped by the radix
/// of their key, plus the partition boundaries.
#[derive(Debug, Clone)]
pub struct RadixPartitions {
    /// Keys, grouped by partition.
    pub keys: Vec<i32>,
    /// Values, permuted identically.
    pub vals: Vec<u32>,
    /// Exclusive prefix offsets: partition `p` is `offsets[p]..offsets[p+1]`.
    pub offsets: Vec<usize>,
    /// Radix bits used in total.
    pub bits: u32,
}

impl RadixPartitions {
    /// Number of partitions.
    pub fn fanout(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The `(keys, vals)` slices of partition `p`.
    pub fn part(&self, p: usize) -> JoinInput<'_> {
        let (a, b) = (self.offsets[p], self.offsets[p + 1]);
        JoinInput::new(&self.keys[a..b], &self.vals[a..b])
    }

    /// Size in tuples of partition `p`.
    pub fn part_len(&self, p: usize) -> usize {
        self.offsets[p + 1] - self.offsets[p]
    }

    /// Largest partition size.
    pub fn max_part_len(&self) -> usize {
        (0..self.fanout()).map(|p| self.part_len(p)).max().unwrap_or(0)
    }
}

/// The partition id of `key` under `bits` radix bits starting at `shift`.
#[inline]
pub fn radix_of(key: i32, shift: u32, bits: u32) -> usize {
    ((key as u32 >> shift) & ((1u32 << bits) - 1)) as usize
}

/// One partitioning pass over `(keys, vals)` on bits `[shift, shift+bits)`.
///
/// Classic two-scan histogram + scatter. Returns data grouped by partition.
pub fn radix_partition_pass(
    keys: &[i32],
    vals: &[u32],
    shift: u32,
    bits: u32,
) -> RadixPartitions {
    assert_eq!(keys.len(), vals.len());
    let fanout = 1usize << bits;
    let mut hist = vec![0usize; fanout];
    for &k in keys {
        hist[radix_of(k, shift, bits)] += 1;
    }
    let mut offsets = Vec::with_capacity(fanout + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for h in &hist {
        acc += h;
        offsets.push(acc);
    }
    let mut cursor: Vec<usize> = offsets[..fanout].to_vec();
    let mut out_keys = vec![0i32; keys.len()];
    let mut out_vals = vec![0u32; vals.len()];
    for (&k, &v) in keys.iter().zip(vals) {
        let p = radix_of(k, shift, bits);
        let dst = cursor[p];
        out_keys[dst] = k;
        out_vals[dst] = v;
        cursor[p] += 1;
    }
    RadixPartitions { keys: out_keys, vals: out_vals, offsets, bits }
}

/// Inputs below this size run the sequential pass even when threads are
/// available: thread start-up would dominate the scan.
const PAR_MIN_ROWS: usize = 1 << 12;

/// Deterministic parallel variant of [`radix_partition_pass`].
///
/// The input is cut into `threads` contiguous chunks; each chunk builds its
/// own histogram and scatters its slice privately, then a global exclusive
/// prefix over the per-chunk histograms fixes every chunk's destination
/// range and the chunk outputs are merged per partition in chunk order
/// (concurrently across partitions, over disjoint `split_at_mut` ranges).
/// Because the sequential scatter preserves input order within a partition
/// and so does chunk-order merging of stable per-chunk scatters, the
/// result is **byte-identical** to [`radix_partition_pass`] at any thread
/// count — the thread count is a pure wall-clock knob, exactly like the
/// engine's data-plane pool.
pub fn radix_partition_pass_par(
    keys: &[i32],
    vals: &[u32],
    shift: u32,
    bits: u32,
    threads: usize,
) -> RadixPartitions {
    assert_eq!(keys.len(), vals.len());
    let n = keys.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 || n < PAR_MIN_ROWS {
        return radix_partition_pass(keys, vals, shift, bits);
    }
    let fanout = 1usize << bits;
    let chunk = n.div_ceil(workers);
    // Per-chunk histogram + private scatter, in parallel.
    let mut locals: Vec<Option<RadixPartitions>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (c, slot) in locals.iter_mut().enumerate() {
            let (lo, hi) = (c * chunk, ((c + 1) * chunk).min(n));
            let (keys, vals) = (&keys[lo..hi], &vals[lo..hi]);
            scope.spawn(move || {
                *slot = Some(radix_partition_pass(keys, vals, shift, bits));
            });
        }
    });
    let locals: Vec<RadixPartitions> =
        locals.into_iter().map(|l| l.expect("every chunk partitioned")).collect();
    // Global exclusive prefix over the chunk histograms.
    let mut offsets = Vec::with_capacity(fanout + 1);
    offsets.push(0usize);
    for p in 0..fanout {
        let total: usize = locals.iter().map(|l| l.part_len(p)).sum();
        offsets.push(offsets[p] + total);
    }
    // Merge into the final buffers: each partition's output range is a
    // disjoint mutable slice, filled in chunk order.
    let mut out_keys = vec![0i32; n];
    let mut out_vals = vec![0u32; n];
    {
        let mut jobs: Vec<(usize, &mut [i32], &mut [u32])> = Vec::with_capacity(fanout);
        let (mut krest, mut vrest) = (&mut out_keys[..], &mut out_vals[..]);
        for p in 0..fanout {
            let len = offsets[p + 1] - offsets[p];
            let (khead, ktail) = krest.split_at_mut(len);
            let (vhead, vtail) = vrest.split_at_mut(len);
            krest = ktail;
            vrest = vtail;
            jobs.push((p, khead, vhead));
        }
        let queue = std::sync::Mutex::new(jobs.into_iter());
        let locals = &locals;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                scope.spawn(move || loop {
                    let job = queue.lock().expect("merge queue poisoned").next();
                    let Some((p, kdst, vdst)) = job else { break };
                    let mut at = 0usize;
                    for l in locals {
                        let s = l.part(p);
                        kdst[at..at + s.keys.len()].copy_from_slice(s.keys);
                        vdst[at..at + s.vals.len()].copy_from_slice(s.vals);
                        at += s.keys.len();
                    }
                });
            }
        });
    }
    RadixPartitions { keys: out_keys, vals: out_vals, offsets, bits }
}

/// Multi-pass radix partitioning on bits `[0, total_bits)`, at most
/// `bits_per_pass` bits per pass (the device's fanout bound).
///
/// Pass `i` partitions on the *high* remaining bits first so that the final
/// layout is ordered by the full radix, with each later pass operating
/// within the partitions of the previous one (as both the CPU and GPU
/// algorithms do — the recursion keeps working sets local).
pub fn radix_partition(
    input: JoinInput<'_>,
    total_bits: u32,
    bits_per_pass: u32,
) -> (RadixPartitions, Vec<u32>) {
    radix_partition_with_threads(input, total_bits, bits_per_pass, 1)
}

/// [`radix_partition`] with a real-thread count for the passes.
///
/// The first pass (one partition spanning the whole input) runs the
/// chunked [`radix_partition_pass_par`]; later passes parallelise across
/// the partitions of the previous pass instead, each sub-partitioned
/// sequentially. Either way the output is byte-identical to `threads = 1`:
/// the thread count never reaches the data layout, only the wall clock.
pub fn radix_partition_with_threads(
    input: JoinInput<'_>,
    total_bits: u32,
    bits_per_pass: u32,
    threads: usize,
) -> (RadixPartitions, Vec<u32>) {
    assert!(total_bits > 0 && total_bits <= 24, "unreasonable radix width {total_bits}");
    assert!(bits_per_pass > 0);
    let workers = threads.max(1);
    let mut passes = Vec::new();
    let mut remaining = total_bits;
    while remaining > 0 {
        let b = remaining.min(bits_per_pass);
        passes.push(b);
        remaining -= b;
    }
    // First pass over the most significant of the radix bits.
    let mut shift = total_bits;
    let mut current = RadixPartitions {
        keys: input.keys.to_vec(),
        vals: input.vals.to_vec(),
        offsets: vec![0, input.len()],
        bits: 0,
    };
    for &b in &passes {
        shift -= b;
        // Re-partition every existing partition on the next `b` bits.
        let fanout_before = current.fanout();
        if fanout_before == 1 {
            let sub = radix_partition_pass_par(&current.keys, &current.vals, shift, b, workers);
            current = RadixPartitions { bits: current.bits + b, ..sub };
            continue;
        }
        let mut subs: Vec<Option<RadixPartitions>> = (0..fanout_before).map(|_| None).collect();
        if workers <= 1 || current.keys.len() < PAR_MIN_ROWS {
            for (p, slot) in subs.iter_mut().enumerate() {
                let part = current.part(p);
                *slot = Some(radix_partition_pass(part.keys, part.vals, shift, b));
            }
        } else {
            let per = fanout_before.div_ceil(workers);
            let current = &current;
            std::thread::scope(|scope| {
                for (c, slots) in subs.chunks_mut(per).enumerate() {
                    scope.spawn(move || {
                        for (i, slot) in slots.iter_mut().enumerate() {
                            let part = current.part(c * per + i);
                            *slot = Some(radix_partition_pass(part.keys, part.vals, shift, b));
                        }
                    });
                }
            });
        }
        let mut out_keys = Vec::with_capacity(current.keys.len());
        let mut out_vals = Vec::with_capacity(current.vals.len());
        let mut offsets = vec![0usize];
        for sub in subs {
            let sub = sub.expect("every partition re-partitioned");
            for sp in 0..sub.fanout() {
                let s = sub.part(sp);
                out_keys.extend_from_slice(s.keys);
                out_vals.extend_from_slice(s.vals);
                offsets.push(out_keys.len());
            }
        }
        current =
            RadixPartitions { keys: out_keys, vals: out_vals, offsets, bits: current.bits + b };
    }
    (current, passes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input_from(keys: Vec<i32>) -> (Vec<i32>, Vec<u32>) {
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        (keys, vals)
    }

    #[test]
    fn single_pass_groups_by_radix() {
        let (keys, vals) = input_from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let p = radix_partition_pass(&keys, &vals, 0, 2);
        assert_eq!(p.fanout(), 4);
        for part in 0..4 {
            let s = p.part(part);
            assert!(s.keys.iter().all(|&k| radix_of(k, 0, 2) == part));
            assert_eq!(s.keys.len(), 2);
        }
    }

    #[test]
    fn partitioning_is_a_permutation() {
        let (keys, vals) = input_from((0..1000).map(|i| i * 7 % 256).collect());
        let p = radix_partition_pass(&keys, &vals, 0, 4);
        // Same multiset of (key, val) pairs.
        let mut before: Vec<(i32, u32)> = keys.iter().copied().zip(vals).collect();
        let mut after: Vec<(i32, u32)> =
            p.keys.iter().copied().zip(p.vals.iter().copied()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn vals_follow_their_keys() {
        let keys = vec![3, 0, 1, 2];
        let vals = vec![30, 0, 10, 20];
        let p = radix_partition_pass(&keys, &vals, 0, 2);
        for part in 0..4 {
            let s = p.part(part);
            for (&k, &v) in s.keys.iter().zip(s.vals) {
                assert_eq!(v, (k * 10) as u32);
            }
        }
    }

    #[test]
    fn multi_pass_equals_single_pass_grouping() {
        let (keys, vals) =
            input_from((0..4096).map(|i| (i * 2654435761u64 % 1024) as i32).collect());
        let (multi, passes) = radix_partition(JoinInput::new(&keys, &vals), 6, 3);
        assert_eq!(passes, vec![3, 3]);
        assert_eq!(multi.fanout(), 64);
        assert_eq!(multi.bits, 6);
        // Every partition holds exactly the keys with that radix.
        for p in 0..64 {
            let s = multi.part(p);
            assert!(s.keys.iter().all(|&k| radix_of(k, 0, 6) == p), "partition {p}");
        }
        // And the total is a permutation.
        let mut before: Vec<i32> = keys;
        let mut after = multi.keys;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn uneven_bits_split() {
        let (keys, vals) = input_from((0..512).collect());
        let (parts, passes) = radix_partition(JoinInput::new(&keys, &vals), 7, 3);
        assert_eq!(passes, vec![3, 3, 1]);
        assert_eq!(parts.fanout(), 128);
    }

    #[test]
    fn parallel_pass_is_byte_identical_to_sequential() {
        // Large enough to clear PAR_MIN_ROWS; skewed keys so chunks have
        // unequal histograms.
        let (keys, vals) =
            input_from((0..(1 << 14)).map(|i| (i * 2654435761u64 % 977) as i32).collect());
        let seq = radix_partition_pass(&keys, &vals, 2, 5);
        for threads in [2, 3, 8, 64] {
            let par = radix_partition_pass_par(&keys, &vals, 2, 5, threads);
            assert_eq!(par.keys, seq.keys, "threads={threads}");
            assert_eq!(par.vals, seq.vals, "threads={threads}");
            assert_eq!(par.offsets, seq.offsets, "threads={threads}");
            assert_eq!(par.bits, seq.bits, "threads={threads}");
        }
    }

    #[test]
    fn multi_pass_is_byte_identical_across_thread_counts() {
        let (keys, vals) = input_from((0..(1 << 14)).map(|i| i * 40503 % 4096).collect());
        let input = JoinInput::new(&keys, &vals);
        let (seq, seq_passes) = radix_partition_with_threads(input, 9, 4, 1);
        for threads in [2, 8, 24] {
            let (par, passes) = radix_partition_with_threads(input, 9, 4, threads);
            assert_eq!(passes, seq_passes);
            assert_eq!(par.keys, seq.keys, "threads={threads}");
            assert_eq!(par.vals, seq.vals, "threads={threads}");
            assert_eq!(par.offsets, seq.offsets, "threads={threads}");
        }
    }

    #[test]
    fn empty_partitions_allowed() {
        let (keys, vals) = input_from(vec![0; 16]); // all in partition 0
        let p = radix_partition_pass(&keys, &vals, 0, 3);
        assert_eq!(p.part_len(0), 16);
        assert_eq!(p.max_part_len(), 16);
        for part in 1..8 {
            assert_eq!(p.part_len(part), 0);
        }
    }
}
