//! The paper's hardware-conscious GPU radix join (§4.1, Figures 3 & 4).
//!
//! **Partitioning pass (Fig. 4):** each block reads a chunk into the
//! scratchpad, histograms partition ids with scratchpad atomics, reorders the
//! chunk so same-partition tuples are contiguous, and scans the scratchpad
//! writing each run to its output partition — consolidating stores so DRAM
//! writes coalesce. Output partitions are linked lists of buffers whose
//! tails are bumped with global atomics (no extra offset-computation scan,
//! unlike \[27\]).
//!
//! **Build & probe (Fig. 3):** one block per co-partition. The Figure 5
//! variants differ in where the join's intermediate structures live:
//!
//! * [`BuildProbeVariant::Sm`] — hash table entirely in the scratchpad
//!   (banked, no over-fetch; random access costs bank conflicts at worst);
//! * [`BuildProbeVariant::SmL1`] — bucket heads in the scratchpad, chain
//!   entries in global memory through L1;
//! * [`BuildProbeVariant::L1`] — everything in global memory through L1,
//!   the "CPU conversion" the paper shows loses: random probes drag whole
//!   lines, and the co-partition scans pollute the cache shared by
//!   co-resident blocks.

use hape_sim::gpu::OutOfGpuMemory;
use hape_sim::spec::GpuSpec;
use hape_sim::{GpuMemPool, GpuSim, KernelReport, LaunchConfig, Region, SimTime};

use crate::common::{ChainedTable, JoinInput, JoinOutcome, JoinStats, OutputMode};
use crate::cpu_radix::RadixPlan;
use crate::partition::{radix_of, radix_partition, RadixPartitions};

/// Where the build & probe phase keeps the per-partition hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildProbeVariant {
    /// All intermediate structures in the scratchpad (the paper's choice).
    Sm,
    /// Bucket heads in scratchpad, chain entries through L1.
    SmL1,
    /// Everything through L1 (hardware-oblivious placement).
    L1,
}

impl BuildProbeVariant {
    /// Display label matching the paper's Figure 5 legend.
    pub fn label(&self) -> &'static str {
        match self {
            BuildProbeVariant::Sm => "SM",
            BuildProbeVariant::SmL1 => "SM+L1",
            BuildProbeVariant::L1 => "L1",
        }
    }
}

/// Tuples per partitioning-kernel block (one scratchpad staging chunk).
const CHUNK: usize = 4096;
const BLOCK_THREADS: usize = 256;

/// Plan the GPU radix join: total bits so the per-partition table fits the
/// scratchpad budget; per-pass bits bounded by the store-consolidation
/// staging capacity (§4.1 — "fanout based on TLB versus scratchpad
/// capacity").
pub fn plan_radix_gpu(n_rows: usize, spec: &GpuSpec) -> RadixPlan {
    // Open-addressed table of 8-byte (key,val) slots, next-pow2 sized:
    // budget in tuples per partition.
    let budget_tuples = (spec.scratchpad_resident_bytes() / 8).next_power_of_two() / 2;
    let mut total_bits = 0u32;
    while (n_rows >> total_bits) > budget_tuples {
        total_bits += 1;
        if total_bits >= 20 {
            break;
        }
    }
    let total_bits = total_bits.max(1);
    let max_pass_bits = spec.max_partition_fanout().trailing_zeros().max(1);
    let mut pass_bits = Vec::new();
    let mut rem = total_bits;
    while rem > 0 {
        let b = rem.min(max_pass_bits);
        pass_bits.push(b);
        rem -= b;
    }
    RadixPlan { pass_bits, total_bits }
}

/// Charge one GPU partitioning pass (Fig. 4) over `keys`, `bits` wide at
/// `shift`, reading from `input` and scattering into `output`.
fn charge_partition_pass(
    sim: &GpuSim,
    keys: &[i32],
    shift: u32,
    bits: u32,
    input: Region,
    output: Region,
    tails: Region,
) -> KernelReport {
    let n = keys.len();
    let fanout = 1usize << bits;
    let grid = n.div_ceil(CHUNK).max(1);
    // Scratchpad: staging chunk (8B/tuple) + histogram.
    let smem = (CHUNK * 8 + fanout * 4).min(sim.spec().smem_per_block);
    let cfg = LaunchConfig::new(grid, BLOCK_THREADS, smem);
    // Running output cursor per partition (blocks execute in order in the
    // simulator, so a deterministic cursor reproduces the buffer layout).
    let mut cursors = vec![0u64; fanout];
    sim.launch(&cfg, |blk| {
        let start = blk.block_idx * CHUNK;
        let end = (start + CHUNK).min(n);
        if start >= end {
            return;
        }
        let cn = (end - start) as u64;
        // Read the chunk (coalesced), compute partition ids.
        blk.global_read_stream(&input, start as u64 * 8, cn * 8);
        blk.compute(cn, 5.0);
        // Histogram in scratchpad: one atomic per tuple on its partition
        // counter — conflicts reflect the actual radix distribution.
        let part_words: Vec<u32> =
            keys[start..end].iter().map(|&k| radix_of(k, shift, bits) as u32).collect();
        blk.smem_atomic(&part_words);
        // Reorder within the scratchpad: write + read per tuple.
        let lane_words: Vec<u32> = (0..(end - start) as u32).map(|i| i % 2048).collect();
        blk.smem_access(&lane_words);
        blk.smem_access(&lane_words);
        // Scatter runs to the output partitions: address lists derived from
        // the real per-chunk histogram, so run lengths (and hence store
        // coalescing) are the actual ones.
        let mut counts = vec![0u32; fanout];
        for &k in &keys[start..end] {
            counts[radix_of(k, shift, bits)] += 1;
        }
        let mut addrs = Vec::with_capacity(end - start);
        let mut touched = Vec::new();
        for (p, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let base = (output.bytes / fanout as u64) * p as u64 + cursors[p] * 8;
            for i in 0..c as u64 {
                addrs.push(base + i * 8);
            }
            cursors[p] += c as u64;
            touched.push(p as u64 * 64);
        }
        blk.global_write(&output, &addrs, 8);
        // Linked-list tail bumps: one global atomic per touched partition.
        blk.global_atomic(&tails, &touched);
    })
}

/// Run the build & probe phase (Fig. 3) over already co-partitioned inputs.
///
/// Exposed separately because Figure 5 measures exactly this phase over
/// balanced partitions. Returns the outcome (real matches) plus the kernel
/// report.
pub fn build_probe_phase(
    sim: &GpuSim,
    rp: &RadixPartitions,
    sp: &RadixPartitions,
    variant: BuildProbeVariant,
    mode: OutputMode,
) -> (JoinOutcome, KernelReport) {
    assert_eq!(rp.fanout(), sp.fanout(), "inputs not co-partitioned");
    let fanout = rp.fanout();
    let max_part = rp.max_part_len().max(1);
    let slots = max_part.next_power_of_two() * 2;
    let spec = sim.spec();

    // Scratchpad request decides occupancy — and thereby how many blocks
    // share an L1 (the Fig. 5 pollution mechanism).
    let smem = match variant {
        BuildProbeVariant::Sm => (slots * 8).min(spec.smem_per_block),
        BuildProbeVariant::SmL1 => (slots * 4).min(spec.smem_per_block),
        BuildProbeVariant::L1 => 0,
    };
    let cfg = LaunchConfig::new(fanout, BLOCK_THREADS, smem);

    // Device-memory layout: inputs + (for SmL1/L1) the spilled tables.
    let r_region = Region::at(1 << 24, rp.keys.len() as u64 * 8);
    let s_region = Region::at(1 << 34, sp.keys.len() as u64 * 8);
    let ht_region = Region::at(1 << 44, (rp.keys.len() as u64 * 12).max(1));
    let heads_region = Region::at(1 << 54, (fanout * slots) as u64 * 4);

    let mut stats = JoinStats::default();
    let mut pairs = match mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };

    let report = sim.launch(&cfg, |blk| {
        let p = blk.block_idx;
        let rpart = rp.part(p);
        let spart = sp.part(p);
        let r_off = rp.offsets[p] as u64 * 8;
        let s_off = sp.offsets[p] as u64 * 8;
        if rpart.is_empty() && spart.is_empty() {
            return;
        }
        // Real join work for this co-partition.
        let table = ChainedTable::build(rpart.keys);
        let mut probe_steps: Vec<u32> = Vec::with_capacity(spart.len());
        let mut chain_offs: Vec<u64> = Vec::new();
        let mut block_matches = 0u64;
        for (&k, &sv) in spart.keys.iter().zip(spart.vals) {
            let mut steps = 0u32;
            let mut e = table.heads[crate::common::hash32(k, table.bits) as usize];
            while e != crate::common::NIL {
                steps += 1;
                if variant != BuildProbeVariant::Sm {
                    chain_offs.push(rp.offsets[p] as u64 * 12 + e as u64 * 12);
                }
                if rpart.keys[e as usize] == k {
                    let rv = rpart.vals[e as usize];
                    stats.record(rv, sv);
                    block_matches += 1;
                    if let Some((pr, ps)) = pairs.as_mut() {
                        pr.push(rv);
                        ps.push(sv);
                    }
                }
                e = table.next[e as usize];
            }
            probe_steps.push(steps);
        }

        // ---- Cost mirroring.
        let nr = rpart.len() as u64;
        let ns = spart.len() as u64;
        // Scan the co-partition from device memory (streams pollute L1).
        blk.global_read_stream(&r_region, r_off, nr * 8);
        blk.global_read_stream(&s_region, s_off, ns * 8);
        blk.compute(nr, 5.0);
        blk.compute(ns, 7.0);
        let bucket_words: Vec<u32> =
            rpart.keys.iter().map(|&k| crate::common::hash32(k, table.bits)).collect();
        let probe_words: Vec<u32> =
            spart.keys.iter().map(|&k| crate::common::hash32(k, table.bits)).collect();
        match variant {
            BuildProbeVariant::Sm => {
                // Build: copy tuples into the scratchpad + atomic inserts.
                blk.smem_access(&bucket_words);
                blk.smem_atomic(&bucket_words);
                // Probe: head lookup + chain walk, all in scratchpad.
                blk.smem_access(&probe_words);
                let extra: Vec<u32> = probe_words
                    .iter()
                    .zip(&probe_steps)
                    .filter(|(_, &st)| st > 1)
                    .map(|(&w, _)| w + 1)
                    .collect();
                blk.smem_access(&extra);
            }
            BuildProbeVariant::SmL1 => {
                // Heads in scratchpad; entries written to / read from global.
                blk.smem_atomic(&bucket_words);
                blk.global_write_stream(nr * 12);
                blk.smem_access(&probe_words);
                blk.global_read(&ht_region, &chain_offs, 12);
            }
            BuildProbeVariant::L1 => {
                // Heads and entries in global memory.
                let head_offs: Vec<u64> = bucket_words
                    .iter()
                    .map(|&w| (p * slots) as u64 * 4 + w as u64 * 4)
                    .collect();
                blk.global_atomic(&heads_region, &head_offs);
                blk.global_write_stream(nr * 12);
                let probe_head_offs: Vec<u64> = probe_words
                    .iter()
                    .map(|&w| (p * slots) as u64 * 4 + w as u64 * 4)
                    .collect();
                blk.global_read(&heads_region, &probe_head_offs, 4);
                blk.global_read(&ht_region, &chain_offs, 12);
            }
        }
        if mode == OutputMode::MatchIndices {
            blk.global_write_stream(block_matches * 8);
        } else {
            // Buffered aggregate: warp reduction + one atomic per block.
            blk.compute(ns, 1.0);
        }
    });

    let outcome = JoinOutcome { stats, pairs, time: report.time };
    (outcome, report)
}

/// Full GPU radix join over GPU-resident inputs: plan, partition both sides
/// (charging each pass), then build & probe with the chosen variant.
pub fn gpu_radix(
    sim: &GpuSim,
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    variant: BuildProbeVariant,
    mode: OutputMode,
) -> Result<JoinOutcome, OutOfGpuMemory> {
    gpu_radix_with_shift(sim, r, s, 0, variant, mode)
}

/// GPU radix join whose radix starts at `shift` — the co-processing join
/// uses this to continue partitioning where the CPU side left off (§5).
pub fn gpu_radix_with_shift(
    sim: &GpuSim,
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    shift: u32,
    variant: BuildProbeVariant,
    mode: OutputMode,
) -> Result<JoinOutcome, OutOfGpuMemory> {
    let mut pool = GpuMemPool::for_spec(sim.spec());
    // Inputs + double buffers for the out-of-place partition passes.
    let r_in = pool.alloc(r.bytes().max(8))?;
    let s_in = pool.alloc(s.bytes().max(8))?;
    let r_out = pool.alloc(r.bytes().max(8))?;
    let s_out = pool.alloc(s.bytes().max(8))?;
    let tails = pool.alloc(1 << 16)?;

    let plan = plan_radix_gpu(r.len().max(2), sim.spec());
    let max_pass_bits = *plan.pass_bits.iter().max().unwrap_or(&1);

    // Shifted keys so the radix applies above the CPU-consumed bits.
    let shifted_r: Vec<i32>;
    let shifted_s: Vec<i32>;
    let (rk, sk): (&[i32], &[i32]) = if shift == 0 {
        (r.keys, s.keys)
    } else {
        shifted_r = r.keys.iter().map(|&k| ((k as u32) >> shift) as i32).collect();
        shifted_s = s.keys.iter().map(|&k| ((k as u32) >> shift) as i32).collect();
        (&shifted_r, &shifted_s)
    };

    let mut time = SimTime::ZERO;
    // Charge the partition passes for both inputs.
    let mut pass_shift = plan.total_bits;
    for &bits in &plan.pass_bits {
        pass_shift -= bits;
        let rep_r = charge_partition_pass(
            sim,
            rk,
            pass_shift,
            bits,
            r_in.region,
            r_out.region,
            tails.region,
        );
        let rep_s = charge_partition_pass(
            sim,
            sk,
            pass_shift,
            bits,
            s_in.region,
            s_out.region,
            tails.region,
        );
        time += rep_r.time + rep_s.time;
    }
    // Functional partitioning (once, multi-pass-equivalent result).
    let (rp, _) = radix_partition(JoinInput::new(rk, r.vals), plan.total_bits, max_pass_bits);
    let (sp, _) = radix_partition(JoinInput::new(sk, s.vals), plan.total_bits, max_pass_bits);

    let (mut outcome, _report) = build_probe_phase(sim, &rp, &sp, variant, mode);
    outcome.time += time;

    pool.free(r_in);
    pool.free(s_in);
    pool.free(r_out);
    pool.free(s_out);
    pool.free(tails);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use hape_sim::{Fidelity, GpuSim};
    use hape_storage::datagen::{gen_balanced_partition_keys, gen_unique_keys};

    fn sim() -> GpuSim {
        GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic)
    }

    #[test]
    fn plan_targets_scratchpad_residency() {
        let spec = GpuSpec::gtx_1080();
        let plan = plan_radix_gpu(32 << 20, &spec);
        assert!(plan.passes() >= 2, "32M tuples need multiple passes: {plan:?}");
        let per_part = (32usize << 20) >> plan.total_bits;
        assert!(per_part.next_power_of_two() * 2 * 8 <= spec.smem_per_block * 2);
    }

    #[test]
    fn all_variants_match_reference() {
        let n = 1 << 13;
        let rk = gen_unique_keys(n, 51);
        let sk = gen_unique_keys(n, 52);
        let rv: Vec<u32> = (0..n as u32).collect();
        let sv: Vec<u32> = (0..n as u32).map(|i| i + 7).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let reference = reference_join(r, s);
        for variant in [BuildProbeVariant::Sm, BuildProbeVariant::SmL1, BuildProbeVariant::L1] {
            let out = gpu_radix(&sim(), r, s, variant, OutputMode::MatchIndices).unwrap();
            assert_eq!(out.stats, reference.stats, "{variant:?}");
            assert_eq!(out.sorted_pairs(), reference.sorted_pairs(), "{variant:?}");
        }
    }

    #[test]
    fn scratchpad_beats_l1_in_exact_mode() {
        // The Figure 5 headline: with balanced co-partitions, the SM variant
        // outruns the L1 variant.
        let n = 1 << 16;
        let bits = 5; // 2048-element partitions
        let keys = gen_balanced_partition_keys(n, bits, 3);
        let vals: Vec<u32> = (0..n as u32).collect();
        let input = JoinInput::new(&keys, &vals);
        let (rp, _) = radix_partition(input, bits, bits);
        let (sp, _) = radix_partition(input, bits, bits);
        let exact = GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Exact);
        let (sm, _) = build_probe_phase(
            &exact,
            &rp,
            &sp,
            BuildProbeVariant::Sm,
            OutputMode::AggregateOnly,
        );
        let (l1, _) = build_probe_phase(
            &exact,
            &rp,
            &sp,
            BuildProbeVariant::L1,
            OutputMode::AggregateOnly,
        );
        assert_eq!(sm.stats, l1.stats);
        assert!(
            l1.time.as_secs() > 1.2 * sm.time.as_secs(),
            "L1 {} !> SM {}",
            l1.time,
            sm.time
        );
    }

    #[test]
    fn shifted_radix_for_coprocessing() {
        // After a CPU pass on the low 2 bits, the GPU joins a co-partition
        // whose keys share those bits; the shifted join must still be exact.
        let n = 1 << 12;
        let keys: Vec<i32> = gen_unique_keys(n, 9).iter().map(|k| k * 4).collect(); // low 2 bits zero
        let vals: Vec<u32> = (0..n as u32).collect();
        let r = JoinInput::new(&keys, &vals);
        let out = gpu_radix_with_shift(
            &sim(),
            r,
            r,
            2,
            BuildProbeVariant::Sm,
            OutputMode::AggregateOnly,
        )
        .unwrap();
        assert_eq!(out.stats.matches, n as u64);
    }

    #[test]
    fn oom_on_tiny_gpu() {
        let tiny = GpuSim::new(GpuSpec::gtx_1080_scaled(1.0 / 8192.0), Fidelity::Analytic);
        let n = 1 << 16;
        let rk = gen_unique_keys(n, 1);
        let rv = vec![0u32; n];
        let r = JoinInput::new(&rk, &rv);
        assert!(
            gpu_radix(&tiny, r, r, BuildProbeVariant::Sm, OutputMode::AggregateOnly).is_err()
        );
    }
}
