//! Shared join types, hashing, and the naive reference implementation.

use hape_sim::SimTime;

/// Fibonacci (multiplicative) hash of a 32-bit key into `bits` bits.
#[inline]
pub fn hash32(key: i32, bits: u32) -> u32 {
    debug_assert!(bits > 0 && bits <= 32);
    (key as u32).wrapping_mul(2654435769) >> (32 - bits)
}

/// One join input: keys plus per-tuple values.
///
/// `vals` carry either the 4-byte payloads of the paper's microbenchmark
/// (aggregate mode) or original row indices (when the engine materialises
/// matches).
#[derive(Debug, Clone, Copy)]
pub struct JoinInput<'a> {
    /// Join keys.
    pub keys: &'a [i32],
    /// Per-tuple values (payload or row index).
    pub vals: &'a [u32],
}

impl<'a> JoinInput<'a> {
    /// Construct, checking lengths agree.
    pub fn new(keys: &'a [i32], vals: &'a [u32]) -> Self {
        assert_eq!(keys.len(), vals.len(), "keys/vals length mismatch");
        JoinInput { keys, vals }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Payload bytes (4-byte key + 4-byte value per tuple).
    pub fn bytes(&self) -> u64 {
        (self.len() * 8) as u64
    }
}

/// What the join should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Only the aggregate statistics (the paper's microbenchmark: an
    /// equi-join "followed by a sum/count aggregation over each payload").
    AggregateOnly,
    /// Materialised `(r_val, s_val)` match pairs (engine joins).
    MatchIndices,
}

/// Aggregate join statistics (always produced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Number of matching tuple pairs.
    pub matches: u64,
    /// Sum over the build side's values of all matches.
    pub sum_r_vals: i64,
    /// Sum over the probe side's values of all matches.
    pub sum_s_vals: i64,
}

impl JoinStats {
    /// Fold a single match.
    #[inline]
    pub fn record(&mut self, r_val: u32, s_val: u32) {
        self.matches += 1;
        self.sum_r_vals += r_val as i64;
        self.sum_s_vals += s_val as i64;
    }

    /// Merge partial statistics.
    pub fn merge(&mut self, o: &JoinStats) {
        self.matches += o.matches;
        self.sum_r_vals += o.sum_r_vals;
        self.sum_s_vals += o.sum_s_vals;
    }
}

/// The result of running a join algorithm.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Aggregate statistics.
    pub stats: JoinStats,
    /// Match pairs `(r_vals, s_vals)` when requested.
    pub pairs: Option<(Vec<u32>, Vec<u32>)>,
    /// Simulated execution time.
    pub time: SimTime,
}

impl JoinOutcome {
    /// Sort the materialised pairs (by r then s value) for comparisons.
    pub fn sorted_pairs(&self) -> Option<Vec<(u32, u32)>> {
        self.pairs.as_ref().map(|(r, s)| {
            let mut v: Vec<(u32, u32)> = r.iter().copied().zip(s.iter().copied()).collect();
            v.sort_unstable();
            v
        })
    }
}

/// Naive reference join (hash map based) for correctness checks.
pub fn reference_join(r: JoinInput<'_>, s: JoinInput<'_>) -> JoinOutcome {
    use std::collections::HashMap;
    let mut table: HashMap<i32, Vec<u32>> = HashMap::with_capacity(r.len());
    for (&k, &v) in r.keys.iter().zip(r.vals) {
        table.entry(k).or_default().push(v);
    }
    let mut stats = JoinStats::default();
    let mut pairs = (Vec::new(), Vec::new());
    for (&k, &sv) in s.keys.iter().zip(s.vals) {
        if let Some(rvs) = table.get(&k) {
            for &rv in rvs {
                stats.record(rv, sv);
                pairs.0.push(rv);
                pairs.1.push(sv);
            }
        }
    }
    JoinOutcome { stats, pairs: Some(pairs), time: SimTime::ZERO }
}

/// A chained hash table over `i32` keys (bucket heads + next pointers),
/// the physical layout all the hash joins share.
#[derive(Debug)]
pub struct ChainedTable {
    /// Bucket heads (`u32::MAX` = empty).
    pub heads: Vec<u32>,
    /// Next pointers per entry (`u32::MAX` = end).
    pub next: Vec<u32>,
    /// log2 of bucket count.
    pub bits: u32,
}

/// Sentinel for empty slots.
pub const NIL: u32 = u32::MAX;

impl ChainedTable {
    /// Build over `keys`, with roughly 1 bucket per key (next power of two).
    pub fn build(keys: &[i32]) -> Self {
        let bits = (keys.len().max(2)).next_power_of_two().trailing_zeros();
        Self::build_with_bits(keys, bits)
    }

    /// Build with an explicit bucket count of `2^bits`.
    pub fn build_with_bits(keys: &[i32], bits: u32) -> Self {
        let mut heads = vec![NIL; 1usize << bits];
        let mut next = vec![NIL; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            let b = hash32(k, bits) as usize;
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        ChainedTable { heads, next, bits }
    }

    /// Bytes this table occupies (what the probe's working set is).
    pub fn bytes(&self) -> u64 {
        ((self.heads.len() + self.next.len()) * 4) as u64
    }

    /// Probe one key, invoking `on_match(entry_index)` per hit; returns the
    /// number of chain entries traversed (for measured-cost charging).
    #[inline]
    pub fn probe(&self, keys: &[i32], key: i32, mut on_match: impl FnMut(u32)) -> u32 {
        let mut steps = 0;
        let mut e = self.heads[hash32(key, self.bits) as usize];
        while e != NIL {
            steps += 1;
            if keys[e as usize] == key {
                on_match(e);
            }
            e = self.next[e as usize];
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for k in [-5i32, 0, 1, 42, i32::MAX, i32::MIN] {
            let h = hash32(k, 8);
            assert!(h < 256);
            assert_eq!(h, hash32(k, 8));
        }
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        let mut counts = vec![0usize; 16];
        for k in 0..16_000 {
            counts[hash32(k, 4) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < min * 2, "poor spread: {counts:?}");
    }

    #[test]
    fn reference_join_finds_all_matches() {
        let r = JoinInput::new(&[1, 2, 3, 2], &[10, 20, 30, 21]);
        let s = JoinInput::new(&[2, 4, 1], &[100, 400, 101]);
        let out = reference_join(r, s);
        // key 2 matches twice (two r tuples), key 1 once.
        assert_eq!(out.stats.matches, 3);
        let mut pairs = out.sorted_pairs().unwrap();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(10, 101), (20, 100), (21, 100)]);
    }

    #[test]
    fn chained_table_probes_correctly() {
        let keys = vec![5, 9, 5, 13];
        let t = ChainedTable::build(&keys);
        let mut hits = Vec::new();
        let steps = t.probe(&keys, 5, |e| hits.push(e));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
        assert!(steps >= 2);
        let mut none = Vec::new();
        t.probe(&keys, 42, |e| none.push(e));
        assert!(none.is_empty());
    }

    #[test]
    fn chained_table_bytes() {
        let keys: Vec<i32> = (0..100).collect();
        let t = ChainedTable::build(&keys);
        assert_eq!(t.bytes(), ((128 + 100) * 4) as u64);
    }

    #[test]
    fn join_stats_merge() {
        let mut a = JoinStats::default();
        a.record(1, 2);
        let mut b = JoinStats::default();
        b.record(3, 4);
        a.merge(&b);
        assert_eq!(a.matches, 2);
        assert_eq!(a.sum_r_vals, 4);
        assert_eq!(a.sum_s_vals, 6);
    }
}
