//! # hape-join — hardware-conscious join algorithms
//!
//! The paper's §4.1/§5 join suite:
//!
//! * [`mod@cpu_npj`] — CPU non-partitioned (hardware-oblivious) hash join: a
//!   shared chained hash table built and probed by all cores; random accesses
//!   pay DRAM latency once the table outgrows the caches.
//! * [`mod@cpu_radix`] — CPU radix join: multi-pass software-managed partitioning
//!   with TLB-bounded fanout (Boncz), until per-partition hash tables are
//!   cache-resident (Shatdal); then in-cache build & probe.
//! * [`mod@gpu_npj`] — GPU non-partitioned join: global-memory hash table;
//!   every probe over-fetches whole cache lines through L1/L2.
//! * [`mod@gpu_radix`] — the paper's GPU join (Figs 3 & 4): multi-pass
//!   partitioning with scratchpad-staged store consolidation and linked-list
//!   output buffers, then per-co-partition build & probe with the
//!   scratchpad (SM), SM+L1 or L1 placement variants of Figure 5.
//! * [`coprocess`] — the Sioulas et al. co-processing join (§5): low-fanout
//!   CPU-side co-partitioning sized so each co-partition fits GPU memory,
//!   a single pass over PCIe, and per-co-partition GPU radix joins load
//!   balanced over 1..N GPUs.
//!
//! All algorithms compute *real* results over real data and return simulated
//! time from the `hape-sim` substrate. Outputs are either aggregated (the
//! paper's microbenchmark does a sum/count over payloads) or materialised
//! match-index pairs (what the engine's query joins consume).

#![forbid(unsafe_code)]

pub mod common;
pub mod coprocess;
pub mod cpu_npj;
pub mod cpu_radix;
pub mod gpu_npj;
pub mod gpu_radix;
pub mod partition;

pub use common::{hash32, reference_join, JoinInput, JoinOutcome, JoinStats, OutputMode};
pub use coprocess::{
    coprocess_join, coprocess_join_on, gpu_budget, plan_cpu_bits, CoprocessConfig,
    CoprocessError, CoprocessReport,
};
pub use cpu_npj::cpu_npj;
pub use cpu_radix::{cpu_radix, plan_radix_cpu, RadixPlan};
pub use gpu_npj::gpu_npj;
pub use gpu_radix::{gpu_radix, plan_radix_gpu, BuildProbeVariant};
pub use partition::{
    radix_partition, radix_partition_pass_par, radix_partition_with_threads, RadixPartitions,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::common::{JoinInput, JoinOutcome, JoinStats, OutputMode};
    pub use crate::coprocess::{coprocess_join, CoprocessConfig};
    pub use crate::cpu_npj::cpu_npj;
    pub use crate::cpu_radix::cpu_radix;
    pub use crate::gpu_npj::gpu_npj;
    pub use crate::gpu_radix::{gpu_radix, BuildProbeVariant};
}
