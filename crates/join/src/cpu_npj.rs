//! CPU non-partitioned hash join (the hardware-oblivious baseline).
//!
//! One shared chained hash table over the whole build side (Blanas et al.
//! style). All cores build concurrently (atomic head swaps) and then probe.
//! With a DRAM-resident table every probe is a random access — the paper's
//! Figure 6 shows this is what partitioning avoids.

use hape_sim::CpuCostModel;

use crate::common::{ChainedTable, JoinInput, JoinOutcome, JoinStats, OutputMode};

/// Parallel-efficiency of the shared build phase (atomic contention on
/// bucket heads).
const BUILD_EFF: f64 = 0.75;
/// Parallel-efficiency of the probe phase (read-only sharing).
const PROBE_EFF: f64 = 0.95;

/// Run the non-partitioned join with `workers` CPU cores.
///
/// `model` must be configured for the per-worker bandwidth share (see
/// [`CpuCostModel::new`]).
pub fn cpu_npj(
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    model: &CpuCostModel,
    workers: usize,
    mode: OutputMode,
) -> JoinOutcome {
    assert!(workers > 0);
    let table = ChainedTable::build(r.keys);
    let ht_bytes = table.bytes();

    let mut stats = JoinStats::default();
    let mut pairs = match mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };
    let mut chain_steps: u64 = 0;
    for (&k, &sv) in s.keys.iter().zip(s.vals) {
        chain_steps += table.probe(r.keys, k, |e| {
            let rv = r.vals[e as usize];
            stats.record(rv, sv);
            if let Some((pr, ps)) = pairs.as_mut() {
                pr.push(rv);
                ps.push(sv);
            }
        }) as u64;
    }

    // Cost: build = stream r + insertions (random RMW on a DRAM-sized
    // table); probe = stream s + measured chain traversals; output streamed.
    let build = model.seq_read(r.bytes()) + model.ht_build(r.len() as u64, ht_bytes);
    let avg_chain = if s.is_empty() { 0.0 } else { chain_steps as f64 / s.len() as f64 };
    let probe = model.seq_read(s.bytes())
        + model.ht_probe(s.len() as u64, avg_chain, ht_bytes + r.bytes());
    let out_bytes = match mode {
        OutputMode::AggregateOnly => 0,
        OutputMode::MatchIndices => stats.matches * 8,
    };
    let output = model.seq_write(out_bytes);
    let time =
        build / (workers as f64 * BUILD_EFF) + (probe + output) / (workers as f64 * PROBE_EFF);
    JoinOutcome { stats, pairs, time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use hape_sim::CpuSpec;
    use hape_storage::datagen::gen_unique_keys;

    fn model() -> CpuCostModel {
        CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12)
    }

    #[test]
    fn matches_reference() {
        let rk = gen_unique_keys(4096, 1);
        let sk = gen_unique_keys(4096, 2);
        let rv: Vec<u32> = (0..4096).collect();
        let sv: Vec<u32> = (0..4096).map(|i| i + 100_000).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let out = cpu_npj(r, s, &model(), 24, OutputMode::MatchIndices);
        let reference = reference_join(r, s);
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.sorted_pairs(), reference.sorted_pairs());
        assert_eq!(out.stats.matches, 4096);
    }

    #[test]
    fn aggregate_mode_skips_materialisation() {
        let rk = gen_unique_keys(128, 1);
        let rv: Vec<u32> = (0..128).collect();
        let r = JoinInput::new(&rk, &rv);
        let out = cpu_npj(r, r, &model(), 24, OutputMode::AggregateOnly);
        assert!(out.pairs.is_none());
        assert_eq!(out.stats.matches, 128);
        // Self-join: both sums equal the sum of vals.
        assert_eq!(out.stats.sum_r_vals, (0..128).sum::<i64>());
        assert_eq!(out.stats.sum_r_vals, out.stats.sum_s_vals);
    }

    #[test]
    fn more_workers_is_faster() {
        let rk = gen_unique_keys(1 << 14, 3);
        let rv = vec![0u32; 1 << 14];
        let r = JoinInput::new(&rk, &rv);
        let t1 = cpu_npj(
            r,
            r,
            &CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 1),
            1,
            OutputMode::AggregateOnly,
        )
        .time;
        let t24 = cpu_npj(r, r, &model(), 24, OutputMode::AggregateOnly).time;
        assert!(t24.as_secs() < t1.as_secs() / 4.0);
    }

    #[test]
    fn larger_tables_pay_more_per_tuple() {
        // Per-tuple probe cost rises once the table leaves the caches.
        let small_k = gen_unique_keys(1 << 12, 5);
        let small_v = vec![0u32; 1 << 12];
        let big_k = gen_unique_keys(1 << 20, 6);
        let big_v = vec![0u32; 1 << 20];
        let small = JoinInput::new(&small_k, &small_v);
        let big = JoinInput::new(&big_k, &big_v);
        let m = model();
        let t_small = cpu_npj(small, small, &m, 24, OutputMode::AggregateOnly).time;
        let t_big = cpu_npj(big, big, &m, 24, OutputMode::AggregateOnly).time;
        let per_small = t_small.as_ns() / (1 << 12) as f64;
        let per_big = t_big.as_ns() / (1 << 20) as f64;
        assert!(per_big > per_small * 1.5, "{per_small} vs {per_big}");
    }
}
