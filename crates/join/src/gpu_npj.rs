//! GPU non-partitioned hash join (the hardware-oblivious GPU baseline).
//!
//! A single chained hash table in device memory, built with global atomics
//! and probed with random global loads. Each probe drags a whole 128-byte
//! line through L1/L2 to use 8 bytes of it — the over-fetch the paper's
//! Figure 6 quantifies at >3× against the partitioned join.

use hape_sim::gpu::OutOfGpuMemory;
use hape_sim::{GpuMemPool, GpuSim, SimTime};

use crate::common::{hash32, ChainedTable, JoinInput, JoinOutcome, JoinStats, OutputMode};

/// Tuples processed per block in the build/probe kernels.
const ITEMS_PER_BLOCK: usize = 8192;
const BLOCK_THREADS: usize = 256;

/// Run the non-partitioned GPU join. Inputs are assumed GPU-resident;
/// the function allocates the inputs plus the hash table from the device
/// pool and fails with [`OutOfGpuMemory`] when they do not fit (this is the
/// Figure 6 size cut-off).
pub fn gpu_npj(
    sim: &GpuSim,
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    mode: OutputMode,
) -> Result<JoinOutcome, OutOfGpuMemory> {
    let mut pool = GpuMemPool::for_spec(sim.spec());
    let r_buf = pool.alloc(r.bytes())?;
    let s_buf = pool.alloc(s.bytes())?;

    let table = ChainedTable::build(r.keys);
    let heads_buf = pool.alloc((table.heads.len() * 4) as u64)?;
    let next_buf = pool.alloc(((table.next.len() + r.len()) * 4) as u64)?;
    // Entries region: keys+vals+next, the probe's chain working set.
    let entries_bytes = (r.len() * 12) as u64;

    let mut time = SimTime::ZERO;

    // ---- Build kernel: stream r, hash, CAS bucket heads, append entries.
    let grid = r.len().div_ceil(ITEMS_PER_BLOCK).max(1);
    let cfg = hape_sim::LaunchConfig::new(grid, BLOCK_THREADS, 0);
    let bits = table.bits;
    let build = sim.launch(&cfg, |blk| {
        let start = blk.block_idx * ITEMS_PER_BLOCK;
        let end = (start + ITEMS_PER_BLOCK).min(r.len());
        if start >= end {
            return;
        }
        let n = (end - start) as u64;
        blk.global_read_stream(&r_buf.region, start as u64 * 8, n * 8);
        blk.compute(n, 4.0);
        // Head CAS per tuple: random offsets into the heads region.
        let offs: Vec<u64> =
            r.keys[start..end].iter().map(|&k| hash32(k, bits) as u64 * 4).collect();
        blk.global_atomic(&heads_buf.region, &offs);
        // Entry append is index-sequential: a streaming write.
        blk.global_write_stream(n * 12);
    });
    time += build.time;

    // ---- Probe kernel: stream s, random head loads, chain walks.
    let grid = s.len().div_ceil(ITEMS_PER_BLOCK).max(1);
    let cfg = hape_sim::LaunchConfig::new(grid, BLOCK_THREADS, 0);
    let mut stats = JoinStats::default();
    let mut pairs = match mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };
    let entries_region = hape_sim::Region::at(next_buf.region.base, entries_bytes.max(1));
    let probe = sim.launch(&cfg, |blk| {
        let start = blk.block_idx * ITEMS_PER_BLOCK;
        let end = (start + ITEMS_PER_BLOCK).min(s.len());
        if start >= end {
            return;
        }
        let n = (end - start) as u64;
        blk.global_read_stream(&s_buf.region, start as u64 * 8, n * 8);
        blk.compute(n, 6.0);
        let mut head_offs = Vec::with_capacity(end - start);
        let mut chain_offs = Vec::new();
        let mut block_matches = 0u64;
        for (&k, &sv) in s.keys[start..end].iter().zip(&s.vals[start..end]) {
            head_offs.push(hash32(k, bits) as u64 * 4);
            // Walk the real chain, recording the entry addresses touched.
            let mut e = table.heads[hash32(k, bits) as usize];
            while e != crate::common::NIL {
                chain_offs.push(e as u64 * 12);
                if r.keys[e as usize] == k {
                    let rv = r.vals[e as usize];
                    stats.record(rv, sv);
                    block_matches += 1;
                    if let Some((pr, ps)) = pairs.as_mut() {
                        pr.push(rv);
                        ps.push(sv);
                    }
                }
                e = table.next[e as usize];
            }
        }
        blk.global_read(&heads_buf.region, &head_offs, 4);
        blk.global_read(&entries_region, &chain_offs, 12);
        if mode == OutputMode::MatchIndices {
            blk.global_write_stream(block_matches * 8);
        }
    });
    time += probe.time;

    pool.free(r_buf);
    pool.free(s_buf);
    pool.free(heads_buf);
    pool.free(next_buf);
    Ok(JoinOutcome { stats, pairs, time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use hape_sim::{Fidelity, GpuSim, GpuSpec};
    use hape_storage::datagen::gen_unique_keys;

    fn sim() -> GpuSim {
        GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic)
    }

    #[test]
    fn matches_reference() {
        let rk = gen_unique_keys(4096, 31);
        let sk = gen_unique_keys(4096, 32);
        let rv: Vec<u32> = (0..4096).collect();
        let sv: Vec<u32> = (4096..8192).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let out = gpu_npj(&sim(), r, s, OutputMode::MatchIndices).unwrap();
        let reference = reference_join(r, s);
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.sorted_pairs(), reference.sorted_pairs());
    }

    #[test]
    fn oom_when_tables_exceed_gpu_memory() {
        // A scaled-down GPU with 1 MiB of memory cannot hold 64K tuples.
        let tiny = GpuSim::new(GpuSpec::gtx_1080_scaled(1.0 / 8192.0), Fidelity::Analytic);
        let rk = gen_unique_keys(1 << 16, 1);
        let rv = vec![0u32; 1 << 16];
        let r = JoinInput::new(&rk, &rv);
        let err = gpu_npj(&tiny, r, r, OutputMode::AggregateOnly).unwrap_err();
        assert!(err.requested > 0);
    }

    #[test]
    fn probe_dominated_by_random_access() {
        // Doubling the probe side should roughly double time; the cost per
        // probe should far exceed the streaming cost of its 8 bytes.
        let n = 1 << 18;
        let rk = gen_unique_keys(n, 2);
        let rv = vec![0u32; n];
        let r = JoinInput::new(&rk, &rv);
        let out = gpu_npj(&sim(), r, r, OutputMode::AggregateOnly).unwrap();
        assert_eq!(out.stats.matches, n as u64);
        let per_probe_ns = out.time.as_ns() / n as f64;
        let stream_ns = 8.0 / sim().spec().dram_bw * 1e9;
        assert!(per_probe_ns > 4.0 * stream_ns, "{per_probe_ns} vs {stream_ns}");
    }
}
