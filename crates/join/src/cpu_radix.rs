//! CPU radix join (hardware-conscious).
//!
//! Shatdal's cache partitioning + Boncz's multi-pass TLB-bounded fanout:
//! both inputs are co-partitioned on their key radix until every build-side
//! partition's hash table fits the cache-residency budget; each pass's
//! fanout respects the TLB bound. Then each co-partition is joined entirely
//! in cache. Everything is *planned from the [`hape_sim::CpuSpec`]* — the
//! paper's point that the skeleton is shared and only the hardware bounds
//! differ per device (§4.1).

use hape_sim::spec::CpuSpec;
use hape_sim::{CpuCostModel, SimTime};

use crate::common::{ChainedTable, JoinInput, JoinOutcome, JoinStats, OutputMode};
use crate::partition::radix_partition;

/// A planned multi-pass partitioning schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixPlan {
    /// Radix bits per pass.
    pub pass_bits: Vec<u32>,
    /// Total radix bits.
    pub total_bits: u32,
}

impl RadixPlan {
    /// Number of passes.
    pub fn passes(&self) -> usize {
        self.pass_bits.len()
    }

    /// Final number of partitions.
    pub fn fanout(&self) -> usize {
        1usize << self.total_bits
    }
}

/// Plan the CPU radix join for a build side of `n_rows` tuples of
/// `tuple_bytes` each: enough total bits that per-partition tables fit the
/// cache budget; per-pass bits bounded by the TLB-derived fanout.
pub fn plan_radix_cpu(n_rows: usize, tuple_bytes: usize, spec: &CpuSpec) -> RadixPlan {
    let budget = spec.cache_resident_bytes().max(1);
    // Hash-table footprint ≈ 2× the partition payload (heads + next).
    let per_part_target = budget / 2;
    let mut total_bits = 0u32;
    while (n_rows * tuple_bytes) >> total_bits > per_part_target {
        total_bits += 1;
        if total_bits >= 24 {
            break;
        }
    }
    let total_bits = total_bits.max(1);
    let max_pass_bits = spec.max_partition_fanout().trailing_zeros().max(1);
    let mut pass_bits = Vec::new();
    let mut rem = total_bits;
    while rem > 0 {
        let b = rem.min(max_pass_bits);
        pass_bits.push(b);
        rem -= b;
    }
    RadixPlan { pass_bits, total_bits }
}

/// Run the CPU radix join with `workers` cores.
pub fn cpu_radix(
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    model: &CpuCostModel,
    workers: usize,
    mode: OutputMode,
) -> JoinOutcome {
    assert!(workers > 0);
    let plan = plan_radix_cpu(r.len().max(2), 8, model.spec());
    cpu_radix_with_plan(r, s, &plan, model, workers, mode)
}

/// Run with an explicit plan (exposed for fanout-ablation benches).
pub fn cpu_radix_with_plan(
    r: JoinInput<'_>,
    s: JoinInput<'_>,
    plan: &RadixPlan,
    model: &CpuCostModel,
    workers: usize,
    mode: OutputMode,
) -> JoinOutcome {
    let max_pass_bits = *plan.pass_bits.iter().max().unwrap_or(&1);
    let (rp, _) = radix_partition(r, plan.total_bits, max_pass_bits);
    let (sp, _) = radix_partition(s, plan.total_bits, max_pass_bits);
    assert_eq!(rp.fanout(), sp.fanout());

    // Partitioning cost: every pass streams the data once and scatters it
    // into `2^bits` buffers — both sides.
    let mut t_partition = SimTime::ZERO;
    for &bits in &plan.pass_bits {
        t_partition += model.partition_pass(r.len() as u64, 8, 1 << bits);
        t_partition += model.partition_pass(s.len() as u64, 8, 1 << bits);
    }

    // Build & probe per co-partition, all in cache.
    let mut stats = JoinStats::default();
    let mut pairs = match mode {
        OutputMode::MatchIndices => Some((Vec::new(), Vec::new())),
        OutputMode::AggregateOnly => None,
    };
    let mut t_join = SimTime::ZERO;
    let mut chain_steps: u64 = 0;
    for p in 0..rp.fanout() {
        let rpart = rp.part(p);
        let spart = sp.part(p);
        if rpart.is_empty() || spart.is_empty() {
            continue;
        }
        let table = ChainedTable::build(rpart.keys);
        let ws = table.bytes() + rpart.bytes();
        for (&k, &sv) in spart.keys.iter().zip(spart.vals) {
            chain_steps += table.probe(rpart.keys, k, |e| {
                let rv = rpart.vals[e as usize];
                stats.record(rv, sv);
                if let Some((pr, ps)) = pairs.as_mut() {
                    pr.push(rv);
                    ps.push(sv);
                }
            }) as u64;
        }
        let avg_chain =
            if spart.is_empty() { 0.0 } else { chain_steps as f64 / spart.len().max(1) as f64 };
        t_join += model.seq_read(rpart.bytes()) + model.ht_build(rpart.len() as u64, ws);
        t_join += model.seq_read(spart.bytes())
            + model.ht_probe(spart.len() as u64, avg_chain.min(4.0), ws);
        chain_steps = 0;
    }
    let out_bytes = match mode {
        OutputMode::AggregateOnly => 0,
        OutputMode::MatchIndices => stats.matches * 8,
    };
    let t_out = model.seq_write(out_bytes);
    let time = (t_partition + t_join + t_out) / (workers as f64 * 0.92);
    JoinOutcome { stats, pairs, time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_join;
    use crate::cpu_npj::cpu_npj;
    use hape_sim::CpuSpec;
    use hape_storage::datagen::gen_unique_keys;

    fn model() -> CpuCostModel {
        CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12)
    }

    #[test]
    fn plan_respects_tlb_fanout() {
        let spec = CpuSpec::xeon_e5_2650l_v3();
        let plan = plan_radix_cpu(128 << 20, 8, &spec);
        let max_bits = spec.max_partition_fanout().trailing_zeros();
        assert!(plan.pass_bits.iter().all(|&b| b <= max_bits));
        assert!(plan.passes() >= 2, "128M tuples need multiple passes: {plan:?}");
        // Final partitions are cache resident.
        let per_part = ((128usize << 20) * 8) >> plan.total_bits;
        assert!(per_part * 2 <= spec.cache_resident_bytes());
    }

    #[test]
    fn small_input_single_pass() {
        let spec = CpuSpec::xeon_e5_2650l_v3();
        let plan = plan_radix_cpu(1 << 12, 8, &spec);
        assert_eq!(plan.passes(), 1);
    }

    #[test]
    fn matches_reference() {
        let rk = gen_unique_keys(8192, 10);
        let sk = gen_unique_keys(8192, 11);
        let rv: Vec<u32> = (0..8192).collect();
        let sv: Vec<u32> = (0..8192).map(|i| i * 2).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let out = cpu_radix(r, s, &model(), 24, OutputMode::MatchIndices);
        let reference = reference_join(r, s);
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.sorted_pairs(), reference.sorted_pairs());
    }

    #[test]
    fn radix_beats_npj_on_large_inputs() {
        // The Figure 6 ordering: partitioned CPU < non-partitioned CPU once
        // the table is DRAM-resident.
        let n = 1 << 21; // 2M tuples, 16MB build side + table >> caches
        let rk = gen_unique_keys(n, 20);
        let rv = vec![0u32; n];
        let r = JoinInput::new(&rk, &rv);
        let m = model();
        let radix = cpu_radix(r, r, &m, 24, OutputMode::AggregateOnly);
        let npj = cpu_npj(r, r, &m, 24, OutputMode::AggregateOnly);
        assert_eq!(radix.stats, npj.stats);
        assert!(
            radix.time.as_secs() < npj.time.as_secs(),
            "radix {} !< npj {}",
            radix.time,
            npj.time
        );
    }

    #[test]
    fn explicit_plan_over_partitioning_is_slower() {
        // Over-partitioning (fanout ≫ needed) wastes passes.
        let n = 1 << 16;
        let rk = gen_unique_keys(n, 21);
        let rv = vec![0u32; n];
        let r = JoinInput::new(&rk, &rv);
        let m = model();
        let good = cpu_radix(r, r, &m, 24, OutputMode::AggregateOnly);
        let over = cpu_radix_with_plan(
            r,
            r,
            &RadixPlan { pass_bits: vec![7, 7, 7], total_bits: 21 },
            &m,
            24,
            OutputMode::AggregateOnly,
        );
        assert_eq!(good.stats, over.stats);
        assert!(over.time > good.time);
    }
}
