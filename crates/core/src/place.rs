//! The placement pass: [`QueryPlan`] + [`ExecConfig`] → [`PlacedPlan`].
//!
//! This is the HetExchange separation (§3) made explicit as an IR layer:
//! relational operators stay heterogeneity-oblivious while a *placement*
//! decides where each pipeline runs. [`place`] annotates every pipeline
//! with [`Segment`]s — one per participating device, each carrying the
//! [`HetTraits`] its operators execute under — and inserts the exchange
//! operators ([`Exchange::Router`], [`Exchange::MemMove`],
//! [`Exchange::DeviceCrossing`]) wherever the source traits and a
//! segment's traits disagree, using the [`HetTraits::needs_router`] /
//! [`HetTraits::needs_mem_move`] / [`HetTraits::needs_device_crossing`]
//! predicates. The engine then interprets the placed plan generically over
//! [`crate::provider::DeviceProvider`]s; no placement-enum branching
//! survives on the execution path — [`Placement`] is only sugar selecting
//! which devices participate here.

use hape_sim::topology::{DeviceId, Server};

use crate::cost::PlanCost;
use crate::engine::{ExecConfig, Placement};
use crate::error::EngineError;
use crate::exchange::{Exchange, RoutingPolicy};
use crate::plan::{PipeOp, Pipeline, ProbeExec, QueryPlan, Stage};
use crate::traits::{DeviceType, HetTraits, Packing};

/// One pipeline segment placed on a concrete device.
///
/// A segment is the unit the router feeds: its `traits.dop` operator
/// instances all run on `target`, reading packets whose locality the
/// segment's input exchanges have already converted.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The device the segment's operator instances run on.
    pub target: DeviceId,
    /// The heterogeneity traits the segment's operators execute under.
    pub traits: HetTraits,
    /// Exchange operators inserted on the segment's input edge, in
    /// conversion order: the streaming mem-move, the device crossing, then
    /// one broadcast mem-move per hash table the pipeline probes. (The
    /// router is stage-level: it fans out over *all* segments at once.)
    ///
    /// The executor consumes these: the broadcast mem-moves are the
    /// authoritative list of tables a GPU worker installs (and
    /// capacity-checks), while the streaming mem-move and device crossing
    /// are realised by instantiating the worker with its transfer link
    /// and device-specific provider.
    pub exchanges: Vec<Exchange>,
}

impl Segment {
    /// The broadcast hash-table moves on this segment's input edge.
    pub fn broadcast_moves(&self) -> impl Iterator<Item = &Exchange> {
        self.exchanges.iter().filter(|e| e.is_broadcast())
    }
}

/// One placed stage: the stage's pipeline plus where it runs.
#[derive(Debug, Clone)]
pub enum PlacedStage {
    /// Build a named hash table over the pipeline's output.
    Build {
        /// Name under which probes reference the table.
        name: String,
        /// Key column of the pipeline's output.
        key_col: usize,
        /// The producing pipeline.
        pipeline: Pipeline,
        /// The stage-level router (absent when no parallelism conversion
        /// is needed).
        router: Option<Exchange>,
        /// The placed segments, in router candidate order.
        segments: Vec<Segment>,
    },
    /// Run the pipeline into its terminal aggregation.
    Stream {
        /// The aggregating pipeline.
        pipeline: Pipeline,
        /// The stage-level router (absent when no parallelism conversion
        /// is needed).
        router: Option<Exchange>,
        /// The placed segments, in router candidate order.
        segments: Vec<Segment>,
    },
    /// Run the pipeline as an intra-operator co-processing stage (§5,
    /// [`ProbeExec::CoProcess`]): the CPU segments execute the pipeline
    /// prefix and co-partition the stream against the final probe's
    /// oversized hash table; every co-partition pair makes a single PCIe
    /// pass and joins on one of `gpus` — each priced and capacity-checked
    /// against its own spec. The chosen aggregation then folds CPU-side.
    CoProcess {
        /// The aggregating pipeline (its final probe is co-processed).
        pipeline: Pipeline,
        /// The oversized hash table the co-processing join probes.
        ht: String,
        /// The stage-level router for the CPU prefix (absent when no
        /// parallelism conversion is needed).
        router: Option<Exchange>,
        /// The CPU segments running the prefix and the co-partitioning.
        segments: Vec<Segment>,
        /// The GPUs receiving co-partition pairs for single-pass joins.
        gpus: Vec<DeviceId>,
    },
}

impl PlacedStage {
    /// The stage's pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        match self {
            PlacedStage::Build { pipeline, .. }
            | PlacedStage::Stream { pipeline, .. }
            | PlacedStage::CoProcess { pipeline, .. } => pipeline,
        }
    }

    /// The stage's placed segments (for co-processing stages: the CPU
    /// segments running the prefix; the GPU lanes are listed separately).
    pub fn segments(&self) -> &[Segment] {
        match self {
            PlacedStage::Build { segments, .. }
            | PlacedStage::Stream { segments, .. }
            | PlacedStage::CoProcess { segments, .. } => segments,
        }
    }

    /// The stage-level router exchange, if a parallelism conversion was
    /// needed.
    pub fn router(&self) -> Option<&Exchange> {
        match self {
            PlacedStage::Build { router, .. }
            | PlacedStage::Stream { router, .. }
            | PlacedStage::CoProcess { router, .. } => router.as_ref(),
        }
    }

    /// The probe execution mode this stage was placed under.
    pub fn exec(&self) -> ProbeExec {
        match self {
            PlacedStage::CoProcess { ht, .. } => ProbeExec::CoProcess { ht: ht.clone() },
            _ => ProbeExec::Broadcast,
        }
    }

    /// The routing policy the executor should instantiate (the router's,
    /// or load-aware when the stage needed no router).
    pub fn policy(&self) -> RoutingPolicy {
        match self.router() {
            Some(Exchange::Router { policy, .. }) => *policy,
            _ => RoutingPolicy::LoadAware,
        }
    }
}

/// A fully placed physical plan: the executable IR the engine interprets.
#[derive(Debug, Clone)]
pub struct PlacedPlan {
    /// Display name (e.g. `"Q5"`).
    pub name: String,
    /// Rows per packet for the *stream* stage (`None` = auto: ~4 packets
    /// per worker share). Build stages always auto-size — they are
    /// plumbing, not the tunable workload.
    pub packet_rows: Option<usize>,
    /// Data-plane threads for the interpreter's worker pool (`None` =
    /// resolve from the environment; see
    /// [`crate::runtime::resolve_threads`]). Purely a wall-clock knob —
    /// simulated results are thread-count-invariant.
    pub threads: Option<usize>,
    /// The placed stages, executed in order.
    pub stages: Vec<PlacedStage>,
    /// Per-stage cost estimates, attached when the cost-based optimizer
    /// ([`crate::optimize::optimize`]) chose the subsets; `None` for
    /// manually placed plans. Rendered by [`PlacedPlan::render`].
    pub costs: Option<PlanCost>,
}

/// The devices a placement selects on a server — [`Placement`] survives
/// only as this sugar; nothing downstream branches on it. For
/// [`Placement::Auto`] this is the *candidate pool* (every device): the
/// cost-based optimizer narrows it to per-stage subsets.
pub fn participants(placement: Placement, server: &Server) -> Vec<DeviceId> {
    server
        .devices()
        .into_iter()
        .filter(|d| match placement {
            Placement::CpuOnly => !d.is_gpu(),
            Placement::GpuOnly => d.is_gpu(),
            Placement::Hybrid | Placement::Auto => true,
        })
        .collect()
}

/// The traits a pipeline segment executes under on `device`.
///
/// CPU segments keep host (`dram0`) locality: workers stream socket-0
/// resident packets in place (NUMA placement is not modelled, so the
/// cross-socket link never appears on the packet path). GPU segments are
/// device-memory local — their packets must be mem-moved across PCIe.
pub fn segment_traits(device: DeviceId, server: &Server) -> HetTraits {
    match device {
        DeviceId::Cpu(socket) => HetTraits {
            device: DeviceType::Cpu,
            dop: server.cpus[socket].cores,
            locality: HetTraits::cpu_seq().locality,
            packing: Packing::Packets,
        },
        DeviceId::Gpu(_) => HetTraits {
            device: DeviceType::Gpu,
            dop: 1,
            locality: device.local_mem(),
            packing: Packing::Packets,
        },
    }
}

/// Place one pipeline over `devices`: a segment per device, with the
/// trait-mismatch exchanges inserted on each input edge, plus the
/// stage-level router when the total dop differs from the source's.
fn place_pipeline(
    pipeline: &Pipeline,
    devices: &[DeviceId],
    policy: RoutingPolicy,
    server: &Server,
) -> (Option<Exchange>, Vec<Segment>) {
    let source = HetTraits::cpu_seq();
    // Distinct tables only: memoised build sides let a pipeline probe the
    // same hash table at several sites, but it is broadcast into device
    // memory (and capacity-counted) once.
    let mut probed: Vec<String> = Vec::new();
    for t in pipeline.tables_probed() {
        if probed.iter().all(|p| p != t) {
            probed.push(t.to_string());
        }
    }
    let segments: Vec<Segment> = devices
        .iter()
        .map(|&device| {
            let traits = segment_traits(device, server);
            let mut exchanges = Vec::new();
            if source.needs_mem_move(&traits) {
                exchanges.push(Exchange::MemMove {
                    from: source.locality,
                    to: traits.locality,
                    table: None,
                });
            }
            if source.needs_device_crossing(&traits) {
                exchanges
                    .push(Exchange::DeviceCrossing { from: source.device, to: traits.device });
            }
            // Built hash tables live in host memory; a segment whose
            // locality differs needs each probed table broadcast to it.
            if source.needs_mem_move(&traits) {
                for ht in &probed {
                    exchanges.push(Exchange::MemMove {
                        from: source.locality,
                        to: traits.locality,
                        table: Some(ht.clone()),
                    });
                }
            }
            Segment { target: device, traits, exchanges }
        })
        .collect();
    let total_dop: usize = segments.iter().map(|s| s.traits.dop).sum();
    let target = HetTraits { dop: total_dop, ..source };
    let router = source.needs_router(&target).then_some(Exchange::Router {
        policy,
        from_dop: source.dop,
        to_dop: total_dop,
    });
    (router, segments)
}

/// Run the placement pass: validate `plan`, pick the participating devices
/// for `cfg`, and annotate every stage with segments and exchanges.
///
/// Under a manual placement, build stages always run CPU-side (dimension
/// pipelines are scan-light and their tables must end up host-resident
/// for broadcasting) and the stream stage runs on the placement's
/// devices. A placement that selects no existing device — e.g.
/// [`Placement::GpuOnly`] on a zero-GPU server — is the typed
/// [`EngineError::NoWorkers`], not a panic.
///
/// [`Placement::Auto`] has no fixed device pool to fan over: it needs the
/// catalog statistics the cost-based optimizer consumes, so handing it to
/// this pass directly is the typed [`EngineError::AutoWithoutOptimizer`].
/// [`crate::session::Session`] and [`crate::engine::Engine::run`] route
/// `Auto` through [`crate::optimize::optimize`] automatically.
pub fn place(
    plan: &QueryPlan,
    cfg: &ExecConfig,
    server: &Server,
) -> Result<PlacedPlan, EngineError> {
    if cfg.placement == Placement::Auto {
        return Err(EngineError::AutoWithoutOptimizer);
    }
    plan.validate().map_err(EngineError::InvalidPlan)?;
    let stream_devices = participants(cfg.placement, server);
    if stream_devices.is_empty() {
        return Err(EngineError::NoWorkers { placement: format!("{:?}", cfg.placement) });
    }
    let build_devices = participants(Placement::CpuOnly, server);
    let subsets: Vec<Vec<DeviceId>> = plan
        .stages
        .iter()
        .map(|stage| match stage {
            Stage::Build { .. } => build_devices.clone(),
            Stage::Stream { .. } => stream_devices.clone(),
        })
        .collect();
    place_on(plan, cfg, server, &subsets)
}

/// Rewrite a placed *stream* stage into a co-processing stage
/// ([`PlacedStage::CoProcess`]): the existing (CPU) segments keep running
/// the pipeline prefix, while `gpus` become the single-pass join lanes for
/// the final probe of `ht`. This is the entry point the cost-based
/// optimizer uses after [`place_on`] placed the stage's CPU side.
///
/// The stage must be a stream whose final probe targets `ht`, and its
/// segments must all be CPU-side (the co-partitioning is CPU work);
/// anything else is the typed [`EngineError::InvalidCoProcessStage`].
pub fn into_coprocess_stage(
    stage: PlacedStage,
    ht: String,
    gpus: Vec<DeviceId>,
) -> Result<PlacedStage, EngineError> {
    let PlacedStage::Stream { pipeline, router, segments } = stage else {
        return Err(EngineError::InvalidCoProcessStage { table: ht });
    };
    let last_probes_ht = pipeline.last_probe().is_some_and(|(_, t)| t == ht);
    if !last_probes_ht || segments.iter().any(|s| s.target.is_gpu()) || gpus.is_empty() {
        return Err(EngineError::InvalidCoProcessStage { table: ht });
    }
    Ok(PlacedStage::CoProcess { pipeline, ht, router, segments, gpus })
}

/// Place each stage of `plan` on an explicit device subset — the entry
/// point the cost-based optimizer drives, one subset per stage in stage
/// order. A stage handed an empty subset is the typed
/// [`EngineError::NoWorkers`]; a subset list whose length does not match
/// the plan's stage count is the typed
/// [`EngineError::SubsetCountMismatch`].
pub fn place_on(
    plan: &QueryPlan,
    cfg: &ExecConfig,
    server: &Server,
    subsets: &[Vec<DeviceId>],
) -> Result<PlacedPlan, EngineError> {
    plan.validate().map_err(EngineError::InvalidPlan)?;
    if subsets.len() != plan.stages.len() {
        return Err(EngineError::SubsetCountMismatch {
            stages: plan.stages.len(),
            subsets: subsets.len(),
        });
    }
    let mut stages = Vec::with_capacity(plan.stages.len());
    for (stage, devices) in plan.stages.iter().zip(subsets) {
        if devices.is_empty() {
            return Err(EngineError::NoWorkers {
                placement: "empty device subset".to_string(),
            });
        }
        match stage {
            Stage::Build { name, key_col, pipeline } => {
                let (router, segments) =
                    place_pipeline(pipeline, devices, RoutingPolicy::LoadAware, server);
                stages.push(PlacedStage::Build {
                    name: name.clone(),
                    key_col: *key_col,
                    pipeline: pipeline.clone(),
                    router,
                    segments,
                });
            }
            Stage::Stream { pipeline } => {
                let (router, segments) = place_pipeline(pipeline, devices, cfg.policy, server);
                stages.push(PlacedStage::Stream {
                    pipeline: pipeline.clone(),
                    router,
                    segments,
                });
            }
        }
    }
    Ok(PlacedPlan {
        name: plan.name.clone(),
        packet_rows: cfg.packet_rows,
        threads: cfg.threads,
        stages,
        costs: None,
    })
}

impl PlacedPlan {
    /// Reconstruct the logical [`QueryPlan`] this placed plan realises —
    /// the input the `optimize`/`place_on` passes need to re-place the
    /// query on a *degraded* topology after permanent device loss.
    /// Co-processing stages collapse back to the stream stage they were
    /// rewritten from (`into_coprocess_stage` keeps the probe in the
    /// pipeline, so the reconstruction is lossless).
    pub fn logical(&self) -> QueryPlan {
        QueryPlan {
            name: self.name.clone(),
            stages: self
                .stages
                .iter()
                .map(|s| match s {
                    PlacedStage::Build { name, key_col, pipeline, .. } => Stage::Build {
                        name: name.clone(),
                        key_col: *key_col,
                        pipeline: pipeline.clone(),
                    },
                    PlacedStage::Stream { pipeline, .. }
                    | PlacedStage::CoProcess { pipeline, .. } => {
                        Stage::Stream { pipeline: pipeline.clone() }
                    }
                })
                .collect(),
        }
    }

    /// The devices each stage runs on, in stage order: segment targets
    /// plus, for co-processing stages, the GPU lanes. This is the seed the
    /// fault plane filters against a degraded fleet before handing
    /// [`place_on`] its per-stage subsets.
    pub fn stage_devices(&self) -> Vec<Vec<DeviceId>> {
        self.stages
            .iter()
            .map(|s| {
                let mut devices: Vec<DeviceId> =
                    s.segments().iter().map(|seg| seg.target).collect();
                if let PlacedStage::CoProcess { gpus, .. } = s {
                    for g in gpus {
                        if !devices.contains(g) {
                            devices.push(*g);
                        }
                    }
                }
                devices
            })
            .collect()
    }

    /// Render the placed plan for humans: one block per stage listing the
    /// pipeline shape, the router, and each segment with its traits and
    /// the exchanges inserted on its input edge. Optimized plans
    /// additionally render the chosen subset's per-stage cost estimate and
    /// the estimated plan makespan. This is what
    /// [`crate::session::Session::explain`] returns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "PlacedPlan {}", self.name);
        for (i, stage) in self.stages.iter().enumerate() {
            let pipeline = stage.pipeline();
            match stage {
                PlacedStage::Build { name, key_col, .. } => {
                    let _ = writeln!(out, "stage {i}: build {name} (key col {key_col})");
                }
                PlacedStage::Stream { .. } => {
                    let _ = writeln!(out, "stage {i}: stream");
                }
                PlacedStage::CoProcess { .. } => {
                    let _ = writeln!(out, "stage {i}: stream ({})", stage.exec());
                }
            }
            let _ = writeln!(out, "  pipeline: {}", render_pipeline(pipeline));
            if let Some(router) = stage.router() {
                let _ = writeln!(out, "  {router}");
            }
            for seg in stage.segments() {
                let t = &seg.traits;
                let _ = writeln!(
                    out,
                    "  segment {}: {:?} dop={} mem={} packing={:?}",
                    seg.target, t.device, t.dop, t.locality, t.packing
                );
                for x in &seg.exchanges {
                    let _ = writeln!(out, "    {x}");
                }
            }
            if let PlacedStage::CoProcess { ht, gpus, .. } = stage {
                let lanes: Vec<String> = gpus.iter().map(|g| g.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  co-process: cpu co-partition {ht:?} -> single-pass join on {}",
                    lanes.join(", "),
                );
            }
            if let Some(cost) = self.costs.as_ref().and_then(|c| c.stages.get(i)) {
                let _ = writeln!(
                    out,
                    "  est: total {} = stream {} + broadcast {} + d2h {}",
                    fmt_ms(cost.total_seconds()),
                    fmt_ms(cost.stream_seconds),
                    fmt_ms(cost.broadcast_seconds),
                    fmt_ms(cost.d2h_seconds),
                );
                if let Some(cp) = &cost.coprocess {
                    let _ = writeln!(
                        out,
                        "  est: co-process cpu-partition {} (2^{} fanout) + gpu pass {}",
                        fmt_ms(cp.cpu_partition_seconds),
                        cp.cpu_bits,
                        fmt_ms(cp.gpu_pass_seconds),
                    );
                    let _ = writeln!(
                        out,
                        "  est: co-partition pair {} B of {} B gpu budget",
                        cp.per_partition_bytes,
                        cost.gpu_capacity.unwrap_or(0),
                    );
                } else if let Some(cap) = cost.gpu_capacity {
                    let _ = writeln!(
                        out,
                        "  est: gpu hash tables {} B ({} B with working space) of {cap} B",
                        cost.ht_bytes, cost.gpu_required,
                    );
                }
            }
        }
        if let Some(costs) = &self.costs {
            let _ = writeln!(out, "est makespan: {}", fmt_ms(costs.total_seconds()));
        }
        out
    }
}

/// Fixed-format milliseconds for cost rendering (snapshot-stable).
fn fmt_ms(seconds: f64) -> String {
    format!("{:.4} ms", seconds * 1e3)
}

/// One-line pipeline shape: `scan(src) | filter | join(ht) | ... | agg`.
fn render_pipeline(p: &Pipeline) -> String {
    let mut parts = vec![format!("scan({})", p.source)];
    for op in &p.ops {
        parts.push(match op {
            PipeOp::Filter(_) => "filter".to_string(),
            PipeOp::Project(exprs) => format!("project[{}]", exprs.len()),
            PipeOp::JoinProbe { ht, .. } => format!("join({ht})"),
            PipeOp::Stateful(agg) => agg.label(),
        });
    }
    if p.agg.is_some() {
        parts.push("agg".to_string());
    }
    parts.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinAlgo;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_sim::topology::MemNode;

    fn join_plan() -> QueryPlan {
        QueryPlan::try_new(
            "t",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn cpu_only_placement_has_no_device_exchanges() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let placed = place(&plan, &ExecConfig::new(Placement::CpuOnly), &server).unwrap();
        assert_eq!(placed.stages.len(), 2);
        let stream = placed.stages.last().unwrap();
        assert_eq!(stream.segments().len(), 2); // one per socket
        for seg in stream.segments() {
            assert_eq!(seg.traits.device, DeviceType::Cpu);
            assert_eq!(seg.traits.locality, MemNode::CpuDram(0));
            assert!(seg.exchanges.is_empty(), "no trait mismatch on CPU segments");
        }
        // 1 -> 24 parallelism conversion: the router is required.
        match stream.router() {
            Some(Exchange::Router { from_dop: 1, to_dop: 24, .. }) => {}
            r => panic!("unexpected router {r:?}"),
        }
    }

    #[test]
    fn gpu_segments_get_mem_move_crossing_and_broadcasts() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let placed = place(&plan, &ExecConfig::new(Placement::Hybrid), &server).unwrap();
        let stream = placed.stages.last().unwrap();
        // CPU sockets first (router candidate order), then GPUs.
        assert_eq!(stream.segments().len(), 4);
        let gpu1 = &stream.segments()[3];
        assert_eq!(gpu1.target, DeviceId::Gpu(1));
        assert_eq!(gpu1.traits.device, DeviceType::Gpu);
        assert_eq!(gpu1.traits.locality, MemNode::GpuDram(1));
        assert_eq!(
            gpu1.exchanges,
            vec![
                Exchange::MemMove {
                    from: MemNode::CpuDram(0),
                    to: MemNode::GpuDram(1),
                    table: None,
                },
                Exchange::DeviceCrossing { from: DeviceType::Cpu, to: DeviceType::Gpu },
                Exchange::MemMove {
                    from: MemNode::CpuDram(0),
                    to: MemNode::GpuDram(1),
                    table: Some("dim_ht".into()),
                },
            ]
        );
        assert_eq!(gpu1.broadcast_moves().count(), 1);
        // Hybrid router fans 1 -> 24 cores + 2 GPUs.
        match stream.router() {
            Some(Exchange::Router { from_dop: 1, to_dop: 26, .. }) => {}
            r => panic!("unexpected router {r:?}"),
        }
    }

    #[test]
    fn builds_stay_cpu_side_even_under_gpu_only() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let placed = place(&plan, &ExecConfig::new(Placement::GpuOnly), &server).unwrap();
        let PlacedStage::Build { segments, .. } = &placed.stages[0] else {
            panic!("first stage is the build");
        };
        assert!(segments.iter().all(|s| !s.target.is_gpu()));
        let stream = placed.stages.last().unwrap();
        assert!(stream.segments().iter().all(|s| s.target.is_gpu()));
    }

    #[test]
    fn gpu_only_on_zero_gpu_server_is_a_typed_error() {
        let plan = join_plan();
        let err = place(&plan, &ExecConfig::new(Placement::GpuOnly), &Server::cpu_only())
            .unwrap_err();
        assert!(matches!(err, EngineError::NoWorkers { .. }), "{err}");
    }

    #[test]
    fn hybrid_on_zero_gpu_server_degrades_to_cpu_segments() {
        let plan = join_plan();
        let placed =
            place(&plan, &ExecConfig::new(Placement::Hybrid), &Server::cpu_only()).unwrap();
        let stream = placed.stages.last().unwrap();
        assert_eq!(stream.segments().len(), 2);
        assert!(stream.segments().iter().all(|s| !s.target.is_gpu()));
    }

    #[test]
    fn single_worker_placement_needs_no_router() {
        // A single GPU is a 1 -> 1 parallelism "conversion": the
        // needs_router predicate correctly suppresses the exchange.
        let plan = join_plan();
        let placed =
            place(&plan, &ExecConfig::new(Placement::GpuOnly), &Server::single_gpu()).unwrap();
        let stream = placed.stages.last().unwrap();
        assert!(stream.router().is_none());
        assert_eq!(stream.policy(), RoutingPolicy::LoadAware);
        assert_eq!(stream.segments().len(), 1);
    }

    #[test]
    fn policy_rides_the_stream_router_builds_stay_load_aware() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let cfg = ExecConfig {
            policy: RoutingPolicy::RoundRobin,
            ..ExecConfig::new(Placement::Hybrid)
        };
        let placed = place(&plan, &cfg, &server).unwrap();
        assert_eq!(placed.stages[0].policy(), RoutingPolicy::LoadAware);
        assert_eq!(placed.stages[1].policy(), RoutingPolicy::RoundRobin);
    }

    #[test]
    fn duplicate_probes_broadcast_once() {
        // Memoised lowering can probe one hash table at two sites; the
        // GPU segment's input edge carries a single broadcast for it.
        let plan = QueryPlan::try_new(
            "t",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
                },
            ],
        )
        .unwrap();
        let placed =
            place(&plan, &ExecConfig::new(Placement::GpuOnly), &Server::paper_testbed())
                .unwrap();
        for seg in placed.stages.last().unwrap().segments() {
            assert_eq!(seg.broadcast_moves().count(), 1, "{}", seg.target);
        }
    }

    #[test]
    fn into_coprocess_rewrites_streams_and_rejects_everything_else() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let placed = place(&plan, &ExecConfig::new(Placement::CpuOnly), &server).unwrap();
        assert_eq!(placed.stages[0].exec(), ProbeExec::Broadcast);
        // A build stage cannot co-process.
        let err = into_coprocess_stage(
            placed.stages[0].clone(),
            "dim_ht".into(),
            vec![DeviceId::Gpu(0)],
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidCoProcessStage { .. }), "{err}");
        let stream = placed.stages[1].clone();
        // The named table must be the stream's *final* probe.
        let err = into_coprocess_stage(stream.clone(), "ghost".into(), vec![DeviceId::Gpu(0)])
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidCoProcessStage { .. }), "{err}");
        // At least one GPU lane is required.
        let err =
            into_coprocess_stage(stream.clone(), "dim_ht".into(), Vec::new()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidCoProcessStage { .. }), "{err}");
        let cp = into_coprocess_stage(
            stream,
            "dim_ht".into(),
            vec![DeviceId::Gpu(0), DeviceId::Gpu(1)],
        )
        .unwrap();
        assert_eq!(cp.exec(), ProbeExec::CoProcess { ht: "dim_ht".into() });
        assert!(cp.segments().iter().all(|s| !s.target.is_gpu()));
        let PlacedStage::CoProcess { gpus, .. } = &cp else {
            panic!("rewrite must produce a co-process stage")
        };
        assert_eq!(gpus.len(), 2);
    }

    #[test]
    fn place_on_subset_count_mismatch_is_typed() {
        let plan = join_plan();
        let server = Server::paper_testbed();
        let err = place_on(
            &plan,
            &ExecConfig::new(Placement::CpuOnly),
            &server,
            &[vec![DeviceId::Cpu(0)]], // 1 subset for 2 stages
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::SubsetCountMismatch { stages: 2, subsets: 1 }),
            "{err}"
        );
    }

    #[test]
    fn invalid_plan_rejected_before_placement() {
        let plan = QueryPlan {
            name: "bad".into(),
            stages: vec![Stage::Stream { pipeline: Pipeline::scan("t") }],
        };
        let err = place(&plan, &ExecConfig::new(Placement::CpuOnly), &Server::paper_testbed())
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidPlan(_)));
    }

    #[test]
    fn render_shows_exchanges() {
        let plan = join_plan();
        let placed =
            place(&plan, &ExecConfig::new(Placement::Hybrid), &Server::paper_testbed())
                .unwrap();
        let text = placed.render();
        assert!(text.contains("Router(LoadAware, 1 -> 26)"), "{text}");
        assert!(text.contains("MemMove(dram0 -> gmem0)"), "{text}");
        assert!(text.contains("DeviceCrossing(Cpu -> Gpu)"), "{text}");
        assert!(text.contains("broadcast \"dim_ht\""), "{text}");
        assert!(text.contains("pipeline: scan(fact) | join(dim_ht) | agg"), "{text}");
    }
}
