//! The logical query builder: named columns, fallible lowering.
//!
//! A [`Query`] is a DataFrame-style description of a query — scans,
//! filters, mid-chain computed projections ([`Query::select`]), joins
//! (whose build sides are themselves `Query`s) and a terminal
//! group-by/aggregate — written entirely against *column names*:
//!
//! ```
//! use hape_core::query::Query;
//! use hape_ops::{col, lit, AggFunc};
//! use hape_core::JoinAlgo;
//!
//! let dims = Query::scan("dim");
//! let q = Query::scan("fact")
//!     .join(dims, "d_id", "id", JoinAlgo::Partitioned)
//!     .filter(col("amount").gt(lit(10.0)))
//!     .agg(vec![(AggFunc::Sum, col("amount"))]);
//! # let _ = q;
//! ```
//!
//! [`Query::lower`] resolves every name against the catalog's table
//! schemas and produces the engine's physical [`QueryPlan`] — the lowered
//! IR of build [`Stage`]s and a fused stream [`Pipeline`] with positional
//! column indices. Lowering performs **automatic projection pushdown**:
//! each scan reads exactly the columns the query references (registered as
//! zero-copy projected views in the returned derived catalog), and each
//! join carries exactly the build-side columns referenced downstream, so
//! scan and transfer costs are charged on exactly the touched bytes — what
//! the per-query hand-maintained projections used to do manually.
//!
//! Everything is fallible: unknown tables/columns, type mismatches,
//! aggregating build sides and aggregate-less streams all surface as
//! [`PlanError`]s instead of panicking.

use std::collections::{BTreeSet, HashMap, HashSet};

use hape_ops::{AggFunc, AggSpec, ColumnResolver, NamedExpr, ResolveError, StatefulAgg};
use hape_storage::{DataType, Table};

use crate::catalog::Catalog;
use crate::error::PlanError;
use crate::plan::{JoinAlgo, Pipeline, QueryPlan, Stage};

/// A logical relational query over named columns.
#[derive(Debug, Clone)]
pub struct Query {
    /// Display name; also prefixes the lowered plan's scan/hash-table
    /// aliases.
    pub name: String,
    source: Option<String>,
    ops: Vec<LogicalOp>,
    group_by: Vec<String>,
    aggs: Vec<(AggFunc, NamedExpr)>,
}

#[derive(Debug, Clone)]
enum LogicalOp {
    Filter(NamedExpr),
    Select(Vec<(String, NamedExpr)>),
    Join(JoinSpec),
    Stateful(StatefulSpec),
}

#[derive(Debug, Clone)]
struct JoinSpec {
    build: Query,
    probe_key: String,
    build_key: String,
    algo: JoinAlgo,
}

/// A named-column order-sensitive per-user aggregate (the logical face of
/// [`crate::plan::PipeOp::Stateful`]). Event names are plain strings here;
/// lowering resolves them against the event column's dictionary.
#[derive(Debug, Clone)]
struct StatefulSpec {
    user: String,
    ts: String,
    kind: StatefulKind,
}

#[derive(Debug, Clone)]
enum StatefulKind {
    Sessionize { gap: i64 },
    WindowFunnel { event: String, steps: Vec<String>, window: i64 },
    Retention { event: String, cohort: String, returns: Vec<String>, period: i64 },
    SequenceMatch { event: String, pattern: Vec<String> },
}

impl StatefulSpec {
    /// Input column names the aggregate consumes.
    fn input_names(&self) -> Vec<String> {
        let mut names = vec![self.user.clone(), self.ts.clone()];
        match &self.kind {
            StatefulKind::Sessionize { .. } => {}
            StatefulKind::WindowFunnel { event, .. }
            | StatefulKind::Retention { event, .. }
            | StatefulKind::SequenceMatch { event, .. } => names.push(event.clone()),
        }
        names
    }

    /// Output column names (user column first), mirroring
    /// [`hape_ops::StatefulAgg::out_names`].
    fn output_names(&self) -> Vec<String> {
        let mut names = vec![self.user.clone()];
        match &self.kind {
            StatefulKind::Sessionize { .. } => {
                names.extend(["sessions".to_string(), "events".to_string()]);
            }
            StatefulKind::WindowFunnel { .. } => names.push("funnel_depth".to_string()),
            StatefulKind::Retention { returns, .. } => {
                names.push("in_cohort".to_string());
                names.extend((1..=returns.len()).map(|i| format!("ret{i}")));
            }
            StatefulKind::SequenceMatch { .. } => names.push("matched".to_string()),
        }
        names
    }
}

impl Query {
    /// An empty named query; call [`Query::scan`] to give it a source.
    pub fn new(name: impl Into<String>) -> Self {
        Query {
            name: name.into(),
            source: None,
            ops: Vec::new(),
            group_by: Vec::new(),
            aggs: Vec::new(),
        }
    }

    /// A query scanning `table`, named after it — the usual way to start a
    /// join build side.
    pub fn scan(table: impl Into<String>) -> Self {
        let table = table.into();
        let mut q = Query::new(table.clone());
        q.source = Some(table);
        q
    }

    /// Set (or replace) the scanned source table.
    pub fn from_table(mut self, table: impl Into<String>) -> Self {
        self.source = Some(table.into());
        self
    }

    /// Keep rows satisfying `predicate` (a boolean [`NamedExpr`]).
    pub fn filter(mut self, predicate: NamedExpr) -> Self {
        self.ops.push(LogicalOp::Filter(predicate));
        self
    }

    /// Mid-chain computed projection: **replace** the visible columns with
    /// the given `(name, expression)` outputs — the logical face of
    /// [`crate::plan::PipeOp::Project`].
    ///
    /// All expressions must be numeric (outputs are `f64`-typed), so a
    /// select output cannot be used as a later join key or group-by
    /// column — lowering rejects both with typed [`PlanError`]s. Columns
    /// not re-selected stop being visible downstream; anything the rest of
    /// the chain needs must ride through the select explicitly (e.g.
    /// `("l_quantity", col("l_quantity"))`).
    pub fn select<S: Into<String>>(mut self, exprs: Vec<(S, NamedExpr)>) -> Self {
        self.ops
            .push(LogicalOp::Select(exprs.into_iter().map(|(n, e)| (n.into(), e)).collect()));
        self
    }

    /// Join against `build` (a non-aggregating sub-query): rows where this
    /// query's `probe_key` column equals the build side's `build_key`
    /// column. Build-side columns referenced downstream are carried along
    /// automatically.
    ///
    /// Name resolution is first-provider-wins: a name visible on the probe
    /// side (or provided by an earlier join) binds there, and only names
    /// not yet visible are pulled from this join's build side. Joins whose
    /// sides share column names therefore resolve to the probe side's
    /// column rather than erroring.
    pub fn join(
        mut self,
        build: Query,
        probe_key: impl Into<String>,
        build_key: impl Into<String>,
        algo: JoinAlgo,
    ) -> Self {
        self.ops.push(LogicalOp::Join(JoinSpec {
            build,
            probe_key: probe_key.into(),
            build_key: build_key.into(),
            algo,
        }));
        self
    }

    /// Sessionize: per user, count sessions (maximal runs of events whose
    /// consecutive timestamps gap by at most `gap`) and total events.
    /// Emits one row per user with columns `{user}`, `sessions`, `events`.
    ///
    /// Like every stateful aggregate, it requires the scanned table sorted
    /// by `(user, ts)` and must appear before any select or join (only
    /// filters may precede it) — lowering enforces both structurally.
    pub fn sessionize(
        mut self,
        user: impl Into<String>,
        ts: impl Into<String>,
        gap: i64,
    ) -> Self {
        self.ops.push(LogicalOp::Stateful(StatefulSpec {
            user: user.into(),
            ts: ts.into(),
            kind: StatefulKind::Sessionize { gap },
        }));
        self
    }

    /// Window funnel: per user, the deepest prefix of `steps` (event names,
    /// matched against the `event` column's dictionary) completed in order
    /// within `window` of the chain's start. Emits `{user}`, `funnel_depth`.
    pub fn window_funnel(
        mut self,
        user: impl Into<String>,
        ts: impl Into<String>,
        event: impl Into<String>,
        steps: &[&str],
        window: i64,
    ) -> Self {
        self.ops.push(LogicalOp::Stateful(StatefulSpec {
            user: user.into(),
            ts: ts.into(),
            kind: StatefulKind::WindowFunnel {
                event: event.into(),
                steps: steps.iter().map(|s| s.to_string()).collect(),
                window: window.max(0),
            },
        }));
        self
    }

    /// Retention: per user, whether they emitted `cohort` at all, and — for
    /// each of the `returns` events — whether that event recurs in the
    /// i-th `period` after the cohort event. Emits `{user}`, `in_cohort`,
    /// `ret1`..`ret{k}`.
    pub fn retention(
        mut self,
        user: impl Into<String>,
        ts: impl Into<String>,
        event: impl Into<String>,
        cohort: impl Into<String>,
        returns: &[&str],
        period: i64,
    ) -> Self {
        self.ops.push(LogicalOp::Stateful(StatefulSpec {
            user: user.into(),
            ts: ts.into(),
            kind: StatefulKind::Retention {
                event: event.into(),
                cohort: cohort.into(),
                returns: returns.iter().map(|s| s.to_string()).collect(),
                period,
            },
        }));
        self
    }

    /// Sequence match: per user, whether the event names in `pattern`
    /// occur as an ordered (not necessarily adjacent) subsequence. Emits
    /// `{user}`, `matched`.
    pub fn sequence_match(
        mut self,
        user: impl Into<String>,
        ts: impl Into<String>,
        event: impl Into<String>,
        pattern: &[&str],
    ) -> Self {
        self.ops.push(LogicalOp::Stateful(StatefulSpec {
            user: user.into(),
            ts: ts.into(),
            kind: StatefulKind::SequenceMatch {
                event: event.into(),
                pattern: pattern.iter().map(|s| s.to_string()).collect(),
            },
        }));
        self
    }

    /// Group the terminal aggregation by these columns.
    pub fn group_by(mut self, columns: &[&str]) -> Self {
        self.group_by = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Terminate with `(function, argument)` aggregates. A query needs
    /// this (or it is only usable as a join build side).
    pub fn agg(mut self, aggs: Vec<(AggFunc, NamedExpr)>) -> Self {
        self.aggs = aggs;
        self
    }

    /// True when the query ends in an aggregation.
    pub fn aggregates(&self) -> bool {
        !self.aggs.is_empty()
    }

    /// Lower into the physical IR: build stages, a stream stage, and a
    /// derived catalog holding the pushed-down scan projections.
    ///
    /// Structurally identical join build sides (same scan, operators and
    /// build key — e.g. Q5's ASIA-nations chain, referenced by both the
    /// customer and the supplier sub-queries) are lowered and built
    /// **once**: a first pass collects, per shared structure, the union of
    /// the payload columns its probe sites need; the second pass memoises
    /// on the structural key, so later sites probe the first site's hash
    /// table instead of emitting a duplicate build stage.
    pub fn lower(&self, catalog: &Catalog) -> Result<LoweredQuery, PlanError> {
        if !self.aggregates() {
            return Err(PlanError::StreamWithoutAggregate { name: self.name.clone() });
        }
        let mut ctx = Lowering::with_export_unions(
            catalog,
            Lowering::collect_export_unions(catalog, self, &self.name, &[])?,
        );
        let (pipeline, _) = ctx.lower_chain(self, &self.name, &[])?;
        let mut stages = ctx.stages;
        stages.push(Stage::Stream { pipeline });
        let plan = QueryPlan::try_new(self.name.clone(), stages)?;
        Ok(LoweredQuery { plan, catalog: ctx.derived, build_fingerprints: ctx.fingerprints })
    }

    /// Lower a *non-aggregating* query for explicit materialisation (the
    /// intra-operator co-processing path): build stages plus the final
    /// pipeline, with `keep` naming extra columns the output must retain
    /// beyond what the chain itself uses.
    pub fn lower_materialize(
        &self,
        catalog: &Catalog,
        keep: &[&str],
    ) -> Result<LoweredMaterialize, PlanError> {
        if self.aggregates() {
            return Err(PlanError::BuildWithAggregate { stage: self.name.clone() });
        }
        let keep: Vec<String> = keep.iter().map(|c| c.to_string()).collect();
        let mut ctx = Lowering::with_export_unions(
            catalog,
            Lowering::collect_export_unions(catalog, self, &self.name, &keep)?,
        );
        let (pipeline, cols) = ctx.lower_chain(self, &self.name, &keep)?;
        Ok(LoweredMaterialize {
            builds: ctx.stages,
            pipeline,
            output: cols.into_iter().map(|c| c.name).collect(),
            catalog: ctx.derived,
        })
    }

    /// Column names this chain could export: its source table's schema
    /// plus, recursively, everything its build sides could provide — with
    /// a `select` resetting visibility to exactly its outputs.
    fn available_names(&self, catalog: &Catalog) -> Result<Vec<String>, PlanError> {
        let source = self.source()?;
        let table = lookup(catalog, source)?;
        let mut names: Vec<String> =
            table.schema.fields.iter().map(|f| f.name.clone()).collect();
        for op in &self.ops {
            match op {
                LogicalOp::Join(j) => names.extend(j.build.available_names(catalog)?),
                LogicalOp::Select(items) => {
                    names = items.iter().map(|(n, _)| n.clone()).collect();
                }
                LogicalOp::Stateful(s) => names = s.output_names(),
                LogicalOp::Filter(_) => {}
            }
        }
        Ok(names)
    }

    /// Names this chain itself consumes (filters, select expressions,
    /// probe keys, group-by, aggregate arguments) — not including
    /// sub-chains.
    fn names_used(&self) -> Vec<String> {
        let mut names = Vec::new();
        for op in &self.ops {
            match op {
                LogicalOp::Filter(e) => names.extend(e.columns_used()),
                LogicalOp::Select(items) => {
                    names.extend(items.iter().flat_map(|(_, e)| e.columns_used()));
                }
                LogicalOp::Join(j) => names.push(j.probe_key.clone()),
                LogicalOp::Stateful(s) => names.extend(s.input_names()),
            }
        }
        names.extend(self.group_by.iter().cloned());
        for (_, e) in &self.aggs {
            names.extend(e.columns_used());
        }
        names
    }

    fn source(&self) -> Result<&str, PlanError> {
        self.source
            .as_deref()
            .ok_or_else(|| PlanError::MissingScan { query: self.name.clone() })
    }

    /// Append a canonical structural description — source, operators,
    /// keys, everything that determines the lowered pipeline, but *not*
    /// the display name — to `out`. Two sub-queries with equal keys lower
    /// identically given equal exports, which is what the build-side memo
    /// in [`Query::lower`] relies on.
    fn structural_key(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "scan({:?})", self.source);
        for op in &self.ops {
            match op {
                LogicalOp::Filter(e) => {
                    let _ = write!(out, "|filter({e:?})");
                }
                LogicalOp::Select(items) => {
                    let _ = write!(out, "|select(");
                    for (n, e) in items {
                        let _ = write!(out, "{n}={e:?};");
                    }
                    let _ = write!(out, ")");
                }
                LogicalOp::Join(j) => {
                    let _ = write!(out, "|join[{}={},{:?}](", j.probe_key, j.build_key, j.algo);
                    j.build.structural_key(out);
                    let _ = write!(out, ")");
                }
                LogicalOp::Stateful(s) => {
                    let _ = write!(out, "|stateful({s:?})");
                }
            }
        }
        // Build sides never aggregate (validated during lowering), but a
        // complete key costs nothing.
        let _ = write!(out, "|group{:?}|aggs{:?}", self.group_by, self.aggs);
    }
}

/// A lowered executable query: the physical plan plus the derived catalog
/// holding its pushed-down scan projections (zero-copy views over the base
/// tables).
#[derive(Debug, Clone)]
pub struct LoweredQuery {
    /// The physical plan (the lowered IR — still public for benchmarks and
    /// the baseline systems, which execute it under their own cost models).
    pub plan: QueryPlan,
    /// Base catalog plus the projected scan views the plan references.
    pub catalog: Catalog,
    /// Per-build-stage structural fingerprints, keyed by hash-table name.
    /// The fingerprint canonicalises everything that determines the built
    /// table's contents and layout — the build chain's structural key, the
    /// build key, and the exported column layout — but *not* the query's
    /// display name (hash-table names embed it, so they cannot identify
    /// shared structure across queries). The serving layer's cross-query
    /// build cache keys on it: two queries whose build sides fingerprint
    /// equal build bit-identical hash tables from the same catalog.
    pub build_fingerprints: HashMap<String, String>,
}

/// A lowered non-aggregating query for explicit materialisation.
#[derive(Debug, Clone)]
pub struct LoweredMaterialize {
    /// Hash-table build stages, in dependency order.
    pub builds: Vec<Stage>,
    /// The final (non-aggregating) pipeline.
    pub pipeline: Pipeline,
    /// Output column names, in the pipeline's physical column order.
    pub output: Vec<String>,
    /// Base catalog plus projected scan views.
    pub catalog: Catalog,
}

impl LoweredMaterialize {
    /// Physical index of an output column.
    pub fn index_of(&self, name: &str) -> Result<usize, PlanError> {
        self.output.iter().position(|n| n == name).ok_or_else(|| PlanError::UnknownColumn {
            column: name.to_string(),
            context: "materialised output".to_string(),
        })
    }
}

/// One visible column during lowering: its name, type, and the base table
/// it originates from (for dictionary lookups).
#[derive(Debug, Clone)]
struct ColInfo {
    name: String,
    dtype: DataType,
    origin: String,
}

/// Expression result kinds for type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Num,
    Bool,
    Str,
}

impl Kind {
    fn describe(self) -> &'static str {
        match self {
            Kind::Num => "numeric",
            Kind::Bool => "boolean",
            Kind::Str => "string",
        }
    }
}

fn lookup<'a>(catalog: &'a Catalog, table: &str) -> Result<&'a Table, PlanError> {
    catalog.get(table).ok_or_else(|| PlanError::UnknownTable { table: table.to_string() })
}

/// Name resolution scope over the columns visible at one pipeline point.
struct Scope<'a> {
    cols: &'a [ColInfo],
    catalog: &'a Catalog,
}

impl Scope<'_> {
    fn find(&self, name: &str) -> Option<&ColInfo> {
        self.cols.iter().find(|c| c.name == name)
    }
}

impl ColumnResolver for Scope<'_> {
    fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    fn str_code(&self, name: &str, value: &str) -> Result<i32, ResolveError> {
        let info = self
            .find(name)
            .ok_or_else(|| ResolveError::UnknownColumn { column: name.to_string() })?;
        if info.dtype != DataType::Str {
            return Err(ResolveError::StringLiteralType {
                literal: value.to_string(),
                column: name.to_string(),
            });
        }
        // The origin table came out of this catalog during lowering, so
        // both lookups are infallible here.
        let code = self
            .catalog
            .get(&info.origin)
            .and_then(|t| t.column(name).dict().and_then(|d| d.code_of(value)));
        // Absent value: a sentinel no dictionary code equals (codes are
        // unsigned), so the comparison selects no rows — SQL semantics.
        Ok(code.map_or(-1, |c| c as i32))
    }
}

/// The key identifying a shareable build side: its structural description
/// plus the key column the hash table is built over.
type BuildKey = (String, String);

/// Shared lowering state: the derived catalog being assembled, the build
/// stages emitted so far, the alias/hash-table names already taken, and
/// the build-side memoisation (structural-hash cache) that lowers
/// structurally identical build sub-queries once.
struct Lowering<'a> {
    base: &'a Catalog,
    derived: Catalog,
    stages: Vec<Stage>,
    taken_tables: HashSet<String>,
    taken_hts: HashSet<String>,
    /// Union of the export columns every probe site of a shared build
    /// structure needs (collected by the first lowering pass), so the one
    /// shared hash table carries every payload any site pulls from it.
    export_unions: HashMap<BuildKey, BTreeSet<String>>,
    /// Builds already emitted this pass: later structurally identical
    /// sites reuse the hash table instead of emitting a duplicate stage.
    built: HashMap<BuildKey, (String, Vec<ColInfo>)>,
    /// Cross-query structural fingerprint per emitted hash table (see
    /// [`LoweredQuery::build_fingerprints`]).
    fingerprints: HashMap<String, String>,
    /// True during the collection pass (stages are discarded; only
    /// `export_unions` survives).
    collecting: bool,
}

impl<'a> Lowering<'a> {
    fn new(base: &'a Catalog) -> Self {
        Lowering {
            base,
            derived: base.clone(),
            stages: Vec::new(),
            taken_tables: HashSet::new(),
            taken_hts: HashSet::new(),
            export_unions: HashMap::new(),
            built: HashMap::new(),
            fingerprints: HashMap::new(),
            collecting: false,
        }
    }

    /// The real (second) lowering pass, seeded with the export unions the
    /// collection pass gathered.
    fn with_export_unions(
        base: &'a Catalog,
        export_unions: HashMap<BuildKey, BTreeSet<String>>,
    ) -> Self {
        Lowering { export_unions, ..Lowering::new(base) }
    }

    /// Pass 1: lower the whole chain once, discarding the plan, to learn —
    /// per shared build structure — the union of export columns its probe
    /// sites need. Cheap (lowering touches no data) and keeps the payload
    /// derivation logic in one place.
    fn collect_export_unions(
        base: &'a Catalog,
        q: &Query,
        root: &str,
        export: &[String],
    ) -> Result<HashMap<BuildKey, BTreeSet<String>>, PlanError> {
        let mut ctx = Lowering::new(base);
        ctx.collecting = true;
        ctx.lower_chain(q, root, export)?;
        Ok(ctx.export_unions)
    }

    /// Claim a unique scan alias derived from `want` (must not shadow a
    /// base table either).
    fn unique_table(&mut self, want: &str) -> String {
        let mut name = want.to_string();
        let mut n = 1;
        while self.taken_tables.contains(&name) || self.base.get(&name).is_some() {
            n += 1;
            name = format!("{want}#{n}");
        }
        self.taken_tables.insert(name.clone());
        name
    }

    /// Claim a unique hash-table name derived from `want`. Hash tables
    /// live in the run's table store, a separate namespace from the
    /// catalog.
    fn unique_ht(&mut self, want: &str) -> String {
        let mut name = want.to_string();
        let mut n = 1;
        while self.taken_hts.contains(&name) {
            n += 1;
            name = format!("{want}#{n}");
        }
        self.taken_hts.insert(name.clone());
        name
    }

    /// Claim a hash-table name for a lowered build side, resolve the key
    /// column the table is built over, and emit the build stage. Returns
    /// the name and output layout probe sites address payloads against.
    fn push_build(
        &mut self,
        build: &Query,
        build_key: &str,
        root: &str,
        pipeline: Pipeline,
        build_cols: &[ColInfo],
    ) -> Result<(String, Vec<ColInfo>), PlanError> {
        let key_col = build_cols.iter().position(|c| c.name == build_key).ok_or_else(|| {
            PlanError::UnknownColumn {
                column: build_key.to_string(),
                context: format!("build side {}", build.name),
            }
        })?;
        let ht = self.unique_ht(&format!("{root}.{}", build.name));
        self.stages.push(Stage::Build { name: ht.clone(), key_col, pipeline });
        Ok((ht, build_cols.to_vec()))
    }

    /// Lower one linear chain (the stream chain or a build side).
    ///
    /// `export` names the columns the chain's output must retain for its
    /// consumer (payloads + join key for build sides; `keep` columns for
    /// materialisation). Emits any build stages the chain's joins need and
    /// returns the chain's pipeline plus its output column layout.
    fn lower_chain(
        &mut self,
        q: &Query,
        root: &str,
        export: &[String],
    ) -> Result<(Pipeline, Vec<ColInfo>), PlanError> {
        let source = q.source()?;
        let table = lookup(self.base, source)?;

        // ---- Projection pushdown: the scan reads exactly the base-table
        // columns this chain (or its consumer) references.
        let mut wanted: Vec<String> = q.names_used();
        wanted.extend(export.iter().cloned());
        let projected: Vec<&str> = table
            .schema
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .filter(|n| wanted.iter().any(|w| w == n))
            .collect();
        let scan_source = if projected.len() == table.schema.len() {
            source.to_string()
        } else {
            let alias = self.unique_table(&format!("{root}.{source}"));
            let view =
                table.try_project(&projected).expect("projected names come from this schema");
            self.derived.register_as(alias.clone(), view);
            alias
        };
        let mut cols: Vec<ColInfo> = projected
            .iter()
            .map(|n| ColInfo {
                name: n.to_string(),
                dtype: table.schema.dtype_of(n).expect("projected names come from this schema"),
                origin: source.to_string(),
            })
            .collect();

        let mut pipeline = Pipeline::scan(scan_source);
        for (i, op) in q.ops.iter().enumerate() {
            match op {
                LogicalOp::Filter(pred) => {
                    let context = format!("filter over {source}");
                    let kind = infer_kind(pred, &cols, &context)?;
                    if kind != Kind::Bool {
                        return Err(PlanError::TypeMismatch {
                            context,
                            expected: "boolean predicate",
                            found: kind.describe().to_string(),
                        });
                    }
                    let scope = Scope { cols: &cols, catalog: self.base };
                    let resolved =
                        pred.resolve(&scope).map_err(|e| map_resolve(e, &context))?;
                    pipeline = pipeline.filter(resolved);
                }
                LogicalOp::Select(items) => {
                    if items.is_empty() {
                        return Err(PlanError::EmptySelect { query: q.name.clone() });
                    }
                    let context = format!("select over {source}");
                    let mut exprs = Vec::with_capacity(items.len());
                    let mut out_cols = Vec::with_capacity(items.len());
                    for (name, e) in items {
                        let kind = infer_kind(e, &cols, &context)?;
                        if kind != Kind::Num {
                            return Err(PlanError::TypeMismatch {
                                context,
                                expected: "numeric projection expression",
                                found: kind.describe().to_string(),
                            });
                        }
                        let scope = Scope { cols: &cols, catalog: self.base };
                        exprs.push(e.resolve(&scope).map_err(|e| map_resolve(e, &context))?);
                        // Projection outputs are materialised as f64; the
                        // origin is only consulted for dictionary lookups,
                        // which f64 columns never trigger.
                        out_cols.push(ColInfo {
                            name: name.clone(),
                            dtype: DataType::F64,
                            origin: source.to_string(),
                        });
                    }
                    pipeline = pipeline.project(exprs);
                    cols = out_cols;
                }
                LogicalOp::Join(j) => {
                    if j.build.aggregates() {
                        return Err(PlanError::BuildWithAggregate {
                            stage: j.build.name.clone(),
                        });
                    }
                    // What later ops (and our own consumer) still need but
                    // cannot see yet — candidates for this join's payload.
                    // Track each name's first point of use: a name only
                    // needed *after* a later join that can also provide it
                    // is deferred to that join, so payloads ride the
                    // latest (cheapest) hash table that can carry them —
                    // e.g. Q5's n_name rides the small supplier build, not
                    // the whole orders→customers→nations chain.
                    let rest = &q.ops[i + 1..];
                    let mut downstream: Vec<(String, usize)> = Vec::new();
                    for (pos, later) in rest.iter().enumerate() {
                        match later {
                            LogicalOp::Filter(e) => downstream
                                .extend(e.columns_used().into_iter().map(|n| (n, pos))),
                            LogicalOp::Select(items) => downstream.extend(
                                items
                                    .iter()
                                    .flat_map(|(_, e)| e.columns_used())
                                    .map(|n| (n, pos)),
                            ),
                            LogicalOp::Join(later_join) => {
                                downstream.push((later_join.probe_key.clone(), pos));
                            }
                            LogicalOp::Stateful(s) => {
                                downstream
                                    .extend(s.input_names().into_iter().map(|n| (n, pos)));
                            }
                        }
                    }
                    let end = rest.len();
                    downstream.extend(q.group_by.iter().map(|n| (n.clone(), end)));
                    for (_, e) in &q.aggs {
                        downstream.extend(e.columns_used().into_iter().map(|n| (n, end)));
                    }
                    downstream.extend(export.iter().map(|n| (n.clone(), end)));
                    let available = j.build.available_names(self.base)?;
                    let mut payload: Vec<String> = Vec::new();
                    'candidates: for (name, first_use) in &downstream {
                        if cols.iter().any(|c| c.name == *name)
                            || !available.contains(name)
                            || payload.contains(name)
                        {
                            continue;
                        }
                        for later in rest.iter().take(*first_use) {
                            if let LogicalOp::Join(later_join) = later {
                                if later_join.build.available_names(self.base)?.contains(name) {
                                    // A later join provides it before its
                                    // first use; let that join carry it.
                                    continue 'candidates;
                                }
                            }
                        }
                        payload.push(name.clone());
                    }

                    // Lower the build side, exporting payloads + its key —
                    // or reuse a structurally identical build another site
                    // already lowered (the memo; Q5's shared ASIA-nations
                    // chain builds once).
                    let mut build_export = payload.clone();
                    if !build_export.contains(&j.build_key) {
                        build_export.push(j.build_key.clone());
                    }
                    let mut skey = String::new();
                    j.build.structural_key(&mut skey);
                    let memo_key: BuildKey = (skey, j.build_key.clone());
                    // Seed of the cross-query fingerprint: structure + key.
                    // The exported column layout joins it below, once the
                    // build side is lowered.
                    let fp_base = format!("{}#key={}", memo_key.0, memo_key.1);
                    let (ht, build_cols) = if self.collecting {
                        self.export_unions
                            .entry(memo_key)
                            .or_default()
                            .extend(build_export.iter().cloned());
                        let (build_pipeline, build_cols) =
                            self.lower_chain(&j.build, root, &build_export)?;
                        self.push_build(
                            &j.build,
                            &j.build_key,
                            root,
                            build_pipeline,
                            &build_cols,
                        )?
                    } else if let Some((ht, build_cols)) = self.built.get(&memo_key) {
                        (ht.clone(), build_cols.clone())
                    } else {
                        // First site of this structure: lower with the
                        // union of every site's exports so the shared
                        // table carries all of their payloads.
                        let exports: Vec<String> = self
                            .export_unions
                            .get(&memo_key)
                            .map(|s| s.iter().cloned().collect())
                            .unwrap_or_else(|| build_export.clone());
                        let (build_pipeline, build_cols) =
                            self.lower_chain(&j.build, root, &exports)?;
                        let out = self.push_build(
                            &j.build,
                            &j.build_key,
                            root,
                            build_pipeline,
                            &build_cols,
                        )?;
                        self.built.insert(memo_key, out.clone());
                        out
                    };
                    if !self.collecting && !self.fingerprints.contains_key(&ht) {
                        use std::fmt::Write as _;
                        // The layout term: payload columns (names + types,
                        // in physical order) determine the built batch and
                        // the payload indices probe sites address, so two
                        // queries share a cached table only when their
                        // export unions coincide exactly.
                        let mut fp = fp_base;
                        let _ = write!(fp, "#cols=[");
                        for c in &build_cols {
                            let _ = write!(fp, "{}:{:?};", c.name, c.dtype);
                        }
                        let _ = write!(fp, "]");
                        self.fingerprints.insert(ht.clone(), fp);
                    }
                    let key_col = build_cols
                        .iter()
                        .position(|c| c.name == j.build_key)
                        .ok_or_else(|| PlanError::UnknownColumn {
                            column: j.build_key.clone(),
                            context: format!("build side {}", j.build.name),
                        })?;
                    check_key_type(&build_cols[key_col], &j.build.name)?;

                    let probe_col = cols
                        .iter()
                        .position(|c| c.name == j.probe_key)
                        .ok_or_else(|| PlanError::UnknownColumn {
                            column: j.probe_key.clone(),
                            context: format!("probe side of join with {}", j.build.name),
                        })?;
                    check_key_type(&cols[probe_col], source)?;

                    // Payload indices into the build output, ascending so
                    // the probe appends them in a stable physical order.
                    let mut payload_cols: Vec<usize> = payload
                        .iter()
                        .map(|n| {
                            build_cols.iter().position(|c| c.name == *n).ok_or_else(|| {
                                PlanError::UnknownColumn {
                                    column: n.clone(),
                                    context: format!("build side {}", j.build.name),
                                }
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    payload_cols.sort_unstable();

                    for &b in &payload_cols {
                        cols.push(build_cols[b].clone());
                    }
                    pipeline = pipeline.join(ht, probe_col, payload_cols, j.algo);
                }
                LogicalOp::Stateful(s) => {
                    let context = format!("stateful aggregate over {source}");
                    let find = |name: &str| -> Result<usize, PlanError> {
                        cols.iter().position(|c| c.name == name).ok_or_else(|| {
                            PlanError::UnknownColumn {
                                column: name.to_string(),
                                context: context.clone(),
                            }
                        })
                    };
                    let user_col = find(&s.user)?;
                    if !matches!(cols[user_col].dtype, DataType::I32 | DataType::I64) {
                        return Err(PlanError::TypeMismatch {
                            context,
                            expected: "integer user column",
                            found: format!("{:?}", cols[user_col].dtype),
                        });
                    }
                    let ts_col = find(&s.ts)?;
                    if !matches!(
                        cols[ts_col].dtype,
                        DataType::I32 | DataType::I64 | DataType::Date
                    ) {
                        return Err(PlanError::TypeMismatch {
                            context,
                            expected: "integer or date timestamp column",
                            found: format!("{:?}", cols[ts_col].dtype),
                        });
                    }
                    // Resolve an event-name literal through the event
                    // column's base-table dictionary. Absent names map to
                    // the -1 sentinel no dictionary code equals, so they
                    // match no rows — same semantics as string filters.
                    let event_col = |name: &str| -> Result<usize, PlanError> {
                        let i = find(name)?;
                        if cols[i].dtype != DataType::Str {
                            return Err(PlanError::TypeMismatch {
                                context: context.clone(),
                                expected: "string event column",
                                found: format!("{:?}", cols[i].dtype),
                            });
                        }
                        Ok(i)
                    };
                    let base = self.base;
                    let code = |i: usize, value: &str| -> i32 {
                        let info: &ColInfo = &cols[i];
                        base.get(&info.origin)
                            .and_then(|t| t.column(&info.name).dict())
                            .and_then(|d| d.code_of(value))
                            .map_or(-1, |c| c as i32)
                    };
                    let agg = match &s.kind {
                        StatefulKind::Sessionize { gap } => {
                            StatefulAgg::Sessionize { user_col, ts_col, gap: *gap }
                        }
                        StatefulKind::WindowFunnel { event, steps, window } => {
                            let ev = event_col(event)?;
                            StatefulAgg::WindowFunnel {
                                user_col,
                                ts_col,
                                event_col: ev,
                                steps: steps.iter().map(|n| code(ev, n)).collect(),
                                window: *window,
                            }
                        }
                        StatefulKind::Retention { event, cohort, returns, period } => {
                            let ev = event_col(event)?;
                            StatefulAgg::Retention {
                                user_col,
                                ts_col,
                                event_col: ev,
                                cohort_event: code(ev, cohort),
                                return_events: returns.iter().map(|n| code(ev, n)).collect(),
                                period: *period,
                            }
                        }
                        StatefulKind::SequenceMatch { event, pattern } => {
                            let ev = event_col(event)?;
                            StatefulAgg::SequenceMatch {
                                user_col,
                                ts_col,
                                event_col: ev,
                                pattern: pattern.iter().map(|n| code(ev, n)).collect(),
                            }
                        }
                    };
                    pipeline = pipeline.stateful(agg);
                    // Output layout: one all-i64 row per user, user first.
                    // Origin is only consulted for dictionary lookups,
                    // which i64 columns never trigger.
                    cols = s
                        .output_names()
                        .into_iter()
                        .map(|name| ColInfo {
                            name,
                            dtype: DataType::I64,
                            origin: source.to_string(),
                        })
                        .collect();
                }
            }
        }

        // ---- Exports must all be visible in the chain output.
        for name in export {
            if cols.iter().all(|c| c.name != *name) {
                return Err(PlanError::UnknownColumn {
                    column: name.clone(),
                    context: format!("output of {}", q.name),
                });
            }
        }

        // ---- Terminal aggregation.
        if q.aggregates() {
            if q.group_by.len() > 4 {
                return Err(PlanError::TooManyGroupColumns { got: q.group_by.len(), max: 4 });
            }
            let mut group_idx = Vec::with_capacity(q.group_by.len());
            for g in &q.group_by {
                let context = format!("group-by of {}", q.name);
                let i = cols.iter().position(|c| c.name == *g).ok_or_else(|| {
                    PlanError::UnknownColumn { column: g.clone(), context: context.clone() }
                })?;
                if cols[i].dtype == DataType::F64 {
                    return Err(PlanError::TypeMismatch {
                        context,
                        expected: "integer, date or string group key",
                        found: "f64".to_string(),
                    });
                }
                group_idx.push(i);
            }
            let mut aggs = Vec::with_capacity(q.aggs.len());
            for (func, e) in &q.aggs {
                let context = format!("aggregate of {}", q.name);
                if *func != AggFunc::Count {
                    let kind = infer_kind(e, &cols, &context)?;
                    if kind != Kind::Num {
                        return Err(PlanError::TypeMismatch {
                            context,
                            expected: "numeric aggregate argument",
                            found: kind.describe().to_string(),
                        });
                    }
                }
                let scope = Scope { cols: &cols, catalog: self.base };
                aggs.push((*func, e.resolve(&scope).map_err(|e| map_resolve(e, &context))?));
            }
            let spec = if group_idx.is_empty() {
                AggSpec::ungrouped(aggs)
            } else {
                AggSpec::grouped(group_idx, aggs)
            };
            pipeline = pipeline.aggregate(spec);
        }

        Ok((pipeline, cols))
    }
}

fn check_key_type(col: &ColInfo, side: &str) -> Result<(), PlanError> {
    match col.dtype {
        DataType::I32 | DataType::Date => Ok(()),
        other => Err(PlanError::TypeMismatch {
            context: format!("join key {} of {side}", col.name),
            expected: "i32-typed key column",
            found: format!("{other:?}"),
        }),
    }
}

fn map_resolve(e: ResolveError, context: &str) -> PlanError {
    match e {
        ResolveError::UnknownColumn { column } => {
            PlanError::UnknownColumn { column, context: context.to_string() }
        }
        ResolveError::StringLiteralContext { literal }
        | ResolveError::StringLiteralType { literal, .. } => {
            PlanError::StringComparedToNonString { literal, context: context.to_string() }
        }
    }
}

/// Infer an expression's result kind against the visible columns,
/// rejecting ill-typed shapes (arithmetic on strings/booleans, ordering
/// comparisons on strings, logic over non-booleans).
fn infer_kind(e: &NamedExpr, cols: &[ColInfo], context: &str) -> Result<Kind, PlanError> {
    let of = |name: &str| -> Result<Kind, PlanError> {
        let info = cols.iter().find(|c| c.name == name).ok_or_else(|| {
            PlanError::UnknownColumn { column: name.to_string(), context: context.to_string() }
        })?;
        Ok(match info.dtype {
            DataType::Str => Kind::Str,
            _ => Kind::Num,
        })
    };
    let mismatch = |expected: &'static str, found: Kind| PlanError::TypeMismatch {
        context: context.to_string(),
        expected,
        found: found.describe().to_string(),
    };
    Ok(match e {
        NamedExpr::Col(n) => of(n)?,
        NamedExpr::LitI32(_) | NamedExpr::LitI64(_) | NamedExpr::LitF64(_) => Kind::Num,
        NamedExpr::LitStr(_) => Kind::Str,
        NamedExpr::Add(a, b) | NamedExpr::Sub(a, b) | NamedExpr::Mul(a, b) => {
            for side in [a, b] {
                let k = infer_kind(side, cols, context)?;
                if k != Kind::Num {
                    return Err(mismatch("numeric operand", k));
                }
            }
            Kind::Num
        }
        NamedExpr::Eq(a, b) => {
            let (ka, kb) = (infer_kind(a, cols, context)?, infer_kind(b, cols, context)?);
            match (ka, kb) {
                (Kind::Num, Kind::Num) => Kind::Bool,
                // String equality is only meaningful against a literal
                // (resolved through the column's own dictionary). Two
                // string *columns* carry independent dictionaries whose
                // codes are not comparable — lowering that would silently
                // return wrong rows, so it is a typed error.
                (Kind::Str, Kind::Str) => {
                    let literal_operand = matches!(**a, NamedExpr::LitStr(_))
                        || matches!(**b, NamedExpr::LitStr(_));
                    if !literal_operand {
                        return Err(PlanError::TypeMismatch {
                            context: context.to_string(),
                            expected: "a string literal operand (column dictionaries are not \
                                       mutually comparable)",
                            found: "two string columns".to_string(),
                        });
                    }
                    Kind::Bool
                }
                (Kind::Bool, _) => return Err(mismatch("comparable operand", Kind::Bool)),
                (_, k) => return Err(mismatch("matching comparison operand", k)),
            }
        }
        NamedExpr::Lt(a, b)
        | NamedExpr::Le(a, b)
        | NamedExpr::Gt(a, b)
        | NamedExpr::Ge(a, b) => {
            for side in [a, b] {
                let k = infer_kind(side, cols, context)?;
                if k != Kind::Num {
                    return Err(mismatch("numeric comparison operand", k));
                }
            }
            Kind::Bool
        }
        NamedExpr::And(a, b) | NamedExpr::Or(a, b) => {
            for side in [a, b] {
                let k = infer_kind(side, cols, context)?;
                if k != Kind::Bool {
                    return Err(mismatch("boolean operand", k));
                }
            }
            Kind::Bool
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_ops::{col, lit};
    use hape_storage::datagen::gen_key_fk_table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_as("fact", gen_key_fk_table(1 << 10, 1 << 10, 1));
        c.register_as("dim", gen_key_fk_table(1 << 8, 1 << 8, 2));
        c
    }

    fn count() -> Vec<(AggFunc, NamedExpr)> {
        vec![(AggFunc::Count, col("k"))]
    }

    #[test]
    fn lowers_scan_filter_agg() {
        let q = Query::new("q")
            .from_table("fact")
            .filter(col("k").lt(lit(100)))
            .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
        let lowered = q.lower(&catalog()).unwrap();
        assert_eq!(lowered.plan.stages.len(), 1);
        // Full-width scan: no alias registered.
        assert!(lowered.catalog.get("q.fact").is_none());
    }

    #[test]
    fn projection_pushdown_registers_view() {
        let q = Query::new("q")
            .from_table("fact")
            .filter(col("k").lt(lit(100)))
            .agg(vec![(AggFunc::Count, col("k"))]);
        let lowered = q.lower(&catalog()).unwrap();
        // Only `k` is referenced; the scan view drops `v`.
        let view = lowered.catalog.get("q.fact").expect("projected view");
        assert_eq!(view.schema.len(), 1);
        assert_eq!(view.schema.fields[0].name, "k");
        match &lowered.plan.stages[0] {
            Stage::Stream { pipeline } => assert_eq!(pipeline.source, "q.fact"),
            s => panic!("unexpected stage {s:?}"),
        }
    }

    #[test]
    fn join_lowers_to_build_and_probe_with_payload() {
        let q = Query::new("q")
            .from_table("fact")
            .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
        let lowered = q.lower(&catalog()).unwrap();
        assert_eq!(lowered.plan.stages.len(), 2);
        match &lowered.plan.stages[0] {
            Stage::Build { name, key_col, .. } => {
                assert_eq!(name, "q.dim");
                assert_eq!(*key_col, 0);
            }
            s => panic!("unexpected stage {s:?}"),
        }
        // `v` resolves from the probe side (first provider wins), so the
        // join carries no payload at all.
        match &lowered.plan.stages[1] {
            Stage::Stream { pipeline } => match &pipeline.ops[0] {
                crate::plan::PipeOp::JoinProbe { build_payload_cols, .. } => {
                    assert!(build_payload_cols.is_empty());
                }
                op => panic!("unexpected op {op:?}"),
            },
            s => panic!("unexpected stage {s:?}"),
        }
    }

    #[test]
    fn select_lowers_to_project_and_replaces_columns() {
        let q = Query::new("q")
            .from_table("fact")
            .select(vec![("vk", col("v").mul(col("k"))), ("k2", col("k").add(lit(1)))])
            .agg(vec![(AggFunc::Sum, col("vk")), (AggFunc::Sum, col("k2"))]);
        let lowered = q.lower(&catalog()).unwrap();
        let Stage::Stream { pipeline } = &lowered.plan.stages[0] else {
            panic!("stream stage");
        };
        assert!(
            matches!(&pipeline.ops[0], crate::plan::PipeOp::Project(exprs) if exprs.len() == 2)
        );
    }

    #[test]
    fn select_output_shadows_dropped_columns() {
        // `v` is not re-selected, so referencing it downstream is a typed
        // error.
        let q = Query::new("q")
            .from_table("fact")
            .select(vec![("vk", col("v").mul(col("k")))])
            .agg(vec![(AggFunc::Sum, col("v"))]);
        match q.lower(&catalog()).unwrap_err() {
            PlanError::UnknownColumn { column, .. } => assert_eq!(column, "v"),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn select_type_checks() {
        // A boolean expression is not a projection.
        let q = Query::new("q")
            .from_table("fact")
            .select(vec![("b", col("k").lt(lit(1)))])
            .agg(vec![(AggFunc::Sum, col("b"))]);
        match q.lower(&catalog()).unwrap_err() {
            PlanError::TypeMismatch { expected, .. } => {
                assert_eq!(expected, "numeric projection expression");
            }
            e => panic!("unexpected error {e}"),
        }
        // A select output is f64-typed: joining on it is rejected.
        let q = Query::new("q")
            .from_table("fact")
            .select(vec![("k2", col("k").add(lit(0)))])
            .join(Query::scan("dim"), "k2", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k2"))]);
        assert!(matches!(q.lower(&catalog()).unwrap_err(), PlanError::TypeMismatch { .. }));
        // An empty select is its own typed error.
        let q = Query::new("q")
            .from_table("fact")
            .select(Vec::<(&str, hape_ops::NamedExpr)>::new())
            .agg(count());
        assert_eq!(
            q.lower(&catalog()).unwrap_err(),
            PlanError::EmptySelect { query: "q".into() }
        );
    }

    #[test]
    fn unknown_table_reported() {
        let q = Query::new("q").from_table("ghost").agg(count());
        assert_eq!(
            q.lower(&catalog()).unwrap_err(),
            PlanError::UnknownTable { table: "ghost".into() }
        );
    }

    #[test]
    fn unknown_column_reported() {
        let q = Query::new("q").from_table("fact").filter(col("nope").lt(lit(1))).agg(count());
        match q.lower(&catalog()).unwrap_err() {
            PlanError::UnknownColumn { column, .. } => assert_eq!(column, "nope"),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn missing_aggregate_reported() {
        let q = Query::new("q").from_table("fact");
        assert_eq!(
            q.lower(&catalog()).unwrap_err(),
            PlanError::StreamWithoutAggregate { name: "q".into() }
        );
    }

    #[test]
    fn aggregating_build_side_reported() {
        let build = Query::scan("dim").agg(vec![(AggFunc::Count, col("k"))]);
        let q = Query::new("q")
            .from_table("fact")
            .join(build, "k", "k", JoinAlgo::NonPartitioned)
            .agg(count());
        assert_eq!(
            q.lower(&catalog()).unwrap_err(),
            PlanError::BuildWithAggregate { stage: "dim".into() }
        );
    }

    #[test]
    fn missing_scan_reported() {
        let q = Query::new("q").agg(count());
        assert_eq!(
            q.lower(&catalog()).unwrap_err(),
            PlanError::MissingScan { query: "q".into() }
        );
    }

    #[test]
    fn filter_must_be_boolean() {
        let q = Query::new("q").from_table("fact").filter(col("k").add(lit(1))).agg(count());
        match q.lower(&catalog()).unwrap_err() {
            PlanError::TypeMismatch { expected, found, .. } => {
                assert_eq!(expected, "boolean predicate");
                assert_eq!(found, "numeric");
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn identical_build_sides_are_memoised() {
        // The same dim chain joined twice on the same key: one build
        // stage, probed twice.
        let dim = Query::scan("dim").filter(col("k").lt(lit(100)));
        let q = Query::new("q")
            .from_table("fact")
            .join(dim.clone(), "k", "k", JoinAlgo::NonPartitioned)
            .join(dim, "k", "k", JoinAlgo::NonPartitioned)
            .agg(count());
        let lowered = q.lower(&catalog()).unwrap();
        let builds: Vec<_> =
            lowered.plan.stages.iter().filter(|s| matches!(s, Stage::Build { .. })).collect();
        assert_eq!(builds.len(), 1, "shared structure must build once");
        let Stage::Stream { pipeline } = lowered.plan.stages.last().unwrap() else {
            panic!("stream last");
        };
        assert_eq!(pipeline.tables_probed(), vec!["q.dim", "q.dim"]);
    }

    #[test]
    fn different_keys_or_structure_are_not_memoised() {
        // Same scan, different build key: two distinct hash tables.
        let q = Query::new("q")
            .from_table("fact")
            .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
            .join(Query::scan("dim"), "v", "v", JoinAlgo::NonPartitioned)
            .agg(count());
        let lowered = q.lower(&catalog()).unwrap();
        let builds =
            lowered.plan.stages.iter().filter(|s| matches!(s, Stage::Build { .. })).count();
        assert_eq!(builds, 2);
        // Different filter constants: structurally distinct, two builds.
        let q = Query::new("q")
            .from_table("fact")
            .join(
                Query::scan("dim").filter(col("k").lt(lit(10))),
                "k",
                "k",
                JoinAlgo::NonPartitioned,
            )
            .join(
                Query::scan("dim").filter(col("k").lt(lit(20))),
                "k",
                "k",
                JoinAlgo::NonPartitioned,
            )
            .agg(count());
        let lowered = q.lower(&catalog()).unwrap();
        let builds =
            lowered.plan.stages.iter().filter(|s| matches!(s, Stage::Build { .. })).count();
        assert_eq!(builds, 2);
    }

    #[test]
    fn materialize_exposes_named_output() {
        let q = Query::new("q").from_table("fact").join(
            Query::scan("dim"),
            "k",
            "k",
            JoinAlgo::NonPartitioned,
        );
        let lowered = q.lower_materialize(&catalog(), &["k", "v"]).unwrap();
        assert_eq!(lowered.builds.len(), 1);
        assert_eq!(lowered.index_of("k").unwrap(), 0);
        assert_eq!(lowered.index_of("v").unwrap(), 1);
        assert!(lowered.index_of("nope").is_err());
    }
}
