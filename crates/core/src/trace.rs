//! The execution tracing + metrics plane: structured spans, counters and
//! predicted-vs-observed cost records for every layer of the engine.
//!
//! A [`TraceRecorder`] is handed to the engine via
//! [`ExecConfig::with_trace`](crate::engine::ExecConfig::with_trace) (or to
//! the serving layer via
//! [`SessionServer::with_trace`](crate::serve::SessionServer::with_trace)).
//! While a query runs, the instrumented layers record
//!
//! * **spans** — query → stage → packet, the co-processing phases
//!   (prefix, GPU lanes, fold), build-cache lookups and admission rounds —
//!   each stamped with *both* clocks: the deterministic simulated interval
//!   ([`hape_sim::SimTime`]) and the wall-clock interval actually spent
//!   computing it (nanoseconds relative to the recorder's origin
//!   [`std::time::Instant`]);
//! * **counters** — rows in/out per operator kind, host-to-device packet
//!   and broadcast bytes, cache hits/misses, admission waits, packets per
//!   worker and per device class;
//! * **predicted-vs-observed records** — every stage span of an
//!   optimizer-placed ([`Placement::Auto`](crate::engine::Placement)) plan
//!   carries the optimizer's chosen [`StageCost`] decomposition next to
//!   the observed simulated elapsed time and row counts, making estimate
//!   error queryable per stage (the feedback hook of ROADMAP item 4).
//!
//! Recording is strictly an *observer*: the recorder is never consulted
//! for a decision, wall timestamps never feed back into simulated state,
//! and per-packet spans are recorded on the sequential control plane in
//! packet order — so results and simulated makespans stay bit-identical
//! to untraced runs at any data-plane thread count
//! (`tests/runtime_determinism.rs` asserts this).
//!
//! Two exporters turn a [`Trace`] snapshot into artifacts:
//! [`Trace::to_chrome_json`] (the Chrome tracing event format, sim time
//! and wall time as separate process lanes, workers as threads — load it
//! in `chrome://tracing` or Perfetto) and [`Trace::render_profile`] (a
//! deterministic plain-text per-stage table with est/actual ratios,
//! rendered by [`Session::profile`](crate::session::Session::profile) and
//! `figures --profile`).
//!
//! ```
//! use hape_core::trace::{SpanKind, TraceRecorder};
//! use hape_core::{ExecConfig, JoinAlgo, Placement, Query, Session};
//! use hape_ops::{col, AggFunc};
//! use hape_sim::topology::Server;
//! use hape_storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let query = session
//!     .query("q")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//!
//! let recorder = TraceRecorder::new();
//! let cfg = ExecConfig::new(Placement::Auto).with_trace(recorder.clone());
//! session.execute_with(&query, &cfg).unwrap();
//!
//! let trace = recorder.snapshot();
//! assert!(trace.spans.iter().any(|s| s.kind == SpanKind::Packet));
//! let json = trace.to_chrome_json();
//! assert!(json.starts_with('['));
//! let profile = trace.render_profile();
//! assert!(profile.contains("est"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hape_sim::SimTime;

use crate::cost::StageCost;

/// What a [`Span`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole query (lower → … → run), from sim zero to its makespan.
    Query,
    /// One placed stage (build / stream / co-process) of a query.
    Stage,
    /// One routed packet on the worker it committed to.
    Packet,
    /// A sub-stage phase: the co-processing prefix, GPU lanes or fold.
    Phase,
    /// A build-cache event: a lookup, or a build served from the cache
    /// (zero simulated duration).
    Cache,
    /// One scheduler admission round of the serving layer (wall only).
    Admission,
    /// The optimizer choosing a stage's device subset (carries the chosen
    /// estimate; zero simulated duration).
    Optimize,
    /// A fault-plane event: an injection firing, a priced transfer retry,
    /// or a mid-query re-placement on the surviving fleet.
    Fault,
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpanKind::Query => "query",
            SpanKind::Stage => "stage",
            SpanKind::Packet => "packet",
            SpanKind::Phase => "phase",
            SpanKind::Cache => "cache",
            SpanKind::Admission => "admission",
            SpanKind::Optimize => "optimize",
            SpanKind::Fault => "fault",
        })
    }
}

/// One recorded interval, stamped with both clocks.
#[derive(Debug, Clone)]
pub struct Span {
    /// What the interval describes.
    pub kind: SpanKind,
    /// Human-readable name (`"build q5.region"`, `"packet 17"`, …).
    pub name: String,
    /// The owning query's name (empty for server-level spans).
    pub query: String,
    /// Placed-stage index within the query, when the span belongs to one.
    pub stage: Option<usize>,
    /// The lane the span ran on: a worker (`"cpu0.3"`, `"gpu1"`) for
    /// packets, a pool thread (`"pool0"`) attribution for wall time.
    pub lane: Option<String>,
    /// Simulated interval start (query-local clock).
    pub sim_start: SimTime,
    /// Simulated interval end.
    pub sim_end: SimTime,
    /// Wall-clock start, nanoseconds since the recorder's origin.
    pub wall_start_ns: u64,
    /// Wall-clock end, nanoseconds since the recorder's origin.
    pub wall_end_ns: u64,
    /// Rows entering the spanned work (0 when not meaningful).
    pub rows_in: u64,
    /// Rows leaving the spanned work.
    pub rows_out: u64,
    /// The data-plane pool thread that computed the wall interval (packet
    /// spans). Wall-side metadata only — which thread ran a packet is
    /// scheduling-dependent and carries no simulated meaning.
    pub pool_thread: Option<usize>,
    /// The optimizer's chosen estimate, on stage/optimize spans of
    /// [`Placement::Auto`](crate::engine::Placement) plans — the
    /// *predicted* side of the predicted-vs-observed record.
    pub estimate: Option<StageCost>,
}

impl Span {
    /// A span with the given identity and every measurement zeroed; chain
    /// the `at_*`/`rows`/`lane`/`stage`/`estimate` builders to fill it in.
    pub fn new(kind: SpanKind, name: impl Into<String>, query: impl Into<String>) -> Self {
        Span {
            kind,
            name: name.into(),
            query: query.into(),
            stage: None,
            lane: None,
            sim_start: SimTime::ZERO,
            sim_end: SimTime::ZERO,
            wall_start_ns: 0,
            wall_end_ns: 0,
            rows_in: 0,
            rows_out: 0,
            pool_thread: None,
            estimate: None,
        }
    }

    /// Set the simulated interval.
    pub fn at_sim(mut self, start: SimTime, end: SimTime) -> Self {
        self.sim_start = start;
        self.sim_end = end;
        self
    }

    /// Set the wall interval (origin-relative nanoseconds).
    pub fn at_wall(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.wall_start_ns = start_ns;
        self.wall_end_ns = end_ns;
        self
    }

    /// Set row counts.
    pub fn rows(mut self, rows_in: u64, rows_out: u64) -> Self {
        self.rows_in = rows_in;
        self.rows_out = rows_out;
        self
    }

    /// Set the lane label.
    pub fn lane(mut self, lane: impl Into<String>) -> Self {
        self.lane = Some(lane.into());
        self
    }

    /// Set the placed-stage index.
    pub fn stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Set the data-plane pool thread that computed the wall interval.
    pub fn pool_thread(mut self, thread: usize) -> Self {
        self.pool_thread = Some(thread);
        self
    }

    /// Attach the optimizer's chosen estimate.
    pub fn estimate(mut self, cost: StageCost) -> Self {
        self.estimate = Some(cost);
        self
    }

    /// Simulated elapsed time of the span.
    pub fn sim_elapsed(&self) -> SimTime {
        self.sim_end - self.sim_start
    }

    /// Wall elapsed nanoseconds of the span.
    pub fn wall_elapsed_ns(&self) -> u64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns)
    }

    /// True when `other`'s simulated interval lies within this span's.
    pub fn sim_contains(&self, other: &Span) -> bool {
        self.sim_start <= other.sim_start && other.sim_end <= self.sim_end
    }
}

/// A snapshot of everything recorded so far: spans in record order plus
/// the aggregated counters (sorted by name for deterministic export).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Recorded spans, in the order the control plane recorded them.
    pub spans: Vec<Span>,
    /// Aggregated named counters.
    pub counters: BTreeMap<String, u64>,
}

struct Shared {
    origin: Instant,
    state: Mutex<Trace>,
}

/// A thread-safe handle that collects [`Span`]s and counters while the
/// engine runs. Cloning shares the underlying buffer, so one recorder can
/// observe a whole serving batch (or a sweep of solo runs) and export a
/// single combined [`Trace`].
///
/// The default recorder is **off**: every recording call is a no-op and
/// the instrumented layers skip even the bookkeeping that would produce
/// the values (`Default` is what an un-configured
/// [`ExecConfig`](crate::engine::ExecConfig) carries).
#[derive(Clone, Default)]
pub struct TraceRecorder {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(s) => {
                let t = s.state.lock().expect("trace lock");
                write!(f, "TraceRecorder(on, {} spans)", t.spans.len())
            }
            None => f.write_str("TraceRecorder(off)"),
        }
    }
}

impl TraceRecorder {
    /// An **enabled** recorder with an empty buffer and a fresh wall-clock
    /// origin.
    #[allow(clippy::new_without_default)] // Default is the *disabled* recorder.
    pub fn new() -> Self {
        TraceRecorder {
            shared: Some(Arc::new(Shared {
                origin: Instant::now(),
                state: Mutex::new(Trace::default()),
            })),
        }
    }

    /// A disabled recorder (same as `Default`): all methods are no-ops.
    pub fn off() -> Self {
        TraceRecorder { shared: None }
    }

    /// Whether recording is on. Instrumentation gates *all* measurement
    /// work behind this, so a disabled recorder costs one branch.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Nanoseconds since the recorder's origin (0 when disabled). Wall
    /// times are inherently nondeterministic; they live only in trace
    /// output and never feed back into simulated state.
    pub fn now_ns(&self) -> u64 {
        match &self.shared {
            Some(s) => s.origin.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Record a span (no-op when disabled).
    pub fn record(&self, span: Span) {
        if let Some(s) = &self.shared {
            s.state.lock().expect("trace lock").spans.push(span);
        }
    }

    /// Add `delta` to the named counter (no-op when disabled).
    pub fn add(&self, counter: &str, delta: u64) {
        if let Some(s) = &self.shared {
            let mut t = s.state.lock().expect("trace lock");
            *t.counters.entry(counter.to_string()).or_insert(0) += delta;
        }
    }

    /// Clone the collected trace out of the recorder.
    pub fn snapshot(&self) -> Trace {
        match &self.shared {
            Some(s) => s.state.lock().expect("trace lock").clone(),
            None => Trace::default(),
        }
    }
}

/// The recording context one stage execution threads into the packet
/// loop: the recorder plus the identity (query name, stage index) every
/// packet span it records should carry. The context — not the recorder —
/// carries per-query identity, because the serving layer interleaves many
/// queries over one recorder.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    rec: TraceRecorder,
    query: String,
    stage: Option<usize>,
}

impl TraceCtx {
    /// A disabled context (for untraced paths).
    pub fn disabled() -> Self {
        TraceCtx { rec: TraceRecorder::off(), query: String::new(), stage: None }
    }

    /// A context recording into `rec` on behalf of `query`'s stage
    /// `stage`.
    pub fn new(rec: &TraceRecorder, query: &str, stage: usize) -> Self {
        if !rec.is_enabled() {
            return TraceCtx::disabled();
        }
        TraceCtx { rec: rec.clone(), query: query.to_string(), stage: Some(stage) }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Nanoseconds since the recorder's origin (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.rec.now_ns()
    }

    /// Add `delta` to the named counter.
    pub fn add(&self, counter: &str, delta: u64) {
        self.rec.add(counter, delta);
    }

    /// Record `span` stamped with this context's query and stage.
    pub fn record(&self, span: Span) {
        if !self.is_enabled() {
            return;
        }
        let mut span = span;
        span.query.clone_from(&self.query);
        if span.stage.is_none() {
            span.stage = self.stage;
        }
        self.rec.record(span);
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float for JSON (finite guaranteed by construction; integral
/// values print without an exponent).
fn json_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// The sim-time process lane in the Chrome export.
const PID_SIM: u32 = 1;
/// The wall-time process lane in the Chrome export.
const PID_WALL: u32 = 2;

impl Trace {
    /// Export as a Chrome tracing event array (load in `chrome://tracing`
    /// or [Perfetto](https://ui.perfetto.dev)).
    ///
    /// Two process lanes: pid 1 plots every span on the **simulated**
    /// clock, pid 2 plots the same spans on the **wall** clock — so the
    /// deterministic schedule the engine models and the real time the
    /// host spent computing it sit side by side. Within each lane, spans
    /// run on one thread row per lane label (workers like `cpu0.3` /
    /// `gpu1`, co-process phases, or the query itself), and every event's
    /// `args` carry the row counts plus the est/actual record when the
    /// span has one.
    pub fn to_chrome_json(&self) -> String {
        // Stable lane → tid mapping: sorted, queries-and-stages first row.
        let mut lanes: Vec<&str> =
            self.spans.iter().filter_map(|s| s.lane.as_deref()).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let tid_of = |span: &Span| -> u32 {
            match span.lane.as_deref() {
                Some(l) => {
                    1 + lanes.iter().position(|x| *x == l).expect("lane collected") as u32
                }
                None => 0,
            }
        };
        let mut events: Vec<String> = Vec::new();
        for (pid, pname) in [(PID_SIM, "sim-time"), (PID_WALL, "wall-time")] {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"control\"}}}}"
            ));
            for (i, lane) in lanes.iter().enumerate() {
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    i + 1,
                    json_escape(lane)
                ));
            }
        }
        for span in &self.spans {
            let tid = tid_of(span);
            let name = json_escape(&span.name);
            let mut args = format!(
                "\"kind\":\"{}\",\"query\":\"{}\",\"rows_in\":{},\"rows_out\":{},\
                 \"sim_ms\":{}",
                span.kind,
                json_escape(&span.query),
                span.rows_in,
                span.rows_out,
                json_f64(span.sim_elapsed().as_secs() * 1e3),
            );
            if let Some(stage) = span.stage {
                let _ = write!(args, ",\"stage\":{stage}");
            }
            if let Some(t) = span.pool_thread {
                let _ = write!(args, ",\"pool_thread\":{t}");
            }
            if let Some(est) = &span.estimate {
                let _ = write!(
                    args,
                    ",\"est_ms\":{},\"est_stream_ms\":{},\"est_broadcast_ms\":{},\
                     \"est_d2h_ms\":{}",
                    json_f64(est.total_seconds() * 1e3),
                    json_f64(est.stream_seconds * 1e3),
                    json_f64(est.broadcast_seconds * 1e3),
                    json_f64(est.d2h_seconds * 1e3),
                );
            }
            // Sim lane: microsecond timestamps from the simulated clock.
            let sim_ts = span.sim_start.as_ns() / 1e3;
            let sim_dur = span.sim_elapsed().as_ns() / 1e3;
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{PID_SIM},\"tid\":{tid},\"name\":\"{name}\",\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                json_f64(sim_ts),
                json_f64(sim_dur),
            ));
            // Wall lane: microseconds since the recorder's origin.
            let wall_ts = span.wall_start_ns as f64 / 1e3;
            let wall_dur = span.wall_elapsed_ns() as f64 / 1e3;
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{PID_WALL},\"tid\":{tid},\"name\":\"{name}\",\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                json_f64(wall_ts),
                json_f64(wall_dur),
            ));
        }
        // Counters ride one instant event so nothing is lost in export.
        if !self.counters.is_empty() {
            let body: Vec<String> = self
                .counters
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                .collect();
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":{PID_SIM},\"tid\":0,\"name\":\"counters\",\
                 \"ts\":0.0,\"args\":{{{}}}}}",
                body.join(",")
            ));
        }
        format!("[\n{}\n]\n", events.join(",\n"))
    }

    /// Render the deterministic per-stage predicted-vs-observed profile.
    ///
    /// One row per stage span — query, stage index, stage name, the
    /// devices the optimizer chose (blank for manual placements), the
    /// estimated and observed simulated makespans with their ratio, and
    /// the observed output rows — followed by the per-query totals and
    /// the counter block. Everything printed derives from simulated state
    /// and counters, so the output is bit-identical across runs and
    /// thread counts (wall time is exported via
    /// [`Trace::to_chrome_json`], not here).
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        out.push_str("== profile: predicted vs observed per stage (sim time) ==\n");
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:<26} {:<20} {:>12} {:>12} {:>10} {:>10}",
            "query", "stage", "name", "devices", "est", "actual", "est/act", "rows_out"
        );
        for span in self.spans.iter().filter(|s| s.kind == SpanKind::Stage) {
            let devices =
                span.estimate.as_ref().map(StageCost::devices_label).unwrap_or_default();
            let (est, ratio) = match &span.estimate {
                Some(e) => {
                    let est_s = e.total_seconds();
                    let actual_s = span.sim_elapsed().as_secs();
                    let ratio = if actual_s > 0.0 {
                        format!("{:.2}", est_s / actual_s)
                    } else {
                        "-".to_string()
                    };
                    (fmt_ms(est_s), ratio)
                }
                None => ("-".to_string(), "-".to_string()),
            };
            let _ = writeln!(
                out,
                "{:<10} {:>5} {:<26} {:<20} {:>12} {:>12} {:>10} {:>10}",
                span.query,
                span.stage.map(|s| s.to_string()).unwrap_or_default(),
                span.name,
                devices,
                est,
                fmt_ms(span.sim_elapsed().as_secs()),
                ratio,
                span.rows_out,
            );
        }
        let queries: Vec<&Span> =
            self.spans.iter().filter(|s| s.kind == SpanKind::Query).collect();
        if !queries.is_empty() {
            out.push_str("-- queries --\n");
            for span in queries {
                let _ = writeln!(
                    out,
                    "{:<10} total {:>12}  rows_out {:>8}",
                    span.query,
                    fmt_ms(span.sim_elapsed().as_secs()),
                    span.rows_out
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("-- counters --\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<36} {v:>14}");
            }
        }
        out
    }
}

/// Milliseconds with three decimals — matches the explain renderer's
/// estimate formatting so est and actual columns compare directly.
fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}ms", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, name: &str, sim: (f64, f64)) -> Span {
        Span::new(kind, name, "q").at_sim(SimTime::from_ms(sim.0), SimTime::from_ms(sim.1))
    }

    #[test]
    fn disabled_recorder_records_nothing_and_stamps_zero() {
        let rec = TraceRecorder::off();
        assert!(!rec.is_enabled());
        assert_eq!(rec.now_ns(), 0);
        rec.record(span(SpanKind::Query, "q", (0.0, 1.0)));
        rec.add("x", 7);
        let t = rec.snapshot();
        assert!(t.spans.is_empty());
        assert!(t.counters.is_empty());
        // Default is the disabled recorder.
        assert!(!TraceRecorder::default().is_enabled());
    }

    #[test]
    fn clones_share_one_buffer_and_counters_aggregate() {
        let rec = TraceRecorder::new();
        let other = rec.clone();
        rec.add("rows", 3);
        other.add("rows", 4);
        other.record(span(SpanKind::Stage, "s", (0.0, 2.0)));
        let t = rec.snapshot();
        assert_eq!(t.counters["rows"], 7);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].sim_elapsed(), SimTime::from_ms(2.0));
    }

    #[test]
    fn counters_aggregate_under_concurrent_recording() {
        // The recorder is shared by pool threads when wall spans are
        // measured on the data plane: hammer it from many threads.
        let rec = TraceRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        rec.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counters["hits"], 800);
    }

    #[test]
    fn ctx_stamps_query_and_stage() {
        let rec = TraceRecorder::new();
        let ctx = TraceCtx::new(&rec, "Q5", 2);
        ctx.record(Span::new(SpanKind::Packet, "packet 0", ""));
        let t = rec.snapshot();
        assert_eq!(t.spans[0].query, "Q5");
        assert_eq!(t.spans[0].stage, Some(2));
        // A disabled recorder yields a disabled ctx.
        assert!(!TraceCtx::new(&TraceRecorder::off(), "Q5", 2).is_enabled());
        assert!(!TraceCtx::disabled().is_enabled());
    }

    #[test]
    fn span_nesting_is_checkable_via_sim_contains() {
        let query = span(SpanKind::Query, "q", (0.0, 10.0));
        let stage = span(SpanKind::Stage, "s", (2.0, 8.0));
        let packet = span(SpanKind::Packet, "p", (3.0, 4.0));
        assert!(query.sim_contains(&stage));
        assert!(stage.sim_contains(&packet));
        assert!(!packet.sim_contains(&stage));
    }

    #[test]
    fn chrome_export_has_both_lanes_and_escapes_names() {
        let rec = TraceRecorder::new();
        rec.record(
            span(SpanKind::Stage, "build \"dim\"", (0.0, 1.0)).lane("cpu0.0").rows(10, 5),
        );
        rec.add("h2d.packet_bytes", 42);
        let json = rec.snapshot().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"build \\\"dim\\\"\""));
        assert!(json.contains("\"name\":\"sim-time\""));
        assert!(json.contains("\"name\":\"wall-time\""));
        assert!(json.contains("\"name\":\"cpu0.0\""));
        assert!(json.contains("\"h2d.packet_bytes\":42"));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn profile_renders_est_actual_and_ratio() {
        use hape_sim::topology::DeviceId;
        let rec = TraceRecorder::new();
        let est = StageCost {
            devices: vec![DeviceId::Cpu(0), DeviceId::Gpu(1)],
            stream_seconds: 0.002,
            broadcast_seconds: 0.0,
            d2h_seconds: 0.0,
            ht_bytes: 0,
            gpu_required: 0,
            gpu_capacity: None,
            coprocess: None,
        };
        rec.record(
            Span::new(SpanKind::Stage, "stream", "Q5")
                .stage(1)
                .at_sim(SimTime::ZERO, SimTime::from_ms(4.0))
                .rows(100, 10)
                .estimate(est),
        );
        rec.record(
            Span::new(SpanKind::Query, "Q5", "Q5")
                .at_sim(SimTime::ZERO, SimTime::from_ms(4.0))
                .rows(0, 10),
        );
        let text = rec.snapshot().render_profile();
        assert!(text.contains("2.000ms"), "{text}");
        assert!(text.contains("4.000ms"), "{text}");
        assert!(text.contains("0.50"), "{text}");
        assert!(text.contains("cpu0+gpu1"), "{text}");
        assert!(text.contains("Q5"), "{text}");
    }
}
