//! The parallel data-plane runtime: a hand-rolled scoped worker pool.
//!
//! The engine splits execution into a **deterministic control plane** and a
//! **parallel data plane** (see [`crate::engine`]):
//!
//! - the *control plane* — routing picks and `SimTime` accounting — runs
//!   sequentially on the coordinator, replaying worker `ready_at` state in
//!   packet order, so simulated makespans and result rows are bit-identical
//!   at any thread count;
//! - the *data plane* — the real columnar kernel work inside
//!   [`crate::provider::run_ops`] and the per-worker aggregation folds —
//!   is dispatched to the scoped thread pool in this module.
//!
//! The pool is deliberately simple (no external crates are available):
//! [`std::thread::scope`] threads pull job indices off a shared atomic
//! cursor and deliver results over an [`std::sync::mpsc`] channel; the
//! coordinator reassembles them in index order. Nothing about *which*
//! thread computes a job can influence a result — jobs are pure functions
//! of their index — which is what makes the thread count a pure wall-clock
//! knob.
//!
//! Thread count resolution (see [`resolve_threads`]):
//! [`crate::engine::ExecConfig::threads`] if set, else the `HAPE_THREADS`
//! environment variable, else [`std::thread::available_parallelism`].
//! `threads = 1` runs every job inline on the coordinator — the sequential
//! fallback CI exercises explicitly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use crate::error::EngineError;

/// Environment variable overriding the data-plane thread count when
/// [`crate::engine::ExecConfig::threads`] is unset. CI runs the test suite
/// under `HAPE_THREADS=1` to keep the sequential fallback honest.
pub const THREADS_ENV: &str = "HAPE_THREADS";

/// Parse one [`THREADS_ENV`] value. `None` input (variable unset) is fine —
/// the caller falls through to host parallelism — but a *set* variable must
/// be a positive integer: `0` and non-numeric values used to fall back
/// silently, which made typos (`HAPE_THREADS=eight`) indistinguishable from
/// intent, so both are now typed [`EngineError::InvalidConfig`] refusals.
pub fn parse_threads_env(value: Option<&str>) -> Result<Option<usize>, EngineError> {
    let Some(raw) = value else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(EngineError::InvalidConfig {
            what: format!("{THREADS_ENV}=0: the data plane needs at least one thread"),
        }),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(EngineError::InvalidConfig {
            what: format!("{THREADS_ENV}={raw:?} is not a positive integer"),
        }),
    }
}

/// Resolve the effective data-plane thread count: the explicit
/// configuration, else [`THREADS_ENV`], else the host's available
/// parallelism. Always at least 1.
///
/// An explicit configuration wins without consulting the environment (and
/// is clamped to ≥ 1, preserving the embedding API's contract); a *set but
/// invalid* `HAPE_THREADS` is a typed [`EngineError::InvalidConfig`] error
/// rather than a silent fallback.
pub fn resolve_threads(configured: Option<usize>) -> Result<usize, EngineError> {
    if let Some(n) = configured {
        return Ok(n.max(1));
    }
    let env = std::env::var(THREADS_ENV).ok();
    if let Some(n) = parse_threads_env(env.as_deref())? {
        return Ok(n);
    }
    Ok(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Run `n` independent jobs across up to `threads` pool threads and return
/// the results in job-index order.
///
/// Each pool thread builds one private scratch state via `init` (reusable
/// buffers survive across the jobs a thread executes) and repeatedly claims
/// the next unclaimed job index. `init` receives the pool-thread index
/// (0-based; 0 on the inline path) — observability only: the tracing plane
/// labels wall-clock packet spans with the pool thread that computed them.
/// Results travel back over an mpsc channel and are slotted by index, so
/// the output — and therefore everything the control plane derives from it
/// — is independent of scheduling order and of `threads` itself.
///
/// With `threads <= 1` (or a single job) everything runs inline on the
/// caller's thread through the same code path.
pub fn scatter<S, R, I, F>(threads: usize, n: usize, init: I, job: F) -> Vec<R>
where
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(usize, &mut S) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);
    if workers <= 1 {
        let mut scratch = init(0);
        return (0..n).map(|i| job(i, &mut scratch)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for t in 0..workers {
            let tx = tx.clone();
            let (cursor, init, job) = (&cursor, &init, &job);
            scope.spawn(move || {
                let mut scratch = init(t);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = job(i, &mut scratch);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter().map(|r| r.expect("pool delivered every job")).collect()
}

/// Consume `items` across up to `threads` pool threads, one job per item.
///
/// This is the fold-side fan-out: each item owns disjoint mutable state
/// (a worker and the packets routed to it), so the jobs run concurrently
/// without synchronising — one pool thread per device provider, bounded by
/// the pool size. Item order within a job is whatever the item carries;
/// which thread runs which item cannot affect results.
pub fn drain<T, F>(threads: usize, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = threads.min(n);
    if workers <= 1 {
        for t in items {
            f(t);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (queue, f) = (&queue, &f);
            scope.spawn(move || loop {
                let next = queue.lock().expect("pool queue poisoned").next();
                match next {
                    Some(t) => f(t),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_returns_results_in_index_order_at_any_thread_count() {
        for threads in [1, 2, 8, 64] {
            let out = scatter(
                threads,
                100,
                |t| {
                    assert!(t < threads, "pool-thread index in range");
                    0u64
                },
                |i, scratch| {
                    *scratch += 1; // per-thread scratch is private
                    i * i
                },
            );
            assert_eq!(out.len(), 100);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn scatter_handles_empty_and_single_jobs() {
        assert!(scatter(8, 0, |_| (), |i, _| i).is_empty());
        assert_eq!(scatter(8, 1, |_| (), |i, _| i + 42), vec![42]);
    }

    #[test]
    fn drain_visits_every_item_exactly_once() {
        for threads in [1, 3, 16] {
            let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
            let items: Vec<usize> = (0..50).collect();
            drain(threads, items, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "item {i} threads={threads}");
            }
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_config() {
        assert_eq!(resolve_threads(Some(3)).expect("explicit count"), 3);
        assert_eq!(resolve_threads(Some(0)).expect("explicit zero clamps"), 1);
        // With no explicit config the result depends on the environment:
        // either a valid count (≥ 1) or a typed refusal of a bad
        // HAPE_THREADS — never a panic, never silently zero.
        match resolve_threads(None) {
            Ok(n) => assert!(n >= 1),
            Err(e) => assert!(matches!(e, EngineError::InvalidConfig { .. })),
        }
    }

    #[test]
    fn zero_threads_env_is_a_typed_refusal() {
        let err = parse_threads_env(Some("0")).expect_err("zero must not fall back");
        match err {
            EngineError::InvalidConfig { what } => {
                assert!(what.contains("HAPE_THREADS=0"), "{what}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn non_numeric_threads_env_is_a_typed_refusal() {
        let err = parse_threads_env(Some("eight")).expect_err("typos must not fall back");
        match err {
            EngineError::InvalidConfig { what } => {
                assert!(what.contains("eight"), "{what}");
                assert!(what.contains("not a positive integer"), "{what}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Unset and valid values still resolve.
        assert_eq!(parse_threads_env(None).expect("unset is fine"), None);
        assert_eq!(parse_threads_env(Some("4")).expect("valid"), Some(4));
        assert_eq!(parse_threads_env(Some(" 2 ")).expect("whitespace ok"), Some(2));
    }
}
