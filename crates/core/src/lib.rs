//! # hape-core — the HAPE engine
//!
//! The paper's primary contribution (§3): a Heterogeneity-conscious
//! Analytical query Processing Engine that decomposes heterogeneous
//! execution into
//!
//! 1. **efficient single-device execution** — relational operators are
//!    heterogeneity-*oblivious* but hardware-*conscious*; per-device
//!    [`provider`]s ("device providers") compile a pipeline's operators into
//!    fused per-packet code for their target (the code-generation interface
//!    of §4.2), and
//! 2. **efficient multi-device execution** — the four HetExchange-style
//!    meta-operators in [`exchange`]: the *router* (parallelism trait), the
//!    *device crossing* (target-device trait), the *mem-move* (locality
//!    trait) and *pack/unpack* (packing trait), plus the zip/split plumbing
//!    that the intra-operator co-processing join builds on.
//!
//! The [`engine::Engine`] executes [`plan::QueryPlan`]s over the simulated
//! server as a deterministic discrete-event simulation: packets of real data
//! flow through compiled pipelines; CPU workers, GPUs and PCIe links are
//! clocked resources; the reported latency is the makespan.

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exchange;
pub mod plan;
pub mod provider;
pub mod query;
pub mod session;
pub mod traits;

pub use catalog::Catalog;
pub use engine::{Engine, EngineError, ExecConfig, Placement, QueryReport};
pub use error::{HapeError, PlanError};
pub use exchange::{RoutingPolicy, WorkerId};
pub use plan::{JoinAlgo, PipeOp, Pipeline, QueryPlan, Stage};
pub use query::{LoweredMaterialize, LoweredQuery, Query};
pub use session::Session;
pub use traits::{DeviceType, HetTraits, Packing};

/// Commonly used items.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::engine::{Engine, EngineError, ExecConfig, Placement, QueryReport};
    pub use crate::error::{HapeError, PlanError};
    pub use crate::exchange::RoutingPolicy;
    pub use crate::plan::{JoinAlgo, PipeOp, Pipeline, QueryPlan, Stage};
    pub use crate::query::{LoweredQuery, Query};
    pub use crate::session::Session;
    pub use crate::traits::DeviceType;
}
