//! # hape-core — the HAPE engine
//!
//! The paper's primary contribution (§3): a Heterogeneity-conscious
//! Analytical query Processing Engine that decomposes heterogeneous
//! execution into
//!
//! 1. **efficient single-device execution** — relational operators are
//!    heterogeneity-*oblivious* but hardware-*conscious*; per-device
//!    [`provider`]s ("device providers") compile a pipeline's operators into
//!    fused per-packet code for their target (the code-generation interface
//!    of §4.2), unified behind the [`provider::DeviceProvider`] trait, and
//! 2. **efficient multi-device execution** — the HetExchange-style
//!    meta-operators in [`exchange`]: the *router* (parallelism trait), the
//!    *device crossing* (target-device trait), the *mem-move* (locality
//!    trait) and *pack/unpack* (packing trait). The [`mod@place`] pass makes
//!    them explicit: it turns a [`plan::QueryPlan`] into a
//!    [`place::PlacedPlan`] whose segments carry [`traits::HetTraits`] and
//!    whose edges carry the inserted [`exchange::Exchange`] operators.
//!
//! The [`engine::Engine`] interprets placed plans over the simulated
//! server as a deterministic discrete-event simulation: packets of real
//! data flow through compiled pipelines; CPU workers, GPUs and PCIe links
//! are clocked resources; the reported latency is the makespan.
//!
//! The interpreter itself is split into two planes (the [`mod@runtime`]
//! module): a **deterministic control plane** — routing picks and
//! `SimTime` accounting replayed sequentially on the coordinator from
//! worker `ready_at` state — and a **parallel data plane** — the real
//! columnar kernel work ([`provider::run_ops`]), per-device-class cost
//! pricing, and per-worker aggregation folds, dispatched to a scoped
//! `std::thread` worker pool. [`engine::ExecConfig::threads`] (or the
//! `HAPE_THREADS` environment variable) sizes the pool; it is a pure
//! wall-clock knob — **simulated makespans and result rows are
//! bit-identical at any thread count**, which the determinism sweep in
//! `tests/runtime_determinism.rs` asserts across the TPC-H × placement
//! matrix.
//!
//! Between lowering and placement sits the **cost-based optimizer**
//! ([`mod@optimize`], backed by the analytic [`mod@cost`] model derived
//! from the hardware specs): [`engine::Placement::Auto`] enumerates
//! candidate device subsets per stage, prunes the ones whose estimated
//! GPU hash-table footprint exceeds device capacity (the paper's §6.4
//! constraint), and places each stage on its minimum-makespan subset.
//! When a stream's tables overflow *every* GPU, the optimizer can flip
//! the stage's probe execution mode ([`plan::ProbeExec`]) to the §5
//! intra-operator co-processing join — CPU co-partitioning feeding
//! single-pass per-GPU radix joins ([`place::PlacedStage::CoProcess`]) —
//! instead of retreating to CPU-only execution.
//!
//! ## Quickstart: lower → optimize → place → run
//!
//! ```
//! use hape_core::{ExecConfig, JoinAlgo, Placement, Query, Session};
//! use hape_ops::{col, AggFunc};
//! use hape_sim::topology::Server;
//! use hape_storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let query = session
//!     .query("q")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//!
//! // Lowering resolves names into the physical plan; placement annotates
//! // it with per-device segments and trait-conversion exchanges; the
//! // engine interprets the placed plan. `execute` chains all three.
//! let placed = session.place(&query).unwrap();
//! assert_eq!(placed.stages.len(), 2); // build dim, stream fact
//!
//! // `explain` renders the placed plan — under the default hybrid
//! // placement the GPU segments show the inserted mem-move, device
//! // crossing, and hash-table broadcast operators.
//! let text = session.explain(&query).unwrap();
//! assert!(text.contains("DeviceCrossing(Cpu -> Gpu)"));
//!
//! let report = session.execute(&query).unwrap();
//! assert_eq!(report.rows[0].1[0], (1 << 12) as f64);
//!
//! // The manual `Placement` arms are sugar selecting which devices
//! // participate; a placement with no devices is a typed error, never a
//! // panic.
//! let cpu = session
//!     .execute_with(&query, &ExecConfig::new(Placement::CpuOnly))
//!     .unwrap();
//! assert_eq!(cpu.rows, report.rows);
//!
//! // `Placement::Auto` runs the cost-based optimizer instead: per-stage
//! // device subsets follow from the hardware model, the chosen plan
//! // carries the optimizer's cost estimates, and `explain` renders them.
//! let auto = session.place_with(&query, &ExecConfig::new(Placement::Auto)).unwrap();
//! let costs = auto.costs.as_ref().expect("optimized plans carry estimates");
//! assert!(costs.stages.iter().all(|c| c.fits_gpu_memory()));
//! let report = session
//!     .execute_with(&query, &ExecConfig::new(Placement::Auto))
//!     .unwrap();
//! assert_eq!(report.rows, cpu.rows);
//! ```
//!
//! ## Quickstart: serving many queries concurrently
//!
//! One session serves one query at a time; the [`mod@serve`] layer serves
//! many over the *same* fleet. [`serve::SessionServer::submit`] queues
//! lowered-and-placed queries; [`serve::SessionServer::run_all`] admits
//! them against the fleet's GPU memory (a GPU-hungry query queues while
//! broadcast hash tables fill the budget, instead of OOMing), interleaves
//! admitted queries fairly with per-query sim-time isolation — every
//! report stays bit-identical to a solo run — and serves repeated build
//! sides from a catalog-versioned cross-query cache.
//!
//! ```
//! use hape_core::serve::SessionServer;
//! use hape_core::{JoinAlgo, Query, Session};
//! use hape_ops::{col, AggFunc};
//! use hape_sim::topology::Server;
//! use hape_storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let query = session
//!     .query("q")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//! let solo = session.execute(&query).unwrap();
//!
//! let mut server = SessionServer::new(session);
//! let a = server.submit(&query);
//! let b = server.submit(&query); // same shape: hits the build cache
//! let batch = server.run_all();
//!
//! // Concurrency never perturbs results or simulated time...
//! let ra = batch.report(a).as_ref().unwrap();
//! assert_eq!(ra.rows, solo.rows);
//! assert_eq!(ra.time, solo.time);
//! // ...and the repeated query skipped its build via the cache.
//! let rb = batch.report(b).as_ref().unwrap();
//! assert_eq!(rb.rows, solo.rows);
//! assert_eq!(rb.builds_cached, 1);
//! assert_eq!(server.cache_stats().hits, 1);
//! ```
//!
//! ## Quickstart: verifying a plan statically
//!
//! The [`mod@verify`] module is the IR's validator: four passes (schema
//! dataflow, trait coherence, device/capacity audit, determinism
//! contracts) over the placed plan, each violation a typed
//! [`verify::Diagnostic`] with a (stage, segment, op) location. Debug
//! builds verify every plan the engine begins automatically; the
//! explicit API reports the full diagnostic list.
//!
//! ```
//! use hape_core::verify::{self, DiagnosticKind, Pass};
//! use hape_core::{JoinAlgo, Query, Session};
//! use hape_ops::{col, AggFunc};
//! use hape_sim::topology::Server;
//! use hape_storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let query = session
//!     .query("q")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//!
//! // A session-built plan verifies clean on every placement...
//! session.verify(&query).unwrap();
//! // ...and `explain` renders the verdict as a footer.
//! let text = session.explain(&query).unwrap();
//! assert!(text.contains("verified: 2 stages, 0 diagnostics"));
//!
//! // Corrupt the placed IR by hand — drop the GPU segments' exchanges —
//! // and the trait-coherence pass reports exactly what is missing.
//! let lowered = session.lower(&query).unwrap();
//! let mut placed = session.place(&query).unwrap();
//! for stage in &mut placed.stages {
//!     if let hape_core::PlacedStage::Stream { segments, .. } = stage {
//!         for seg in segments {
//!             seg.exchanges.clear();
//!         }
//!     }
//! }
//! let err = verify::verify_placed(&placed, &lowered.catalog, &session.engine().server)
//!     .unwrap_err();
//! assert!(err.diagnostics.iter().any(|d| d.pass == Pass::TraitCoherence));
//! assert!(err
//!     .diagnostics
//!     .iter()
//!     .any(|d| matches!(d.kind, DiagnosticKind::MissingExchange { .. })));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod cost;
pub mod engine;
pub mod error;
pub mod exchange;
pub mod fault;
pub mod optimize;
pub mod place;
pub mod plan;
pub mod provider;
pub mod query;
pub mod runtime;
pub mod serve;
pub mod session;
pub mod trace;
pub mod traits;
pub mod verify;

pub use catalog::{Catalog, TableRegistration};
pub use cost::{CoprocessCost, CostModel, PlanCost, StageCost};
pub use engine::{Engine, ExecConfig, ParsePlacementError, Placement, QueryExec, QueryReport};
pub use error::{EngineError, HapeError, PlanError};
pub use exchange::{Exchange, RoutingPolicy, WorkerId};
pub use fault::{FaultKind, FaultPlan, FaultSpec, HealthRegistry, RetryPolicy, Trigger};
pub use optimize::{optimize, optimize_on};
pub use place::{place, place_on, PlacedPlan, PlacedStage, Segment};
pub use plan::{JoinAlgo, PipeOp, Pipeline, ProbeExec, QueryPlan, Stage};
pub use provider::DeviceProvider;
pub use query::{LoweredMaterialize, LoweredQuery, Query};
pub use runtime::resolve_threads;
pub use serve::{
    BuildCache, CacheStats, CancelToken, Outcome, QueryHandle, QueryOutcome, ServeMetrics,
    ServeReport, SessionServer,
};
pub use session::Session;
pub use trace::{Span, SpanKind, Trace, TraceCtx, TraceRecorder};
pub use traits::{DeviceType, HetTraits, Packing};
pub use verify::{verify_placed, verify_plan, Diagnostic, DiagnosticKind, Pass, VerifyError};

/// Commonly used items.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::cost::{CostModel, PlanCost, StageCost};
    pub use crate::engine::{Engine, ExecConfig, Placement, QueryReport};
    pub use crate::error::{EngineError, HapeError, PlanError};
    pub use crate::exchange::{Exchange, RoutingPolicy};
    pub use crate::fault::{FaultKind, FaultPlan, FaultSpec, RetryPolicy, Trigger};
    pub use crate::optimize::optimize;
    pub use crate::place::{place, PlacedPlan, PlacedStage, Segment};
    pub use crate::plan::{JoinAlgo, PipeOp, Pipeline, QueryPlan, Stage};
    pub use crate::provider::DeviceProvider;
    pub use crate::query::{LoweredQuery, Query};
    pub use crate::serve::{QueryHandle, ServeReport, SessionServer};
    pub use crate::session::Session;
    pub use crate::trace::{Trace, TraceRecorder};
    pub use crate::traits::{DeviceType, HetTraits};
    pub use crate::verify::{verify_placed, verify_plan, Diagnostic, VerifyError};
}
