//! Heterogeneity traits (§3).
//!
//! Four traits characterise execution in a heterogeneous server: the target
//! **device** and the **parallelism** (control flow), and the data
//! **locality** and **packing** (data flow). HetExchange operators are the
//! only trait *converters*; every relational operator keeps all four fixed,
//! which is what lets it stay heterogeneity-oblivious.
//!
//! The placement pass ([`mod@crate::place`]) compares the traits on every
//! placed edge with the `needs_*` predicates below and inserts the
//! matching converter, following the paper's §3 mapping:
//!
//! | [`HetTraits`] field | mismatch predicate | converter (§3, Fig. 3) | IR operator |
//! |---|---|---|---|
//! | `device` | [`HetTraits::needs_device_crossing`] | device crossing (cpu2gpu / gpu2cpu) | [`crate::exchange::Exchange::DeviceCrossing`] |
//! | `dop` | [`HetTraits::needs_router`] | router | [`crate::exchange::Exchange::Router`] |
//! | `locality` | [`HetTraits::needs_mem_move`] | mem-move (+ broadcast variant) | [`crate::exchange::Exchange::MemMove`] |
//! | `packing` | — (fixed to packets between operators) | pack / unpack | packet granularity of the executor |
//!
//! A stream pipeline starts at [`HetTraits::cpu_seq`] (the sequential,
//! host-resident scan source); each placed segment declares its own
//! traits, and whatever disagrees becomes an explicit exchange on that
//! segment's input edge — visible in
//! [`crate::session::Session::explain`].

use hape_sim::topology::MemNode;

/// The device-type trait: which kind of device executes an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// CPU cores.
    Cpu,
    /// GPU streaming multiprocessors.
    Gpu,
}

/// The data-packing trait: whether operators exchange tuples or packets,
/// and what property all tuples of a packet share (routing can then decide
/// per packet without touching its contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packing {
    /// Tuple-at-a-time (inside generated pipelines only).
    Tuples,
    /// Packets with no shared property.
    Packets,
    /// Packets whose tuples all belong to one partition (hash/radix): the
    /// router can route on the tag alone.
    PartitionTagged,
}

/// The full trait tuple carried by a plan edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HetTraits {
    /// Executing device type.
    pub device: DeviceType,
    /// Degree of parallelism (concurrently executing instances).
    pub dop: usize,
    /// Where the data lives.
    pub locality: MemNode,
    /// Packing discipline.
    pub packing: Packing,
}

impl HetTraits {
    /// Single-threaded CPU execution over socket-0-resident packets — the
    /// conventional starting point of a plan.
    pub fn cpu_seq() -> Self {
        HetTraits {
            device: DeviceType::Cpu,
            dop: 1,
            locality: MemNode::CpuDram(0),
            packing: Packing::Packets,
        }
    }

    /// True when moving to `other` requires a *router* (parallelism change).
    pub fn needs_router(&self, other: &HetTraits) -> bool {
        self.dop != other.dop
    }

    /// True when moving to `other` requires a *device crossing*.
    pub fn needs_device_crossing(&self, other: &HetTraits) -> bool {
        self.device != other.device
    }

    /// True when moving to `other` requires a *mem-move*.
    pub fn needs_mem_move(&self, other: &HetTraits) -> bool {
        self.locality != other.locality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_conversion_detection() {
        let a = HetTraits::cpu_seq();
        let mut b = a;
        assert!(!a.needs_router(&b));
        assert!(!a.needs_device_crossing(&b));
        assert!(!a.needs_mem_move(&b));
        b.dop = 24;
        assert!(a.needs_router(&b));
        b.device = DeviceType::Gpu;
        assert!(a.needs_device_crossing(&b));
        b.locality = MemNode::GpuDram(0);
        assert!(a.needs_mem_move(&b));
    }
}
