//! The cost-based placement optimizer: the decision layer between
//! lowering and placement that [`Placement::Auto`](crate::Placement)
//! invokes.
//!
//! Manual placements fan every stream stage over *all* devices of a
//! class-selected pool. [`optimize`] instead enumerates candidate device
//! subsets per stage over the [`PlacedPlan`] IR's expressiveness, prices
//! each candidate with the analytic [`CostModel`] (derived from the same
//! hardware specs the simulator executes against), prunes subsets whose
//! estimated GPU hash-table footprint exceeds device capacity (the
//! paper's §6.4 constraint — this is what routes Q9 away from the
//! GPU-only out-of-memory failure automatically), and places each stage
//! on its minimum-makespan subset. Build stages participate too: they may
//! place on GPUs when the footprint fits and the estimate wins, paying
//! the device-to-host return of the built table.
//!
//! The output is an ordinary [`PlacedPlan`] — the engine interprets it
//! with zero knowledge that an optimizer chose the subsets — annotated
//! with the chosen per-stage [`crate::cost::StageCost`]
//! estimates so [`Session::explain`](crate::session::Session::explain)
//! can render the decision.

use hape_sim::topology::{DeviceId, Server};

use crate::catalog::Catalog;
use crate::cost::{CostModel, HtEstimates, PlanCost, StageCost};
use crate::engine::{ExecConfig, Placement};
use crate::error::EngineError;
use crate::place::{participants, place_on, PlacedPlan};
use crate::plan::{QueryPlan, Stage};
use crate::trace::{Span, SpanKind};

/// Above this device count the subset enumeration stops being exhaustive
/// (2^n candidates) and falls back to the pruned class-combination lattice.
const MAX_EXHAUSTIVE_DEVICES: usize = 10;

/// Candidate device subsets for one stage, in deterministic order.
///
/// Small servers (≤ `MAX_EXHAUSTIVE_DEVICES` devices) enumerate every
/// non-empty subset. Larger pools prune to the class lattice: all CPUs,
/// all GPUs, everything, each single device, and all-CPUs plus each
/// single GPU — the shapes the cost model can actually distinguish.
pub fn candidate_subsets(pool: &[DeviceId]) -> Vec<Vec<DeviceId>> {
    if pool.len() <= MAX_EXHAUSTIVE_DEVICES {
        let mut subsets = Vec::with_capacity((1 << pool.len()) - 1);
        for mask in 1u32..(1 << pool.len()) {
            subsets.push(
                pool.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &d)| d)
                    .collect(),
            );
        }
        return subsets;
    }
    let cpus: Vec<DeviceId> = pool.iter().copied().filter(|d| !d.is_gpu()).collect();
    let gpus: Vec<DeviceId> = pool.iter().copied().filter(|d| d.is_gpu()).collect();
    let mut subsets: Vec<Vec<DeviceId>> = Vec::new();
    let mut push = |s: Vec<DeviceId>| {
        if !s.is_empty() && !subsets.contains(&s) {
            subsets.push(s);
        }
    };
    push(cpus.clone());
    push(gpus.clone());
    push(pool.to_vec());
    for &d in pool {
        push(vec![d]);
    }
    for &g in &gpus {
        let mut s = cpus.clone();
        s.push(g);
        push(s);
    }
    subsets
}

/// Run the cost-based optimizer: lower → **optimize** → place.
///
/// Walks the plan's stages in order, maintaining estimated hash-table
/// footprints for every build, prices every candidate subset per stage,
/// discards candidates whose estimated GPU footprint exceeds capacity,
/// and places each stage on the cheapest surviving subset. If *no*
/// candidate survives for a stage (a zero-CPU server whose GPUs cannot
/// hold the tables), the capacity violation surfaces as the typed
/// [`EngineError::GpuMemoryExceeded`] — estimated, before any packet
/// moves.
pub fn optimize(
    plan: &QueryPlan,
    catalog: &Catalog,
    cfg: &ExecConfig,
    server: &Server,
) -> Result<PlacedPlan, EngineError> {
    let pool = participants(Placement::Auto, server);
    optimize_on(plan, catalog, cfg, server, &pool)
}

/// [`optimize`] against an explicit device pool — the degraded-topology
/// entry point. The fault plane's mid-query recovery calls this with the
/// surviving fleet (the full pool minus failed/quarantined devices), so a
/// degraded topology is just another input to the same pass, never a
/// special case.
pub fn optimize_on(
    plan: &QueryPlan,
    catalog: &Catalog,
    cfg: &ExecConfig,
    server: &Server,
    pool: &[DeviceId],
) -> Result<PlacedPlan, EngineError> {
    plan.validate().map_err(EngineError::InvalidPlan)?;
    if pool.is_empty() {
        return Err(EngineError::NoWorkers { placement: "Auto (empty server)".to_string() });
    }
    let candidates = candidate_subsets(pool);
    let model = CostModel::new(server, catalog);
    let mut hts = HtEstimates::new();
    let mut subsets: Vec<Vec<DeviceId>> = Vec::with_capacity(plan.stages.len());
    let mut costs: Vec<StageCost> = Vec::with_capacity(plan.stages.len());
    // Per-stage co-processing decision: `Some((ht, gpus))` when the stage
    // places as a `PlacedStage::CoProcess` after the trait pass runs.
    let mut coprocess: Vec<Option<(String, Vec<DeviceId>)>> =
        Vec::with_capacity(plan.stages.len());
    let cpus: Vec<DeviceId> = pool.iter().copied().filter(|d| !d.is_gpu()).collect();
    let gpus: Vec<DeviceId> = pool.iter().copied().filter(|d| d.is_gpu()).collect();
    for stage in &plan.stages {
        let (pipeline, is_build) = match stage {
            Stage::Build { pipeline, .. } => (pipeline, true),
            Stage::Stream { pipeline } => (pipeline, false),
        };
        // The cardinality walk is subset-independent: run it once per
        // stage and price every candidate subset against it.
        let est = model.estimate_pipeline(pipeline, &hts)?;
        let mut best: Option<StageCost> = None;
        let mut over_capacity: Option<(u64, u64)> = None;
        let mut gpu_subset_fits = false;
        for subset in &candidates {
            let cost = model.stage_cost(&est, subset, is_build)?;
            if !cost.fits_gpu_memory() {
                let cap = cost.gpu_capacity.unwrap_or(0);
                if over_capacity.is_none_or(|(r, _)| cost.gpu_required < r) {
                    over_capacity = Some((cost.gpu_required, cap));
                }
                continue;
            }
            gpu_subset_fits |= subset.iter().any(|d| d.is_gpu());
            if best.as_ref().is_none_or(|b| cost.total_seconds() < b.total_seconds()) {
                best = Some(cost);
            }
        }
        // The §5 co-processing arm: when the stream's probed tables
        // overflow *every* GPU (all GPU-bearing subsets were pruned), the
        // choice is no longer "CPUs or nothing" — CPU-side co-partitioning
        // can feed single-pass GPU joins of the stage's final probe.
        // Priced like any other candidate; the cheaper mode wins.
        if !is_build && !gpu_subset_fits && over_capacity.is_some() {
            if let Some(cost) = model.coprocess_cost(&est, &cpus, &gpus)? {
                if best.as_ref().is_none_or(|b| cost.total_seconds() < b.total_seconds()) {
                    best = Some(cost);
                }
            }
        }
        let chosen = match best {
            Some(c) => c,
            None => {
                // Only reachable when the pool has no CPU fallback.
                let (required, capacity) = over_capacity.unwrap_or((0, 0));
                return Err(EngineError::GpuMemoryExceeded { required, capacity });
            }
        };
        if let Stage::Build { name, .. } = stage {
            hts.insert(name.clone(), est.table_estimate());
        }
        match &chosen.coprocess {
            Some(cp) => {
                // The trait pass places the CPU side; the GPU lanes ride
                // the stage rewrite below.
                subsets.push(cpus.clone());
                coprocess.push(Some((cp.ht.clone(), gpus.clone())));
            }
            None => {
                subsets.push(chosen.devices.clone());
                coprocess.push(None);
            }
        }
        if cfg.trace.is_enabled() {
            // The estimate side of the predicted-vs-observed record: a
            // zero-duration event carrying the chosen decomposition, one
            // per stage, before any packet moves. The matching observation
            // rides the engine's stage span for the same stage index.
            let now = cfg.trace.now_ns();
            cfg.trace.record(
                Span::new(
                    SpanKind::Optimize,
                    format!("optimize stage {}", costs.len()),
                    plan.name.clone(),
                )
                .stage(costs.len())
                .at_wall(now, now)
                .estimate(chosen.clone()),
            );
            cfg.trace.add("optimize.stages_costed", 1);
        }
        costs.push(chosen);
    }
    let mut placed = place_on(plan, cfg, server, &subsets)?;
    for (i, cp) in coprocess.into_iter().enumerate() {
        if let Some((ht, lanes)) = cp {
            let stage = placed.stages[i].clone();
            placed.stages[i] = crate::place::into_coprocess_stage(stage, ht, lanes)?;
        }
    }
    placed.costs = Some(PlanCost { stages: costs });
    // Debug builds statically verify the chosen candidate before handing
    // it to the engine: a structural diagnostic here is an optimizer or
    // placement bug, not a user error.
    #[cfg(debug_assertions)]
    crate::verify::debug_check_placed(&placed, catalog, server);
    Ok(placed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinAlgo, Pipeline};
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_storage::datagen::gen_key_fk_table;

    fn setup() -> (Catalog, QueryPlan) {
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 1));
        catalog.register_as("dim", gen_key_fk_table(1 << 13, 1 << 13, 2));
        let plan = QueryPlan::try_new(
            "t",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
                },
            ],
        )
        .unwrap();
        (catalog, plan)
    }

    #[test]
    fn exhaustive_enumeration_covers_the_power_set() {
        let server = Server::paper_testbed();
        let subsets = candidate_subsets(&server.devices());
        assert_eq!(subsets.len(), 15); // 2^4 - 1
                                       // Deterministic: first is {cpu0}, last is the full pool.
        assert_eq!(subsets[0], vec![DeviceId::Cpu(0)]);
        assert_eq!(subsets.last().unwrap().len(), 4);
    }

    #[test]
    fn large_pools_prune_to_the_class_lattice() {
        let pool: Vec<DeviceId> =
            (0..8).map(DeviceId::Cpu).chain((0..8).map(DeviceId::Gpu)).collect();
        let subsets = candidate_subsets(&pool);
        assert!(subsets.len() < 50, "pruned lattice, not 2^16");
        assert!(subsets.contains(&pool));
        assert!(subsets.iter().any(|s| s.iter().all(|d| !d.is_gpu()) && s.len() == 8));
    }

    #[test]
    fn auto_uses_every_device_on_scan_bound_streams() {
        // A broadcast-free scan: every device adds streaming throughput,
        // so the min-makespan subset is the full pool.
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 22, 1 << 22, 1));
        let plan = QueryPlan::try_new(
            "scan",
            vec![Stage::Stream {
                pipeline: Pipeline::scan("fact")
                    .aggregate(AggSpec::ungrouped(vec![(AggFunc::Sum, Expr::col(1))])),
            }],
        )
        .unwrap();
        let server = Server::paper_testbed();
        let placed =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap();
        let stream = placed.stages.last().unwrap();
        assert_eq!(stream.segments().len(), 4);
        let costs = placed.costs.as_ref().expect("optimizer attaches costs");
        assert_eq!(costs.stages.len(), 1);
        assert!(costs.total_seconds() > 0.0);
    }

    #[test]
    fn auto_join_placement_is_feasible_and_costed() {
        let (catalog, plan) = setup();
        let server = Server::paper_testbed();
        let placed =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap();
        assert_eq!(placed.stages.len(), 2);
        let costs = placed.costs.as_ref().expect("optimizer attaches costs");
        assert_eq!(costs.stages.len(), 2);
        for cost in &costs.stages {
            assert!(cost.fits_gpu_memory());
            assert!(cost.total_seconds() > 0.0);
        }
    }

    #[test]
    fn auto_routes_away_from_over_capacity_gpus() {
        let (catalog, plan) = setup();
        let server = Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0);
        let placed =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap();
        let stream = placed.stages.last().unwrap();
        assert!(
            stream.segments().iter().all(|s| !s.target.is_gpu()),
            "scaled-down GPUs must be pruned"
        );
        for cost in &placed.costs.as_ref().unwrap().stages {
            assert!(cost.fits_gpu_memory());
        }
    }

    #[test]
    fn builds_stay_on_cpus_for_small_dimensions() {
        let (catalog, plan) = setup();
        let server = Server::paper_testbed();
        let placed =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap();
        let build = &placed.stages[0];
        assert!(build.segments().iter().all(|s| !s.target.is_gpu()));
    }

    #[test]
    fn zero_gpu_capacity_without_cpu_fallback_is_typed() {
        let (catalog, plan) = setup();
        let mut server = Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0);
        server.cpus.clear();
        let err =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap_err();
        assert!(matches!(err, EngineError::GpuMemoryExceeded { .. }), "{err}");
    }

    #[test]
    fn degraded_pool_routes_around_excluded_gpus() {
        let (catalog, plan) = setup();
        let server = Server::paper_testbed();
        // The surviving fleet after losing gpu1: the optimizer must place
        // every stage without it, through the ordinary pass.
        let pool: Vec<DeviceId> =
            server.devices().into_iter().filter(|d| *d != DeviceId::Gpu(1)).collect();
        let placed =
            optimize_on(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server, &pool)
                .unwrap();
        for stage in &placed.stages {
            assert!(
                stage.segments().iter().all(|s| s.target != DeviceId::Gpu(1)),
                "excluded device must not be placed on"
            );
        }
        assert!(placed.costs.is_some(), "degraded plans are costed like any other");
    }

    #[test]
    fn empty_server_is_typed() {
        let (catalog, plan) = setup();
        let mut server = Server::paper_testbed();
        server.cpus.clear();
        server.gpus.clear();
        server.pcie.clear();
        server.gpu_socket.clear();
        let err =
            optimize(&plan, &catalog, &ExecConfig::new(Placement::Auto), &server).unwrap_err();
        assert!(matches!(err, EngineError::NoWorkers { .. }));
    }
}
