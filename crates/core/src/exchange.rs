//! HetExchange meta-operators: routing, device crossing, mem-move (§3, §4.2).
//!
//! The **router** converts the parallelism trait: it receives packets from
//! producers and routes each to one of its consumer instances. Control flow
//! is CPU-side and *content-free*: decisions use only packet metadata (size,
//! partition tag) and consumer load — never the tuple values. The **device
//! crossing** converts the device trait (the engine swaps providers); the
//! **mem-move** converts locality (charged on the topology's links, with
//! broadcast-aware multicasting).

use hape_sim::interconnect::Link;
use hape_sim::topology::MemNode;
use hape_sim::SimTime;
use hape_storage::Batch;

use crate::traits::DeviceType;

/// An explicit trait-conversion operator on a placed-plan edge (§3,
/// Fig. 3). The placement pass ([`mod@crate::place`]) inserts one wherever two
/// adjacent pipeline segments disagree on a [`crate::traits::HetTraits`]
/// component; relational operators never convert traits themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exchange {
    /// Converts the *parallelism* trait: receives packets from `from_dop`
    /// producer instances and routes each to one of `to_dop` consumer
    /// instances under `policy`.
    Router {
        /// The routing policy the executor instantiates.
        policy: RoutingPolicy,
        /// Producer-side degree of parallelism.
        from_dop: usize,
        /// Consumer-side degree of parallelism (summed over segments).
        to_dop: usize,
    },
    /// Converts the *locality* trait: moves bytes between memory nodes
    /// over the topology's links. `table` names a broadcast hash-table
    /// payload; `None` is the streaming per-packet move.
    MemMove {
        /// Source memory node.
        from: MemNode,
        /// Destination memory node.
        to: MemNode,
        /// Hash table broadcast by this move (`None` = packet stream).
        table: Option<String>,
    },
    /// Converts the *device* trait: the executor swaps the device provider
    /// that runs the downstream segment's compiled pipeline.
    DeviceCrossing {
        /// Producer-side device type.
        from: DeviceType,
        /// Consumer-side device type.
        to: DeviceType,
    },
}

impl Exchange {
    /// True for broadcast hash-table mem-moves.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Exchange::MemMove { table: Some(_), .. })
    }
}

impl std::fmt::Display for Exchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exchange::Router { policy, from_dop, to_dop } => {
                write!(f, "Router({policy:?}, {from_dop} -> {to_dop})")
            }
            Exchange::MemMove { from, to, table: None } => {
                write!(f, "MemMove({from} -> {to})")
            }
            Exchange::MemMove { from, to, table: Some(t) } => {
                write!(f, "MemMove({from} -> {to}, broadcast {t:?})")
            }
            Exchange::DeviceCrossing { from, to } => {
                write!(f, "DeviceCrossing({from:?} -> {to:?})")
            }
        }
    }
}

/// Identity of a worker instance the router can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerId {
    /// CPU core `core` on socket `socket`.
    CpuCore {
        /// Socket index.
        socket: usize,
        /// Core index within the socket.
        core: usize,
    },
    /// GPU `idx`.
    Gpu(usize),
}

impl WorkerId {
    /// True for GPU workers.
    pub fn is_gpu(&self) -> bool {
        matches!(self, WorkerId::Gpu(_))
    }
}

impl std::fmt::Display for WorkerId {
    /// Compact lane label (`cpu0.3`, `gpu1`) — the tracing plane's
    /// per-worker thread names.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerId::CpuCore { socket, core } => write!(f, "cpu{socket}.{core}"),
            WorkerId::Gpu(idx) => write!(f, "gpu{idx}"),
        }
    }
}

/// Routing policies (§4.2 lists load-aware, locality-aware and hash-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Earliest-start wins: send the packet to the consumer that can begin
    /// processing it first (its clock, plus any transfer its placement
    /// needs). Fast consumers drain their queues sooner and automatically
    /// attract more packets — this is what load-balances hybrid execution.
    LoadAware,
    /// Cycle through consumers regardless of load.
    RoundRobin,
    /// Route by the packet's partition tag (content-free thanks to the
    /// packing trait); packets without a tag fall back to round-robin.
    HashPartition,
}

/// The router: picks a consumer for each packet.
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    rr: usize,
}

/// What the router knows about each candidate consumer — metadata only.
#[derive(Debug, Clone, Copy)]
pub struct CandidateLoad {
    /// When the consumer could start this packet (clock + transfer).
    pub ready_at: SimTime,
    /// Expected processing time per byte for this consumer (calibrated from
    /// past packets; used to break ties toward faster consumers).
    pub est_ns_per_byte: f64,
}

impl Router {
    /// Create a router with the given policy.
    pub fn new(policy: RoutingPolicy) -> Self {
        Router { policy, rr: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Choose a consumer index for `packet` among `candidates`.
    pub fn pick(&mut self, packet: &Batch, candidates: &[CandidateLoad]) -> usize {
        assert!(!candidates.is_empty(), "router with no consumers");
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let i = self.rr % candidates.len();
                self.rr += 1;
                i
            }
            RoutingPolicy::HashPartition => match packet.partition {
                Some(p) => (p as usize) % candidates.len(),
                None => {
                    let i = self.rr % candidates.len();
                    self.rr += 1;
                    i
                }
            },
            RoutingPolicy::LoadAware => {
                let bytes = packet.bytes() as f64;
                let mut best = 0;
                let mut best_done = f64::INFINITY;
                for (i, c) in candidates.iter().enumerate() {
                    let done = c.ready_at.as_ns() + c.est_ns_per_byte * bytes;
                    if done < best_done {
                        best_done = done;
                        best = i;
                    }
                }
                best
            }
        }
    }
}

/// A mem-move: transfer `bytes` over `link`, ready at `ready`.
///
/// Returns the `(start, end)` of the transfer. Same-node moves should not
/// call this — the topology's `route` decides whether a move is needed.
pub fn mem_move(link: &mut Link, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
    link.transfer(ready, bytes)
}

/// A broadcast mem-move to several GPU links.
///
/// Models the topology-aware broadcast operator (§4.2): the payload crosses
/// each PCIe link once (multicast from host memory), *not* once per
/// consumer per link — with both GPUs on dedicated links the copies proceed
/// in parallel. Returns the per-link completion times.
pub fn broadcast(links: &mut [&mut Link], ready: SimTime, bytes: u64) -> Vec<SimTime> {
    links.iter_mut().map(|l| l.transfer(ready, bytes).1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::Column;

    fn packet(tag: Option<u32>) -> Batch {
        let mut b = Batch::new(vec![Column::from_i32(vec![1, 2, 3])]);
        b.partition = tag;
        b
    }

    fn load(ready_ns: f64, rate: f64) -> CandidateLoad {
        CandidateLoad { ready_at: SimTime::from_ns(ready_ns), est_ns_per_byte: rate }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RoutingPolicy::RoundRobin);
        let c = vec![load(0.0, 1.0); 3];
        let picks: Vec<usize> = (0..6).map(|_| r.pick(&packet(None), &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn load_aware_prefers_idle_consumer() {
        let mut r = Router::new(RoutingPolicy::LoadAware);
        let c = vec![load(1000.0, 1.0), load(0.0, 1.0)];
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn load_aware_prefers_faster_consumer_when_equally_free() {
        let mut r = Router::new(RoutingPolicy::LoadAware);
        let c = vec![load(0.0, 10.0), load(0.0, 1.0)];
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn hash_partition_routes_by_tag_without_content() {
        let mut r = Router::new(RoutingPolicy::HashPartition);
        let c = vec![load(0.0, 1.0); 4];
        assert_eq!(r.pick(&packet(Some(7)), &c), 3);
        assert_eq!(r.pick(&packet(Some(8)), &c), 0);
        // Untagged packets fall back to round robin.
        assert_eq!(r.pick(&packet(None), &c), 0);
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn exchange_renders_compactly() {
        let r = Exchange::Router { policy: RoutingPolicy::LoadAware, from_dop: 1, to_dop: 26 };
        assert_eq!(r.to_string(), "Router(LoadAware, 1 -> 26)");
        let m = Exchange::MemMove {
            from: MemNode::CpuDram(0),
            to: MemNode::GpuDram(1),
            table: None,
        };
        assert_eq!(m.to_string(), "MemMove(dram0 -> gmem1)");
        assert!(!m.is_broadcast());
        let b = Exchange::MemMove {
            from: MemNode::CpuDram(0),
            to: MemNode::GpuDram(0),
            table: Some("Q5.orders".into()),
        };
        assert_eq!(b.to_string(), "MemMove(dram0 -> gmem0, broadcast \"Q5.orders\")");
        assert!(b.is_broadcast());
        let d = Exchange::DeviceCrossing { from: DeviceType::Cpu, to: DeviceType::Gpu };
        assert_eq!(d.to_string(), "DeviceCrossing(Cpu -> Gpu)");
    }

    #[test]
    fn broadcast_crosses_each_link_once_in_parallel() {
        let mut a = Link::pcie3_x16("p0");
        let mut b = Link::pcie3_x16("p1");
        let bytes = 12_000_000_000; // 1s per link
        let ends = broadcast(&mut [&mut a, &mut b], SimTime::ZERO, bytes);
        assert_eq!(ends.len(), 2);
        for e in ends {
            assert!(e.as_secs() < 1.1, "links did not run in parallel: {e}");
        }
    }
}
