//! HetExchange meta-operators: routing, device crossing, mem-move (§3, §4.2).
//!
//! The **router** converts the parallelism trait: it receives packets from
//! producers and routes each to one of its consumer instances. Control flow
//! is CPU-side and *content-free*: decisions use only packet metadata (size,
//! partition tag) and consumer load — never the tuple values. The **device
//! crossing** converts the device trait (the engine swaps providers); the
//! **mem-move** converts locality (charged on the topology's links, with
//! broadcast-aware multicasting).

use hape_sim::interconnect::Link;
use hape_sim::SimTime;
use hape_storage::Batch;

/// Identity of a worker instance the router can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerId {
    /// CPU core `core` on socket `socket`.
    CpuCore {
        /// Socket index.
        socket: usize,
        /// Core index within the socket.
        core: usize,
    },
    /// GPU `idx`.
    Gpu(usize),
}

impl WorkerId {
    /// True for GPU workers.
    pub fn is_gpu(&self) -> bool {
        matches!(self, WorkerId::Gpu(_))
    }
}

/// Routing policies (§4.2 lists load-aware, locality-aware and hash-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Earliest-start wins: send the packet to the consumer that can begin
    /// processing it first (its clock, plus any transfer its placement
    /// needs). Fast consumers drain their queues sooner and automatically
    /// attract more packets — this is what load-balances hybrid execution.
    LoadAware,
    /// Cycle through consumers regardless of load.
    RoundRobin,
    /// Route by the packet's partition tag (content-free thanks to the
    /// packing trait); packets without a tag fall back to round-robin.
    HashPartition,
}

/// The router: picks a consumer for each packet.
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    rr: usize,
}

/// What the router knows about each candidate consumer — metadata only.
#[derive(Debug, Clone, Copy)]
pub struct CandidateLoad {
    /// When the consumer could start this packet (clock + transfer).
    pub ready_at: SimTime,
    /// Expected processing time per byte for this consumer (calibrated from
    /// past packets; used to break ties toward faster consumers).
    pub est_ns_per_byte: f64,
}

impl Router {
    /// Create a router with the given policy.
    pub fn new(policy: RoutingPolicy) -> Self {
        Router { policy, rr: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Choose a consumer index for `packet` among `candidates`.
    pub fn pick(&mut self, packet: &Batch, candidates: &[CandidateLoad]) -> usize {
        assert!(!candidates.is_empty(), "router with no consumers");
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let i = self.rr % candidates.len();
                self.rr += 1;
                i
            }
            RoutingPolicy::HashPartition => match packet.partition {
                Some(p) => (p as usize) % candidates.len(),
                None => {
                    let i = self.rr % candidates.len();
                    self.rr += 1;
                    i
                }
            },
            RoutingPolicy::LoadAware => {
                let bytes = packet.bytes() as f64;
                let mut best = 0;
                let mut best_done = f64::INFINITY;
                for (i, c) in candidates.iter().enumerate() {
                    let done = c.ready_at.as_ns() + c.est_ns_per_byte * bytes;
                    if done < best_done {
                        best_done = done;
                        best = i;
                    }
                }
                best
            }
        }
    }
}

/// A mem-move: transfer `bytes` over `link`, ready at `ready`.
///
/// Returns the `(start, end)` of the transfer. Same-node moves should not
/// call this — the topology's `route` decides whether a move is needed.
pub fn mem_move(link: &mut Link, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
    link.transfer(ready, bytes)
}

/// A broadcast mem-move to several GPU links.
///
/// Models the topology-aware broadcast operator (§4.2): the payload crosses
/// each PCIe link once (multicast from host memory), *not* once per
/// consumer per link — with both GPUs on dedicated links the copies proceed
/// in parallel. Returns the per-link completion times.
pub fn broadcast(links: &mut [&mut Link], ready: SimTime, bytes: u64) -> Vec<SimTime> {
    links.iter_mut().map(|l| l.transfer(ready, bytes).1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::Column;

    fn packet(tag: Option<u32>) -> Batch {
        let mut b = Batch::new(vec![Column::from_i32(vec![1, 2, 3])]);
        b.partition = tag;
        b
    }

    fn load(ready_ns: f64, rate: f64) -> CandidateLoad {
        CandidateLoad { ready_at: SimTime::from_ns(ready_ns), est_ns_per_byte: rate }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RoutingPolicy::RoundRobin);
        let c = vec![load(0.0, 1.0); 3];
        let picks: Vec<usize> = (0..6).map(|_| r.pick(&packet(None), &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn load_aware_prefers_idle_consumer() {
        let mut r = Router::new(RoutingPolicy::LoadAware);
        let c = vec![load(1000.0, 1.0), load(0.0, 1.0)];
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn load_aware_prefers_faster_consumer_when_equally_free() {
        let mut r = Router::new(RoutingPolicy::LoadAware);
        let c = vec![load(0.0, 10.0), load(0.0, 1.0)];
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn hash_partition_routes_by_tag_without_content() {
        let mut r = Router::new(RoutingPolicy::HashPartition);
        let c = vec![load(0.0, 1.0); 4];
        assert_eq!(r.pick(&packet(Some(7)), &c), 3);
        assert_eq!(r.pick(&packet(Some(8)), &c), 0);
        // Untagged packets fall back to round robin.
        assert_eq!(r.pick(&packet(None), &c), 0);
        assert_eq!(r.pick(&packet(None), &c), 1);
    }

    #[test]
    fn broadcast_crosses_each_link_once_in_parallel() {
        let mut a = Link::pcie3_x16("p0");
        let mut b = Link::pcie3_x16("p1");
        let bytes = 12_000_000_000; // 1s per link
        let ends = broadcast(&mut [&mut a, &mut b], SimTime::ZERO, bytes);
        assert_eq!(ends.len(), 2);
        for e in ends {
            assert!(e.as_secs() < 1.1, "links did not run in parallel: {e}");
        }
    }
}
