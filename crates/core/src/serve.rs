//! The concurrent multi-query serving layer.
//!
//! A [`SessionServer`] wraps a [`Session`] and serves many queries over
//! the session's *shared* simulated device fleet — the single-node shape
//! of a multi-tenant coordinator. Queries are submitted up front
//! ([`SessionServer::submit`] / [`SessionServer::submit_with`], each
//! returning a [`QueryHandle`]) and executed together by the blocking
//! batch scheduler [`SessionServer::run_all`]. Three cooperating pieces:
//!
//! 1. **Device-aware admission control.** Every submission is lowered and
//!    placed immediately, and its worst-case GPU working-set footprint is
//!    read from the optimizer's [`StageCost`](crate::cost::StageCost)
//!    estimates (attached by [`Placement::Auto`](crate::Placement) plans,
//!    re-derived from the [`CostModel`] for manual placements). The
//!    scheduler admits queries FIFO while their summed footprints fit the
//!    fleet's smallest GPU memory ([`SessionServer::gpu_budget`]); a
//!    second GPU-hungry query *queues* — counted in
//!    [`QueryOutcome::admission_wait`] — instead of OOM-failing or
//!    thrashing the broadcast working set. A query whose footprint alone
//!    exceeds the budget is admitted when the fleet is otherwise idle, so
//!    it fails (or co-processes) exactly as it would solo, in isolation.
//!
//! 2. **Fair interleaving with per-query sim-time isolation.** Admitted
//!    queries advance round-robin, one placed stage per round, each
//!    through its own [`QueryExec`] whose simulated clock starts at zero
//!    and whose workers are instantiated per stage. Interleaving therefore
//!    cannot perturb results: every query's rows *and* simulated makespan
//!    are bit-identical to a solo [`Session::execute`] run, at any thread
//!    count and any admission order (asserted in `tests/serve.rs`).
//!
//! 3. **A cross-query build-side cache.** Query lowering already memoises
//!    structurally identical build sides *within* a query; the
//!    [`BuildCache`] generalises that across queries, keyed on the
//!    structural fingerprints in
//!    [`LoweredQuery::build_fingerprints`](crate::query::LoweredQuery).
//!    A repeated query re-probing the same dimension tables skips the
//!    build — and, when the table was broadcast by the producing query,
//!    the PCIe broadcast too (skipped builds are counted in
//!    [`QueryReport::builds_cached`]). Entries are validated against the
//!    session catalog's version counter: re-registering a table
//!    invalidates every cached hash table built over its old contents
//!    ([`CacheStats::invalidations`]). The cache can be bounded
//!    ([`SessionServer::with_build_cache_capacity`]): over capacity it
//!    evicts least-recently-used first, counted in
//!    [`CacheStats::evictions`] and [`ServeReport::builds_evicted`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hape_sim::SimTime;
use hape_storage::Table;

use crate::catalog::TableRegistration;
use crate::cost::{CostModel, HtEstimates};
use crate::engine::{ExecConfig, QueryExec, QueryReport};
use crate::error::HapeError;
use crate::exchange::Exchange;
use crate::fault::{FaultPlan, HealthRegistry};
use crate::place::{PlacedPlan, PlacedStage};
use crate::plan::JoinTable;
use crate::query::{LoweredQuery, Query};
use crate::session::Session;
use crate::trace::{Span, SpanKind, TraceRecorder};

/// Identifies one submitted query within its [`SessionServer`]; index into
/// [`ServeReport::outcomes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHandle(usize);

impl QueryHandle {
    /// Submission index (0-based, in submission order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// How one submitted query left the batch — the serving layer's summary
/// on top of the per-query [`QueryOutcome::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Ran to completion without fault-plane intervention.
    Completed,
    /// Ran to completion, but only through the fault plane's recovery
    /// machinery: priced transfer retries and/or mid-query re-placements
    /// on the surviving fleet. Results are still bit-identical to a
    /// fault-free run.
    Degraded {
        /// Priced transfer retries absorbed.
        retries: usize,
        /// Mid-query re-placements absorbed.
        replans: usize,
    },
    /// The query's simulated time exceeded its submission budget
    /// ([`SessionServer::submit_with_budget`]): it stops at the next
    /// stage barrier with the partial report it had — a scheduling
    /// outcome, not an error.
    TimedOut {
        /// The sim-time budget it was submitted under.
        budget: SimTime,
        /// Simulated time elapsed when the deadline was detected.
        elapsed: SimTime,
    },
    /// Canceled via its [`CancelToken`] before finishing; stops at the
    /// next stage barrier with the partial report it had.
    Canceled,
    /// Preparation or execution failed; the error is in
    /// [`QueryOutcome::report`].
    Failed,
}

/// Cooperative cancellation for one submission: obtained from
/// [`SessionServer::cancel_token`], trippable from any thread (the
/// scheduler checks it between stage steps — the serving-layer face of
/// `QueryHandle` cancellation).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: the owning query stops at its next stage
    /// barrier and finishes as [`Outcome::Canceled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once cancellation was requested.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A successfully prepared submission: lowered, placed and footprinted at
/// submit time (failures are stored and reported per query instead).
struct PreparedPlan {
    lowered: LoweredQuery,
    placed: PlacedPlan,
    /// Worst-case per-GPU working-set bytes across the plan's stages —
    /// the admission signal.
    gpu_footprint: u64,
    /// Session catalog version at submit time; cache entries produced by
    /// this query carry it.
    version: u64,
}

/// One pending submission (prepared plan or its preparation error).
struct Prepared {
    handle: QueryHandle,
    name: String,
    prep: Result<PreparedPlan, HapeError>,
    /// Per-query sim-time deadline (`None` = unbounded).
    budget: Option<SimTime>,
    /// Cooperative cancellation flag, shared with handed-out tokens.
    cancel: CancelToken,
}

/// Hit/miss/invalidation counters of the [`BuildCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that found no (valid) entry.
    pub misses: usize,
    /// Entries evicted because the catalog version moved past them.
    pub invalidations: usize,
    /// Entries evicted least-recently-used-first by the capacity bound.
    pub evictions: usize,
}

struct CacheEntry {
    /// Catalog version the table was built under.
    version: u64,
    /// Device health epoch ([`HealthRegistry::epoch`]) at insert time.
    /// A broadcast-resident entry inserted before a GPU failure may name
    /// a device copy that died with the device, so a hit under a newer
    /// epoch downgrades the entry to host-resident (the host `Arc` copy
    /// is always valid) and counts an invalidation.
    epoch: u64,
    /// Whether the producing plan broadcast the table to GPU memory (a
    /// hit then also skips the broadcast: the table is device-resident).
    broadcast: bool,
    /// Recency stamp ([`BuildCache::tick`] at the last hit or insert) —
    /// the LRU eviction order.
    last_used: u64,
    table: Arc<JoinTable>,
}

/// The cross-query build-side cache: structural fingerprint → built hash
/// table, validated against the session catalog's version counter and
/// optionally bounded to `capacity` entries with LRU eviction.
#[derive(Default)]
pub struct BuildCache {
    entries: HashMap<String, CacheEntry>,
    stats: CacheStats,
    /// Maximum live entries (`None` = unbounded).
    capacity: Option<usize>,
    /// Monotonic recency clock; bumped on every hit and insert.
    tick: u64,
}

impl BuildCache {
    /// Look up a fingerprint. A hit requires the entry to have been built
    /// under the *current* catalog version (stale entries are evicted and
    /// counted as invalidations) and the requesting plan to have been
    /// prepared under it too (a plan lowered over an older snapshot must
    /// rebuild from its own snapshot). Returns the table and whether it
    /// is device-resident.
    fn lookup(
        &mut self,
        fingerprint: &str,
        current_version: u64,
        plan_version: u64,
        current_epoch: u64,
    ) -> Option<(Arc<JoinTable>, bool)> {
        self.tick += 1;
        match self.entries.get_mut(fingerprint) {
            Some(e) if e.version == current_version && plan_version == current_version => {
                self.stats.hits += 1;
                e.last_used = self.tick;
                if e.broadcast && e.epoch != current_epoch {
                    // The fleet lost a device since this entry was
                    // broadcast: its device-resident copy cannot be
                    // trusted. Serve the host copy and re-key the entry
                    // to the current epoch.
                    e.broadcast = false;
                    e.epoch = current_epoch;
                    self.stats.invalidations += 1;
                }
                Some((e.table.clone(), e.broadcast))
            }
            Some(e) if e.version != current_version => {
                self.entries.remove(fingerprint);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(
        &mut self,
        fingerprint: String,
        version: u64,
        epoch: u64,
        broadcast: bool,
        table: Arc<JoinTable>,
    ) {
        self.tick += 1;
        self.entries.insert(
            fingerprint,
            CacheEntry { version, epoch, broadcast, last_used: self.tick, table },
        );
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap.max(1) {
                let oldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("cache over capacity is non-empty");
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// What happened to one submitted query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The submission's handle.
    pub handle: QueryHandle,
    /// The query's display name.
    pub query: String,
    /// Scheduler rounds this query spent queued behind the GPU-memory
    /// admission gate before starting (0 = admitted immediately).
    pub admission_wait: usize,
    /// GPU working-set bytes the admission controller reserved for it.
    pub gpu_reserved: u64,
    /// How the query left the batch: completed cleanly, completed
    /// degraded (fault-plane recovery), timed out, canceled, or failed.
    pub outcome: Outcome,
    /// The query's report, bit-identical to a solo run — or its error
    /// (preparation or execution), isolated to this query.
    pub report: Result<QueryReport, HapeError>,
}

/// Aggregate metrics of one [`SessionServer::run_all`] batch — the
/// serving layer's contribution to the tracing + metrics plane
/// ([`mod@crate::trace`]), snapshotted into [`ServeReport::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Queries in the batch (successes and failures).
    pub queries: usize,
    /// Queries whose outcome is an error (preparation or execution).
    pub failures: usize,
    /// Total scheduler rounds queries spent queued behind admission.
    pub admission_waits: usize,
    /// Build stages served from the cross-query cache across the batch.
    pub builds_cached: usize,
    /// Cache entries evicted by the capacity bound during the batch.
    pub builds_evicted: usize,
    /// The build cache's cumulative counters after the batch.
    pub cache: CacheStats,
}

/// The batch result of [`SessionServer::run_all`].
#[derive(Debug)]
pub struct ServeReport {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The GPU admission budget the batch ran under (`None` on a fleet
    /// without GPUs: admission then never queues).
    pub gpu_budget: Option<u64>,
    /// Build-cache entries the capacity bound evicted (LRU-first) while
    /// this batch ran. Always 0 on an unbounded cache.
    pub builds_evicted: usize,
    /// Aggregate batch metrics (always populated, tracing or not).
    pub metrics: ServeMetrics,
}

impl ServeReport {
    /// The outcome of one submission. Panics on a handle from a
    /// different batch (handles are not reused across batches).
    pub fn outcome(&self, handle: QueryHandle) -> &QueryOutcome {
        self.outcomes
            .iter()
            .find(|o| o.handle == handle)
            .unwrap_or_else(|| panic!("handle {handle:?} is not part of this batch"))
    }

    /// The report of one submission.
    pub fn report(&self, handle: QueryHandle) -> &Result<QueryReport, HapeError> {
        &self.outcome(handle).report
    }

    /// Total scheduler rounds any query spent waiting on admission.
    pub fn total_admission_waits(&self) -> usize {
        self.outcomes.iter().map(|o| o.admission_wait).sum()
    }

    /// Total build stages served from the cross-query cache.
    pub fn total_builds_cached(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(|o| o.report.as_ref().ok())
            .map(|r| r.builds_cached)
            .sum()
    }
}

impl std::fmt::Display for ServeReport {
    /// One header line plus one line per query, in submission order —
    /// what concurrency front-ends print for a batch.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let budget = match self.gpu_budget {
            Some(b) => format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64),
            None => "none".to_string(),
        };
        writeln!(
            f,
            "served {} queries (gpu budget {budget}): {} failed, {} admission waits, \
             {} cached builds, {} evicted",
            self.metrics.queries,
            self.metrics.failures,
            self.metrics.admission_waits,
            self.metrics.builds_cached,
            self.metrics.builds_evicted,
        )?;
        for o in &self.outcomes {
            match &o.report {
                Ok(r) => {
                    let tag = match o.outcome {
                        Outcome::Completed => "ok",
                        Outcome::Degraded { .. } => "degrad",
                        Outcome::TimedOut { .. } => "t-out",
                        Outcome::Canceled => "cancel",
                        Outcome::Failed => "error",
                    };
                    writeln!(
                        f,
                        "  {:<12} {:<6} time={:<12} groups={:<6} packets={}cpu+{}gpu \
                         waits={} cached={}",
                        o.query,
                        tag,
                        r.time.to_string(),
                        r.rows.len(),
                        r.packets_cpu,
                        r.packets_gpu,
                        o.admission_wait,
                        r.builds_cached,
                    )?;
                }
                Err(e) => writeln!(f, "  {:<12} error  {e}", o.query)?,
            }
        }
        Ok(())
    }
}

/// A concurrent multi-query server over one [`Session`]: submit many
/// queries, then run them as one admission-controlled, fairly interleaved
/// batch over the session's shared device fleet. See the module docs for
/// the scheduling semantics.
pub struct SessionServer {
    session: Session,
    cache: BuildCache,
    cache_enabled: bool,
    pending: Vec<Prepared>,
    next_id: usize,
    trace: TraceRecorder,
    /// The fault plan every served query runs under (off by default).
    faults: FaultPlan,
    /// Fleet-wide device health, shared across all served queries: a GPU
    /// one query loses permanently stays quarantined for the whole
    /// server's lifetime.
    health: HealthRegistry,
}

impl SessionServer {
    /// A server over a session (build cache enabled, tracing off).
    pub fn new(session: Session) -> Self {
        SessionServer {
            session,
            cache: BuildCache::default(),
            cache_enabled: true,
            pending: Vec::new(),
            next_id: 0,
            trace: TraceRecorder::off(),
            faults: FaultPlan::off(),
            health: HealthRegistry::new(),
        }
    }

    /// Attach a [`TraceRecorder`]: every query executed by
    /// [`SessionServer::run_all`] records its spans and counters into it,
    /// plus the serving layer's own events — admission grants/waits and
    /// cross-query cache hits/misses. Recording never changes results or
    /// simulated makespans.
    pub fn with_trace(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// Arm the fault-injection plane for every query this server runs
    /// (off by default — see [`crate::fault`]). All queries share one
    /// fleet [`HealthRegistry`]: a permanent device loss quarantines the
    /// device for later queries and shrinks the admission budget.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fleet's shared device-health registry.
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// Enable or disable the cross-query build cache (enabled by
    /// default). Disabling makes every batch fully cold — the mode the
    /// determinism tests use, since a cache hit legitimately *shortens* a
    /// query's simulated makespan relative to solo execution.
    pub fn with_build_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Bound the build cache to at most `capacity` entries (at least 1).
    /// Over capacity it evicts the least-recently-used entry — recency is
    /// bumped by hits and inserts — counting [`CacheStats::evictions`].
    /// The default cache is unbounded.
    pub fn with_build_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache.capacity = Some(capacity.max(1));
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The cross-query build cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cached build-side tables currently held.
    pub fn cached_builds(&self) -> usize {
        self.cache.len()
    }

    /// The admission budget: the smallest *surviving* GPU device-memory
    /// capacity in the fleet (`None` without GPUs, or once every GPU is
    /// quarantined). Summed reserved footprints of admitted queries never
    /// exceed it unless a single query alone does (which is then admitted
    /// solo, to fail or co-process exactly as it would outside the
    /// server). Recomputed per admission round, so a device lost
    /// mid-batch tightens (or widens, if it was the smallest) the gate
    /// for everything still queued.
    pub fn gpu_budget(&self) -> Option<u64> {
        let failed = self.health.failed();
        self.session
            .engine()
            .server
            .gpus
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed.contains(i))
            .map(|(_, g)| g.dram_capacity as u64)
            .min()
    }

    /// Register a table under its own name (bumps the catalog version —
    /// see [`SessionServer::register_table`]).
    pub fn register(&mut self, table: Table) {
        self.session.register(table);
    }

    /// Register a table under an explicit name, reporting whether it was
    /// fresh or replaced an existing table. Either way the catalog version
    /// advances, invalidating every cached build-side hash table on its
    /// next lookup — the typed invalidation path for replacing a table
    /// mid-session.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        table: Table,
    ) -> TableRegistration {
        self.session.register_table(name, table)
    }

    /// Submit a query under the session's default config. Lowering,
    /// placement and the admission footprint estimate run now; failures
    /// are stored and surface as the query's [`QueryOutcome::report`]
    /// error (never aborting the batch).
    pub fn submit(&mut self, query: &Query) -> QueryHandle {
        let config = self.session.config().clone();
        self.submit_with(query, &config)
    }

    /// Submit under an explicit per-query config (placement, packet
    /// sizing, threads).
    pub fn submit_with(&mut self, query: &Query, config: &ExecConfig) -> QueryHandle {
        self.submit_inner(query, config, None)
    }

    /// Submit with a per-query simulated-time deadline: once the query's
    /// sim clock exceeds `budget` it stops at the next stage barrier and
    /// finishes as [`Outcome::TimedOut`] with the partial report it had —
    /// a scheduling outcome, not an error.
    pub fn submit_with_budget(
        &mut self,
        query: &Query,
        config: &ExecConfig,
        budget: SimTime,
    ) -> QueryHandle {
        self.submit_inner(query, config, Some(budget))
    }

    fn submit_inner(
        &mut self,
        query: &Query,
        config: &ExecConfig,
        budget: Option<SimTime>,
    ) -> QueryHandle {
        let handle = QueryHandle(self.next_id);
        self.next_id += 1;
        let prep = self.prepare(query, config);
        self.pending.push(Prepared {
            handle,
            name: query.name.clone(),
            prep,
            budget,
            cancel: CancelToken::new(),
        });
        handle
    }

    /// The cancellation token of a pending submission (`None` once the
    /// batch ran or for a foreign handle). Tokens are `Clone + Send`:
    /// trip one from any thread while [`SessionServer::run_all`] blocks
    /// and the query stops at its next stage barrier as
    /// [`Outcome::Canceled`].
    pub fn cancel_token(&self, handle: QueryHandle) -> Option<CancelToken> {
        self.pending.iter().find(|p| p.handle == handle).map(|p| p.cancel.clone())
    }

    /// Request cancellation of a pending submission (sugar for tripping
    /// its [`CancelToken`]). Returns false for an unknown handle.
    pub fn cancel(&self, handle: QueryHandle) -> bool {
        match self.cancel_token(handle) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Queries submitted and not yet run.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    fn prepare(&self, query: &Query, config: &ExecConfig) -> Result<PreparedPlan, HapeError> {
        let lowered = self.session.lower(query)?;
        let placed = self.session.place_lowered(&lowered, config)?;
        // Admission-time static verification: refuse structurally broken
        // plans up front (isolated into this query's outcome, never
        // aborting the batch). Capacity-class diagnostics stay with the
        // admission gate below, which queues rather than refuses.
        if let Err(e) = crate::verify::verify_placed(
            &placed,
            &lowered.catalog,
            &self.session.engine().server,
        ) {
            if let Some(structural) = e.structural() {
                return Err(structural.into());
            }
        }
        let gpu_footprint = gpu_footprint(&self.session, &lowered, &placed);
        Ok(PreparedPlan {
            lowered,
            placed,
            gpu_footprint,
            version: self.session.catalog().version(),
        })
    }

    /// Run every pending submission as one batch: admission-gate on GPU
    /// memory, interleave admitted queries round-robin (one placed stage
    /// per round), serve and harvest the build cache, and return per-query
    /// outcomes in submission order. Blocks until the whole batch is
    /// done; per-query failures are isolated into their outcomes.
    pub fn run_all(&mut self) -> ServeReport {
        let prepared = std::mem::take(&mut self.pending);
        let evictions_before = self.cache.stats.evictions;
        let gpu_budget = self.gpu_budget();
        let cache_enabled = self.cache_enabled;
        let current_version = self.session.catalog().version();
        let engine = self.session.engine();

        // Split preparation failures out; the live plans are owned here so
        // the per-query executions can borrow their catalogs and plans.
        struct Live {
            handle: QueryHandle,
            name: String,
            plan: PreparedPlan,
            budget: Option<SimTime>,
            cancel: CancelToken,
        }
        let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(prepared.len());
        let mut live: Vec<Live> = Vec::new();
        for p in prepared {
            match p.prep {
                Ok(plan) => live.push(Live {
                    handle: p.handle,
                    name: p.name,
                    plan,
                    budget: p.budget,
                    cancel: p.cancel,
                }),
                Err(e) => outcomes.push(QueryOutcome {
                    handle: p.handle,
                    query: p.name,
                    admission_wait: 0,
                    gpu_reserved: 0,
                    outcome: Outcome::Failed,
                    report: Err(e),
                }),
            }
        }

        struct Slot<'a> {
            handle: QueryHandle,
            name: &'a str,
            plan: &'a PreparedPlan,
            budget: Option<SimTime>,
            cancel: &'a CancelToken,
            exec: Option<QueryExec<'a>>,
            report: Option<Result<QueryReport, HapeError>>,
            outcome: Option<Outcome>,
            admission_wait: usize,
            reserved: u64,
        }
        let mut slots: Vec<Slot> = live
            .iter()
            .map(|l| Slot {
                handle: l.handle,
                name: &l.name,
                plan: &l.plan,
                budget: l.budget,
                cancel: &l.cancel,
                exec: None,
                report: None,
                outcome: None,
                admission_wait: 0,
                reserved: 0,
            })
            .collect();

        let mut reserved_total = 0u64;
        loop {
            // ---- Admission: FIFO in submission order, head-of-line
            // blocking (a queued query is never overtaken, so admission
            // order — and thus the cache's build/hit pattern — is
            // deterministic). A query is admitted when its footprint fits
            // the remaining budget, or unconditionally when the fleet is
            // idle (an oversized query then runs solo, failing or
            // co-processing exactly as it would outside the server).
            //
            // The budget is recomputed every round against the *surviving*
            // fleet: a GPU quarantined mid-batch changes the gate for
            // everything still queued.
            let budget = self.gpu_budget().unwrap_or(u64::MAX);
            for slot in slots.iter_mut() {
                if slot.report.is_some() || slot.exec.is_some() {
                    continue;
                }
                let fp = slot.plan.gpu_footprint;
                if fp != 0 && reserved_total != 0 && reserved_total.saturating_add(fp) > budget
                {
                    break; // head of line waits; everyone behind it too
                }
                reserved_total += fp;
                slot.reserved = fp;
                if self.trace.is_enabled() {
                    let now = self.trace.now_ns();
                    self.trace.record(
                        Span::new(
                            SpanKind::Admission,
                            format!("admit {}", slot.name),
                            slot.name,
                        )
                        .at_wall(now, now)
                        .rows(slot.admission_wait as u64, fp),
                    );
                    self.trace.add("admission.grants", 1);
                }
                match engine.begin(&slot.plan.lowered.catalog, &slot.plan.placed) {
                    Ok(exec) => {
                        slot.exec = Some(
                            exec.with_trace(&self.trace)
                                .with_fault_health(&self.faults, self.health.clone()),
                        );
                    }
                    Err(e) => {
                        // Admission failed at execution setup: isolate the
                        // error into this query and release its reservation.
                        slot.report = Some(Err(HapeError::Engine(e)));
                        slot.outcome = Some(Outcome::Failed);
                        reserved_total -= fp;
                        slot.reserved = 0;
                    }
                }
            }

            // ---- One fair round: each admitted query advances one stage.
            let mut progressed = false;
            for slot in slots.iter_mut() {
                let Some(exec) = slot.exec.as_mut() else {
                    // Still queued behind the admission gate: one more
                    // round of waiting.
                    if slot.report.is_none() {
                        slot.admission_wait += 1;
                        self.trace.add("admission.waits", 1);
                    }
                    continue;
                };
                progressed = true;
                // ---- Cancellation: checked between stage steps. The
                // query keeps the partial report it accumulated.
                if slot.cancel.is_canceled() {
                    let exec = slot.exec.take().expect("exec present");
                    slot.report = Some(Ok(exec.finish()));
                    slot.outcome = Some(Outcome::Canceled);
                    reserved_total -= slot.reserved;
                    if self.trace.is_enabled() {
                        self.trace.add("serve.canceled", 1);
                    }
                    continue;
                }
                // ---- Serve the next stage from the cross-query cache if
                // it is a build we already hold: a hash table built by an
                // *earlier* query this round is visible to later ones
                // immediately. The install makes `step` skip the stage —
                // no build work, no broadcast, no simulated time.
                if cache_enabled {
                    if let Some(PlacedStage::Build { name, .. }) =
                        slot.plan.placed.stages.get(exec.stage_index())
                    {
                        if let Some(fpr) = slot.plan.lowered.build_fingerprints.get(name) {
                            let hit = self.cache.lookup(
                                fpr,
                                current_version,
                                slot.plan.version,
                                self.health.epoch(),
                            );
                            if self.trace.is_enabled() {
                                let now = self.trace.now_ns();
                                let (what, key) = if hit.is_some() {
                                    ("hit", "cache.hits")
                                } else {
                                    ("miss", "cache.misses")
                                };
                                self.trace.add(key, 1);
                                self.trace.record(
                                    Span::new(
                                        SpanKind::Cache,
                                        format!("cache {what} {name}"),
                                        slot.name,
                                    )
                                    .at_wall(now, now),
                                );
                            }
                            if let Some((table, resident)) = hit {
                                exec.install_cached_build(name, table, resident);
                            }
                        }
                    }
                }
                let stepped = exec.step();
                let finished = exec.is_done();
                if let Err(e) = stepped {
                    slot.report = Some(Err(HapeError::Engine(e)));
                    slot.outcome = Some(Outcome::Failed);
                } else {
                    // Harvest a freshly built (not cache-served) hash
                    // table into the cache right away, so queries later in
                    // this same round already hit it at admission.
                    if cache_enabled && slot.plan.version == current_version {
                        let done = exec.stage_index() - 1;
                        if let Some(PlacedStage::Build { name, .. }) =
                            slot.plan.placed.stages.get(done)
                        {
                            if let (Some(fpr), Some(table)) = (
                                slot.plan.lowered.build_fingerprints.get(name),
                                exec.built_table(name),
                            ) {
                                if !self.cache.entries.contains_key(fpr) {
                                    self.cache.insert(
                                        fpr.clone(),
                                        slot.plan.version,
                                        self.health.epoch(),
                                        plan_broadcasts(&slot.plan.placed, name),
                                        table,
                                    );
                                }
                            }
                        }
                    }
                    if finished {
                        let report = slot.exec.take().expect("exec present").finish();
                        slot.outcome = Some(if report.retries > 0 || report.replans > 0 {
                            Outcome::Degraded {
                                retries: report.retries,
                                replans: report.replans,
                            }
                        } else {
                            Outcome::Completed
                        });
                        slot.report = Some(Ok(report));
                    } else if let Some(budget) = slot.budget {
                        // ---- Per-query sim-time deadline, checked at the
                        // stage barrier: over budget finishes with the
                        // partial report — a scheduling outcome, not an
                        // error.
                        let over =
                            slot.exec.as_ref().is_some_and(|exec| exec.sim_time() > budget);
                        if over {
                            let exec = slot.exec.take().expect("exec present");
                            let elapsed = exec.sim_time();
                            slot.report = Some(Ok(exec.finish()));
                            slot.outcome = Some(Outcome::TimedOut { budget, elapsed });
                            if self.trace.is_enabled() {
                                self.trace.add("serve.timed_out", 1);
                            }
                        }
                    }
                }
                if slot.report.is_some() {
                    // Done (or failed): release the reservation and drop
                    // the execution state.
                    slot.exec = None;
                    reserved_total -= slot.reserved;
                }
            }
            if !progressed {
                break; // nothing running and nothing admitted: batch done
            }
        }

        for slot in slots {
            outcomes.push(QueryOutcome {
                handle: slot.handle,
                query: slot.name.to_string(),
                admission_wait: slot.admission_wait,
                gpu_reserved: slot.reserved,
                outcome: slot.outcome.expect("scheduler resolves every slot"),
                report: slot.report.expect("scheduler drains every slot"),
            });
        }
        outcomes.sort_by_key(|o| o.handle.0);
        let builds_evicted = self.cache.stats.evictions - evictions_before;
        let metrics = ServeMetrics {
            queries: outcomes.len(),
            failures: outcomes.iter().filter(|o| o.report.is_err()).count(),
            admission_waits: outcomes.iter().map(|o| o.admission_wait).sum(),
            builds_cached: outcomes
                .iter()
                .filter_map(|o| o.report.as_ref().ok())
                .map(|r| r.builds_cached)
                .sum(),
            builds_evicted,
            cache: self.cache.stats(),
        };
        ServeReport { outcomes, gpu_budget, builds_evicted, metrics }
    }
}

/// Whether any stage of the plan broadcasts hash table `ht` into GPU
/// memory — a cache entry produced by such a plan is device-resident, so
/// later hits skip the PCIe broadcast too.
fn plan_broadcasts(placed: &PlacedPlan, ht: &str) -> bool {
    placed.stages.iter().any(|stage| {
        stage.segments().iter().any(|seg| {
            seg.broadcast_moves()
                .any(|e| matches!(e, Exchange::MemMove { table: Some(t), .. } if t == ht))
        })
    })
}

/// Worst-case per-GPU working-set bytes across the plan's stages — the
/// admission signal. Optimizer-placed plans carry their chosen
/// [`StageCost`](crate::cost::StageCost)s; manual placements re-run the
/// cost model's capacity walk over the placed stages. Estimation failures
/// degrade to 0 (admit immediately): execution still capacity-checks for
/// real, so the worst case is solo-equivalent behaviour, never a new
/// failure mode.
fn gpu_footprint(session: &Session, lowered: &LoweredQuery, placed: &PlacedPlan) -> u64 {
    if let Some(costs) = &placed.costs {
        return costs
            .stages
            .iter()
            .filter(|c| c.gpu_capacity.is_some())
            .map(|c| c.gpu_required)
            .max()
            .unwrap_or(0);
    }
    let model = CostModel::new(&session.engine().server, &lowered.catalog);
    let mut hts: HtEstimates = HashMap::new();
    let mut worst = 0u64;
    for stage in &placed.stages {
        let Ok(est) = model.estimate_pipeline(stage.pipeline(), &hts) else {
            return 0;
        };
        let mut devices: Vec<_> = stage.segments().iter().map(|s| s.target).collect();
        if let PlacedStage::CoProcess { gpus, .. } = stage {
            devices.extend(gpus.iter().copied());
        }
        let is_build = matches!(stage, PlacedStage::Build { .. });
        if let Ok(cost) = model.stage_cost(&est, &devices, is_build) {
            if cost.gpu_capacity.is_some() {
                worst = worst.max(cost.gpu_required);
            }
        }
        if let PlacedStage::Build { name, .. } = stage {
            hts.insert(name.clone(), est.table_estimate());
        }
    }
    worst
}
