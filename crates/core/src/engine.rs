//! The HAPE engine: discrete-event execution of placed plans over the
//! simulated server.
//!
//! Execution follows §4.2/§5 as a generic interpretation of a
//! [`PlacedPlan`]: each placed stage instantiates one
//! [`crate::provider::DeviceProvider`] worker per operator
//! instance of its segments (a [`CpuWorker`] per core, a [`GpuWorker`] per
//! GPU), the stage's [`Exchange::Router`](crate::exchange::Exchange)
//! distributes source packets over *all* workers, and each worker realises
//! the exchanges on its own input edge — GPU workers charge the mem-move
//! across their PCIe link, broadcast the probed hash tables into device
//! memory first (the paper's Q9 capacity constraint, §6.4), and swap in
//! the GPU code-generation backend (the device crossing). Every worker
//! folds into a private aggregation state; states merge at the end — no
//! cross-device shared mutable structures, which is the paper's answer to
//! missing system-wide cache coherence.
//!
//! The interpreter never branches on [`Placement`]: placement decisions
//! are made once by [`crate::place::place`] and read back from the IR.

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use hape_ops::agg::AggState;
use hape_ops::{AggSpec, GroupKey};
use hape_sim::topology::{DeviceId, Server};
use hape_sim::{CpuCostModel, Fidelity, SimTime};
use hape_storage::Batch;

use hape_join::{coprocess_join_on, BuildProbeVariant, CoprocessConfig, JoinInput, OutputMode};

use crate::catalog::Catalog;
use crate::error::PlanError;
use crate::exchange::{CandidateLoad, Exchange, Router, RoutingPolicy};
use crate::fault::{FaultPlan, FaultSession, HealthRegistry, PacketFault};
use crate::place::{participants, place, place_on, PlacedPlan, PlacedStage, Segment};
use crate::plan::{JoinTable, PipeOp, Pipeline, QueryPlan};
use crate::provider::{
    gather_matches, run_ops, CostClass, CpuWorker, DeviceProvider, GpuWorker, PacketWork,
    Scratch, TableStore,
};
use crate::runtime;
use crate::trace::{Span, SpanKind, TraceCtx, TraceRecorder};
use crate::traits::DeviceType;

pub use crate::error::EngineError;

/// Which devices execute the stream stage.
///
/// Since the placement pass, the manual arms are *sugar only*: they select
/// the participating devices in [`crate::place::participants`] and nothing
/// on the execution path branches on them. [`Placement::Auto`] instead
/// invokes the cost-based optimizer ([`crate::optimize::optimize`]), which
/// picks per-stage device subsets from the hardware model — the engine
/// interprets the resulting [`crate::place::PlacedPlan`] exactly like a
/// manually placed one. New device mixes (per-GPU subsets, remote
/// backends) extend the placement/optimizer passes, not the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All CPU cores, no GPUs (Proteus CPU in Figure 8).
    CpuOnly,
    /// GPUs only (Proteus GPU).
    GpuOnly,
    /// Everything (Proteus Hybrid).
    Hybrid,
    /// Cost-based: the optimizer picks per-stage device subsets from the
    /// hardware model (compute throughput, interconnect cost, device
    /// memory capacity).
    Auto,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Placement::CpuOnly => "cpu",
            Placement::GpuOnly => "gpu",
            Placement::Hybrid => "hybrid",
            Placement::Auto => "auto",
        })
    }
}

/// A placement name that [`Placement`]'s `FromStr` did not recognise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlacementError {
    /// The unrecognised input.
    pub input: String,
}

impl std::fmt::Display for ParsePlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown placement {:?} (expected cpu, gpu, hybrid or auto)", self.input)
    }
}

impl std::error::Error for ParsePlacementError {}

impl std::str::FromStr for Placement {
    type Err = ParsePlacementError;

    /// Parse a CLI-style placement name: `cpu`/`cpu-only`, `gpu`/
    /// `gpu-only`, `hybrid`, `auto` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" | "cpu-only" | "cpuonly" => Ok(Placement::CpuOnly),
            "gpu" | "gpu-only" | "gpuonly" => Ok(Placement::GpuOnly),
            "hybrid" => Ok(Placement::Hybrid),
            "auto" => Ok(Placement::Auto),
            _ => Err(ParsePlacementError { input: s.to_string() }),
        }
    }
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Device placement.
    pub placement: Placement,
    /// Router policy for the stream stage.
    pub policy: RoutingPolicy,
    /// Rows per packet (`None` = auto: see
    /// [`ExecConfig::auto_packet_rows`]).
    pub packet_rows: Option<usize>,
    /// Data-plane threads (`None` = the `HAPE_THREADS` environment
    /// variable, else the host's available parallelism — see
    /// [`crate::runtime::resolve_threads`]). A pure wall-clock knob:
    /// simulated makespans and result rows are bit-identical at any value.
    pub threads: Option<usize>,
    /// The execution tracing plane's recorder (disabled by default).
    /// When enabled ([`ExecConfig::with_trace`]), runs through
    /// [`Engine::run`] / [`crate::session::Session`] record query, stage
    /// and packet spans plus counters into it — a pure observer: results
    /// and simulated makespans stay bit-identical to untraced runs.
    pub trace: TraceRecorder,
    /// The fault-injection plane's schedule (off by default, zero-cost
    /// when disabled — the tracer's discipline). When armed
    /// ([`ExecConfig::with_faults`]), runs fire the plan's deterministic
    /// faults and recover through priced retries and mid-query
    /// re-placement on the surviving fleet (see [`crate::fault`]).
    pub faults: FaultPlan,
}

impl ExecConfig {
    /// Default config for a placement.
    pub fn new(placement: Placement) -> Self {
        ExecConfig {
            placement,
            policy: RoutingPolicy::LoadAware,
            packet_rows: None,
            threads: None,
            trace: TraceRecorder::off(),
            faults: FaultPlan::off(),
        }
    }

    /// Explicit packet sizing.
    pub fn with_packet_rows(mut self, rows: usize) -> Self {
        self.packet_rows = Some(rows);
        self
    }

    /// Explicit data-plane thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Record spans and counters into `trace` while queries run under
    /// this config (see [`crate::trace`]). Clone the recorder before
    /// handing it over to snapshot the trace afterwards.
    pub fn with_trace(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// Arm the fault-injection plane: queries run under this config fire
    /// `faults`' deterministic schedule and recover through the
    /// [`crate::fault`] machinery (priced retries, re-placement on the
    /// surviving fleet). Triggers are simulated-time/packet-ordinal
    /// conditions, so a fixed plan stays bit-identical across thread
    /// counts.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The engine's packet-sizing rule for a stream of `rows` rows over
    /// `shares` worker packet shares: the `explicit` override when set,
    /// else about four packets per share, clamped to [2K, 1M] rows. The
    /// cost model's packet-size estimate ([`crate::cost`]) mirrors this
    /// rule, and the `figures` binary / `tpch_hybrid` example expose the
    /// override as `--packet-rows` for sweeps.
    pub fn auto_packet_rows(rows: usize, shares: usize, explicit: Option<usize>) -> usize {
        if let Some(r) = explicit {
            return r.max(1);
        }
        (rows / (4 * shares.max(1))).clamp(2 << 10, 1 << 20)
    }
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Aggregated result rows, sorted by group key.
    pub rows: Vec<(GroupKey, Vec<f64>)>,
    /// End-to-end simulated latency.
    pub time: SimTime,
    /// Aggregate CPU busy time.
    pub cpu_busy: SimTime,
    /// Aggregate GPU busy time.
    pub gpu_busy: SimTime,
    /// Host-to-device bytes moved (packet mem-moves and hash-table
    /// broadcasts, across all stages).
    pub h2d_bytes: u64,
    /// *Stream-stage* packets routed to CPU workers (build-stage packets
    /// are not counted — builds are plumbing, not the measured workload).
    pub packets_cpu: usize,
    /// *Stream-stage* packets routed to GPUs.
    pub packets_gpu: usize,
    /// Build stages served from the serving layer's cross-query build
    /// cache instead of executing (always 0 for solo [`Engine::run`] /
    /// [`Engine::run_placed`] runs, which start cold).
    pub builds_cached: usize,
    /// Transient transfer retries priced into the makespan (0 unless the
    /// fault plane fired a `TransferError`).
    pub retries: usize,
    /// Mid-query re-placements on the surviving fleet (0 unless the fault
    /// plane fired a permanent loss / OOM the query recovered from).
    pub replans: usize,
}

/// The engine.
#[derive(Debug, Clone)]
pub struct Engine {
    /// The server topology.
    pub server: Server,
    /// GPU memory-model fidelity.
    pub fidelity: Fidelity,
}

/// Aggregated result rows, sorted by group key.
type AggRows = Vec<(GroupKey, Vec<f64>)>;

/// What one placed stage reported back to the interpreter.
struct StageOutcome {
    outputs: Vec<Batch>,
    end: SimTime,
    cpu_busy: SimTime,
    gpu_busy: SimTime,
    h2d_bytes: u64,
    packets_cpu: usize,
    packets_gpu: usize,
}

impl Engine {
    /// Engine over a server, analytic GPU fidelity.
    pub fn new(server: Server) -> Self {
        Engine { server, fidelity: Fidelity::Analytic }
    }

    /// Place and run `plan` against `catalog` under `cfg`: sugar for the
    /// placement step followed by [`Engine::run_placed`]. Manual
    /// placements go through [`crate::place::place`];
    /// [`Placement::Auto`] goes through the cost-based optimizer
    /// ([`crate::optimize::optimize`]), which consumes the catalog's scan
    /// statistics to pick per-stage device subsets. Either way the
    /// interpreter sees only the placed IR.
    ///
    /// The plan is structurally re-validated by the placement pass, so
    /// hand-assembled physical plans that bypass [`QueryPlan::try_new`]
    /// surface [`EngineError::InvalidPlan`] instead of panicking
    /// mid-execution.
    pub fn run(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
        cfg: &ExecConfig,
    ) -> Result<QueryReport, EngineError> {
        let placed = match cfg.placement {
            Placement::Auto => crate::optimize::optimize(plan, catalog, cfg, &self.server)?,
            _ => place(plan, cfg, &self.server)?,
        };
        let mut exec =
            self.begin(catalog, &placed)?.with_trace(&cfg.trace).with_faults(&cfg.faults);
        while !exec.is_done() {
            exec.step()?;
        }
        Ok(exec.finish())
    }

    /// Interpret a placed plan: stages in order, each over the workers its
    /// segments instantiate. Sugar for driving a [`QueryExec`] to
    /// completion — the serving layer ([`crate::serve::SessionServer`])
    /// instead steps many `QueryExec`s round-robin over the shared fleet.
    pub fn run_placed(
        &self,
        catalog: &Catalog,
        placed: &PlacedPlan,
    ) -> Result<QueryReport, EngineError> {
        let mut exec = self.begin(catalog, placed)?;
        while !exec.is_done() {
            exec.step()?;
        }
        Ok(exec.finish())
    }

    /// Start interpreting a placed plan without driving it to completion:
    /// the returned [`QueryExec`] owns every piece of per-query execution
    /// state (the run's table store, its simulated clock, busy/packet
    /// counters, partial results) and advances one stage per
    /// [`QueryExec::step`]. The engine itself stays stateless across
    /// queries — workers (and their clocks, aggregation states and
    /// calibrated estimates) are instantiated per stage inside the step —
    /// so one engine (one simulated fleet) serves any number of
    /// interleaved `QueryExec`s re-entrantly.
    ///
    /// Fallible since the fault-plane work: a set-but-invalid
    /// `HAPE_THREADS` surfaces as [`EngineError::InvalidConfig`] here
    /// instead of silently falling back.
    pub fn begin<'a>(
        &'a self,
        catalog: &'a Catalog,
        placed: &'a PlacedPlan,
    ) -> Result<QueryExec<'a>, EngineError> {
        // Debug builds run the static verifier on every plan the engine
        // begins and abort on *structural* diagnostics — IR the pass
        // pipeline must never emit. Conditions the interpreter rejects
        // with typed runtime errors (absent devices, unbuilt probes,
        // capacity) are left to it. See `crate::verify`.
        #[cfg(debug_assertions)]
        crate::verify::debug_check_placed(placed, catalog, &self.server);
        Ok(QueryExec {
            engine: self,
            catalog,
            placed: Cow::Borrowed(placed),
            threads: runtime::resolve_threads(placed.threads)?,
            tables: TableStore::new(),
            resident: HashSet::new(),
            clock: SimTime::ZERO,
            cpu_busy: SimTime::ZERO,
            gpu_busy: SimTime::ZERO,
            h2d_bytes: 0,
            packets_cpu: 0,
            packets_gpu: 0,
            builds_cached: 0,
            rows: Vec::new(),
            next_stage: 0,
            trace: TraceRecorder::off(),
            wall_start_ns: 0,
            faults: FaultSession::disabled(),
        })
    }

    /// Materialise a (non-aggregating) pipeline on the CPU workers against
    /// an explicit table store. Returns the output batch, the completion
    /// time (relative to `start`) and the CPU busy time.
    ///
    /// Historically this was the hook the hand-written Q9 hybrid runner
    /// built on; the optimizer-planned co-processing stage now
    /// materialises its prefix internally
    /// ([`crate::place::PlacedStage::CoProcess`]), and this hook remains
    /// for benchmarks and custom drivers that stage pipelines explicitly.
    pub fn materialize_cpu(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<(Batch, SimTime, SimTime), EngineError> {
        if pipeline.agg.is_some() {
            return Err(EngineError::InvalidPlan(PlanError::BuildWithAggregate {
                stage: pipeline.source.clone(),
            }));
        }
        let segments = self.cpu_segments();
        let out = self.run_stage(
            catalog,
            pipeline,
            &segments,
            RoutingPolicy::LoadAware,
            None,
            tables,
            &HashSet::new(),
            start,
            None,
            runtime::resolve_threads(None)?,
            &FaultSession::disabled(),
            &TraceCtx::disabled(),
        )?;
        Ok((concat_outputs(out.outputs), out.end, out.cpu_busy))
    }

    /// Build a named hash table by materialising `pipeline` on the CPU.
    pub fn build_join_table(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        key_col: usize,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<(Arc<JoinTable>, SimTime, SimTime), EngineError> {
        let (batch, end, busy) = self.materialize_cpu(catalog, pipeline, tables, start)?;
        Ok((Arc::new(JoinTable::build(batch, key_col)), end, busy))
    }

    /// Ad-hoc CPU-side segments for the explicit materialisation hooks
    /// (which predate placement and take a bare pipeline).
    fn cpu_segments(&self) -> Vec<Segment> {
        crate::place::participants(Placement::CpuOnly, &self.server)
            .into_iter()
            .map(|d| Segment {
                target: d,
                traits: crate::place::segment_traits(d, &self.server),
                exchanges: Vec::new(),
            })
            .collect()
    }

    /// Instantiate the workers a segment list describes: one
    /// [`CpuWorker`] per core of a CPU segment, one [`GpuWorker`] per GPU
    /// segment. A segment targeting a device this server lacks is the
    /// typed [`EngineError::DeviceNotPresent`]. Tables named in `resident`
    /// are already in device memory (the serving layer's cross-query
    /// cache installed them): GPU workers still account their footprint
    /// but skip the broadcast transfer and partition prep.
    ///
    /// The fault plane hooks in here: a segment targeting a quarantined
    /// GPU is the typed [`EngineError::DeviceFailed`] (which the stepper
    /// recovers from by re-placing on the surviving fleet), and a GPU
    /// under an active `DeviceSlow` fault gets its PCIe link bandwidth
    /// derated before the worker prices anything.
    fn workers_for(
        &self,
        segments: &[Segment],
        agg: Option<&AggSpec>,
        resident: &HashSet<String>,
        faults: &FaultSession,
    ) -> Result<Vec<Box<dyn DeviceProvider>>, EngineError> {
        let mut workers: Vec<Box<dyn DeviceProvider>> = Vec::new();
        for seg in segments {
            match seg.target {
                DeviceId::Cpu(socket) => {
                    let spec = self.server.cpus.get(socket).ok_or_else(|| {
                        EngineError::DeviceNotPresent { device: format!("cpu{socket}") }
                    })?;
                    let model = CpuCostModel::new(spec.clone(), spec.cores);
                    for core in 0..spec.cores {
                        workers.push(Box::new(CpuWorker::new(
                            socket,
                            core,
                            model.clone(),
                            agg.map(|a| AggState::new(a.clone())),
                        )));
                    }
                }
                DeviceId::Gpu(idx) => {
                    if faults.is_active() && faults.is_excluded(idx) {
                        return Err(EngineError::DeviceFailed { device: format!("gpu{idx}") });
                    }
                    let (spec, link) =
                        self.server.gpus.get(idx).zip(self.server.pcie.get(idx)).ok_or_else(
                            || EngineError::DeviceNotPresent { device: format!("gpu{idx}") },
                        )?;
                    let mut link = link.clone();
                    if faults.is_active() {
                        if let Some(f) = faults.health().slow_factor(idx) {
                            // A degraded link: every transfer this stage
                            // prices — broadcasts, packets, build pulls —
                            // pays the derated bandwidth.
                            link.bw /= f;
                        }
                    }
                    // The segment's broadcast mem-move exchanges are the
                    // authoritative list of tables the worker installs.
                    let broadcast: Vec<String> = seg
                        .broadcast_moves()
                        .filter_map(|e| match e {
                            Exchange::MemMove { table: Some(t), .. } => Some(t.clone()),
                            _ => None,
                        })
                        .collect();
                    workers.push(Box::new(
                        GpuWorker::new(
                            idx,
                            spec.clone(),
                            link,
                            self.fidelity,
                            agg.map(|a| AggState::new(a.clone())),
                            broadcast,
                        )
                        .with_resident(resident.clone()),
                    ));
                }
            }
        }
        Ok(workers)
    }

    /// Run one placed stage: instantiate its workers and route the source
    /// packets over them.
    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        segments: &[Segment],
        policy: RoutingPolicy,
        agg: Option<&AggSpec>,
        tables: &TableStore,
        resident: &HashSet<String>,
        start: SimTime,
        packet_rows: Option<usize>,
        threads: usize,
        faults: &FaultSession,
        ctx: &TraceCtx,
    ) -> Result<StageOutcome, EngineError> {
        let mut workers = self.workers_for(segments, agg, resident, faults)?;
        self.run_workers(
            catalog,
            pipeline,
            &mut workers,
            policy,
            tables,
            start,
            packet_rows,
            threads,
            faults,
            ctx,
        )
    }

    /// Run a placed co-processing stage
    /// ([`crate::place::PlacedStage::CoProcess`], §5):
    ///
    /// 1. the CPU segments' device providers run the pipeline *prefix*
    ///    (every operator before the final probe) through the ordinary
    ///    packet loop, materialising the intermediate;
    /// 2. the intermediate is co-partitioned against the final probe's
    ///    hash table and joined via `hape_join::coprocess_join_on` over
    ///    the stage's GPU lanes — each lane priced and capacity-checked
    ///    against its own spec, link and budget;
    /// 3. the match pairs are gathered into the same physical layout an
    ///    in-pipeline probe would produce, and the remaining operators
    ///    plus the terminal aggregation fold on the CPU workers.
    ///
    /// All failures are typed [`EngineError`]s — the skew/capacity cases
    /// surface as [`EngineError::OversizedCoPartition`], never a panic.
    #[allow(clippy::too_many_arguments)]
    fn run_coprocess_stage(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        ht: &str,
        segments: &[Segment],
        policy: RoutingPolicy,
        gpus: &[DeviceId],
        tables: &TableStore,
        resident: &HashSet<String>,
        start: SimTime,
        agg_spec: &AggSpec,
        packet_rows: Option<usize>,
        threads: usize,
        faults: &FaultSession,
        ctx: &TraceCtx,
    ) -> Result<(AggRows, StageOutcome), EngineError> {
        // The co-processed join drives its GPU lanes outside the generic
        // packet loop, so quarantined lanes are checked up front.
        if faults.is_active() {
            for d in gpus {
                if let DeviceId::Gpu(g) = d {
                    if faults.is_excluded(*g) {
                        return Err(EngineError::DeviceFailed { device: format!("gpu{g}") });
                    }
                }
            }
        }
        // ---- Split the pipeline at its final probe.
        let probe_idx = match pipeline.last_probe() {
            Some((idx, probe_ht)) if probe_ht == ht => idx,
            _ => return Err(EngineError::InvalidCoProcessStage { table: ht.to_string() }),
        };
        let PipeOp::JoinProbe { key_col, build_payload_cols, .. } = &pipeline.ops[probe_idx]
        else {
            return Err(EngineError::InvalidCoProcessStage { table: ht.to_string() });
        };
        let jt = tables
            .get(ht)
            .ok_or_else(|| EngineError::HashTableNotBuilt { table: ht.to_string() })?;

        // ---- 1. CPU prefix through the device providers.
        let prefix = Pipeline {
            source: pipeline.source.clone(),
            ops: pipeline.ops[..probe_idx].to_vec(),
            agg: None,
        };
        let wall_prefix_start = ctx.now_ns();
        let pre = self.run_stage(
            catalog,
            &prefix,
            segments,
            policy,
            None,
            tables,
            resident,
            start,
            packet_rows,
            threads,
            faults,
            ctx,
        )?;
        let inter = concat_outputs(pre.outputs);
        let wall_prefix_end = ctx.now_ns();

        // ---- 2. Co-partition + single-pass GPU joins on the stage's
        // lanes. Sides follow the §5 convention: the (smaller) build side
        // is R, the streamed intermediate is S; values are row indices so
        // the match pairs address both batches.
        let mut joined = Batch::empty();
        let mut join_time = SimTime::ZERO;
        let mut first_join_done = SimTime::ZERO;
        let mut cpu_partition_time = SimTime::ZERO;
        let mut gpu_busy = SimTime::ZERO;
        let mut h2d_bytes = 0u64;
        let mut packets_gpu = 0usize;
        if inter.rows() > 0 {
            // Zero-copy: the co-partitioner reads the Arc-backed key
            // column slice directly; no per-stage key vector is built.
            let probe_keys: &[i32] = inter.col(*key_col).as_i32();
            let probe_vals: Vec<u32> = (0..inter.rows() as u32).collect();
            let build_vals: Vec<u32> = (0..jt.rows() as u32).collect();
            let gpu_ids: Vec<usize> = gpus
                .iter()
                .filter_map(|d| match d {
                    DeviceId::Gpu(g) => Some(*g),
                    DeviceId::Cpu(_) => None,
                })
                .collect();
            let cfg = CoprocessConfig {
                n_gpus: gpu_ids.len(),
                cpu_workers: segments.iter().map(|s| s.traits.dop).sum(),
                variant: BuildProbeVariant::Sm,
                mode: OutputMode::MatchIndices,
                fidelity: self.fidelity,
                threads,
            };
            let rep = coprocess_join_on(
                &self.server,
                &gpu_ids,
                JoinInput::new(&jt.keys, &build_vals),
                JoinInput::new(probe_keys, &probe_vals),
                &cfg,
            )?;
            if let Some((build_rows, probe_rows)) = rep.outcome.pairs.as_ref() {
                joined = gather_matches(&inter, jt, probe_rows, build_rows, build_payload_cols);
            }
            join_time = rep.outcome.time;
            first_join_done = rep.first_join_done;
            cpu_partition_time = rep.cpu_partition_time;
            gpu_busy = rep.gpu_busy;
            h2d_bytes = rep.h2d_bytes;
            packets_gpu = rep.per_gpu_assignments.iter().sum();
            if ctx.is_enabled() {
                // One co-partition assignment per lane: the per-lane
                // packet counters the profile's packet breakdown reads.
                for (g, n) in gpu_ids.iter().zip(&rep.per_gpu_assignments) {
                    ctx.add(&format!("packets.worker.gpu{g}"), *n as u64);
                }
                ctx.add("h2d.packet_bytes", rep.h2d_bytes);
            }
        }
        let join_end = pre.end + join_time;
        let wall_join_end = ctx.now_ns();

        // ---- 3. Remaining operators + aggregation on the CPU workers.
        // Match pairs stream back as co-partitions complete, so the fold
        // overlaps the join phase (§5's pipelining) — but it cannot start
        // before the first co-partition's join lands *and* the CPUs have
        // finished the co-partitioning passes; the stage ends when both
        // the last join and the fold have finished.
        let fold_start = pre.end + first_join_done.max(cpu_partition_time);
        let suffix_ops = &pipeline.ops[probe_idx + 1..];
        let (rows, end, fold_cpu_busy, fold_h2d, fold_packets_cpu);
        if suffix_ops.is_empty() {
            // The §5 shape: the co-processed probe feeds the aggregation
            // directly, so the match pairs stream through registers into
            // the fold (fused consumption) — expression evaluation plus
            // group-table random accesses, spread over the CPU workers; no
            // rematerialised scan of the joined rows.
            let socket = segments
                .iter()
                .find_map(|s| match s.target {
                    DeviceId::Cpu(socket) => Some(socket),
                    DeviceId::Gpu(_) => None,
                })
                .ok_or_else(|| EngineError::InvalidCoProcessStage { table: ht.to_string() })?;
            let spec = self.server.cpus.get(socket).ok_or_else(|| {
                EngineError::DeviceNotPresent { device: format!("cpu{socket}") }
            })?;
            let model = CpuCostModel::new(spec.clone(), spec.cores);
            let dop: usize = segments.iter().map(|s| s.traits.dop).sum();
            // The fold rides the same worker pool as the packet loop:
            // deterministic per-dop chunks folded in parallel, partial
            // states merged in chunk order (thread-count-independent),
            // charged exactly what the single-pass fold charges — the
            // same expression work plus random accesses into the final
            // group table.
            let mut state = AggState::new(agg_spec.clone());
            let fold_busy = if joined.rows() > 0 {
                let chunk_rows = ExecConfig::auto_packet_rows(joined.rows(), dop, None);
                let chunks = joined.split(chunk_rows);
                let partials = runtime::scatter(
                    threads,
                    chunks.len(),
                    |_| (),
                    |i, _scratch| {
                        let mut partial = AggState::new(agg_spec.clone());
                        partial.update(&chunks[i]);
                        partial
                    },
                );
                for p in &partials {
                    state.merge(p);
                }
                hape_ops::cpu::agg_cost(
                    agg_spec,
                    joined.rows() as u64,
                    state.n_groups(),
                    &model,
                )
            } else {
                SimTime::ZERO
            };
            let fold_time = fold_busy / (dop.max(1) as f64 * 0.9);
            rows = state.finish();
            end = (fold_start + fold_time).max(join_end);
            fold_cpu_busy = fold_busy;
            fold_h2d = 0;
            fold_packets_cpu = 0;
        } else {
            // Operators remain after the co-processed probe: the joined
            // rows genuinely re-enter the generic packet loop on the CPU
            // workers.
            let suffix = Pipeline {
                source: pipeline.source.clone(),
                ops: suffix_ops.to_vec(),
                agg: pipeline.agg.clone(),
            };
            let mut workers = self.workers_for(segments, Some(agg_spec), resident, faults)?;
            let shares: usize = workers.iter().map(|w| w.packet_share()).sum();
            let packets = if joined.rows() > 0 {
                joined.split(ExecConfig::auto_packet_rows(joined.rows(), shares, packet_rows))
            } else {
                Vec::new()
            };
            let post = self.packet_loop(
                &packets,
                &suffix,
                &mut workers,
                policy,
                tables,
                fold_start,
                threads,
                faults,
                ctx,
            )?;
            let mut merged = AggState::new(agg_spec.clone());
            for w in &workers {
                if let Some(a) = w.agg() {
                    merged.merge(a);
                }
            }
            rows = merged.finish();
            end = post.end.max(join_end);
            fold_cpu_busy = post.cpu_busy;
            fold_h2d = post.h2d_bytes;
            fold_packets_cpu = post.packets_cpu;
        }

        if ctx.is_enabled() {
            // The §5 phase spans: CPU prefix, the co-partitioned GPU
            // lanes, and the overlapping CPU fold.
            let wall_fold_end = ctx.now_ns();
            ctx.record(
                Span::new(SpanKind::Phase, "coprocess prefix", "")
                    .at_sim(start, pre.end)
                    .at_wall(wall_prefix_start, wall_prefix_end)
                    .rows(0, inter.rows() as u64),
            );
            ctx.record(
                Span::new(SpanKind::Phase, format!("coprocess lanes {ht}"), "")
                    .at_sim(pre.end, join_end)
                    .at_wall(wall_prefix_end, wall_join_end)
                    .rows(inter.rows() as u64, joined.rows() as u64),
            );
            ctx.record(
                Span::new(SpanKind::Phase, "coprocess fold", "")
                    .at_sim(fold_start, end)
                    .at_wall(wall_join_end, wall_fold_end)
                    .rows(joined.rows() as u64, rows.len() as u64),
            );
        }

        Ok((
            rows,
            StageOutcome {
                outputs: Vec::new(),
                end,
                cpu_busy: pre.cpu_busy + cpu_partition_time + fold_cpu_busy,
                gpu_busy: pre.gpu_busy + gpu_busy,
                h2d_bytes: pre.h2d_bytes + h2d_bytes + fold_h2d,
                packets_cpu: pre.packets_cpu + fold_packets_cpu,
                packets_gpu,
            },
        ))
    }

    /// The generic packet loop over a catalog source: one router, N
    /// `dyn DeviceProvider` workers, no knowledge of device classes beyond
    /// the trait.
    #[allow(clippy::too_many_arguments)]
    fn run_workers(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        workers: &mut [Box<dyn DeviceProvider>],
        policy: RoutingPolicy,
        tables: &TableStore,
        start: SimTime,
        packet_rows: Option<usize>,
        threads: usize,
        faults: &FaultSession,
        ctx: &TraceCtx,
    ) -> Result<StageOutcome, EngineError> {
        let table = catalog.lookup(&pipeline.source)?;
        if workers.is_empty() {
            return Err(EngineError::NoWorkers { placement: "placed stage".to_string() });
        }
        let shares: usize = workers.iter().map(|w| w.packet_share()).sum();
        let rows_per_packet = ExecConfig::auto_packet_rows(table.rows(), shares, packet_rows);
        // Stateful aggregates consume whole per-user runs, so their packet
        // boundaries snap to user boundaries (plan validation guarantees
        // only filters precede the op, making its user column a valid
        // source-table index). The split is computed once, before any
        // worker sees a packet, so it is identical at every thread count.
        let packets = match pipeline.stateful_agg() {
            Some(agg) => hape_ops::stateful::split_user_aligned(
                &table.data,
                agg.user_col(),
                rows_per_packet,
            ),
            None => table.data.split(rows_per_packet),
        };
        self.packet_loop(
            &packets, pipeline, workers, policy, tables, start, threads, faults, ctx,
        )
    }

    /// The packet loop proper, over pre-split packets — also driven
    /// directly by the co-processing stage for its post-join remainder
    /// (whose input is an in-memory batch, not a catalog table).
    ///
    /// Execution is split into the engine's two planes:
    ///
    /// 1. **Data plane (parallel)** — every packet runs the canonical
    ///    fused-kernel pass ([`run_ops`]) exactly once on the
    ///    [`runtime`] pool and is priced per worker *cost class*
    ///    ([`DeviceProvider::charge`]). Results are pure per packet.
    /// 2. **Control plane (sequential)** — the router replays today's
    ///    exact semantics on the coordinator: per-packet candidate
    ///    `ready_at` state, the pick, and the commit against the routed
    ///    worker's simulated clocks ([`DeviceProvider::commit_packet`]),
    ///    in packet order. Simulated makespans are therefore
    ///    bit-identical at any thread count.
    /// 3. **Data plane again** — each worker folds the packets routed to
    ///    it into its partial aggregation state, in routed order, one
    ///    fold job per worker on the same pool; partial states merge at
    ///    the stage barrier in worker order as before.
    #[allow(clippy::too_many_arguments)]
    fn packet_loop(
        &self,
        packets: &[Batch],
        pipeline: &Pipeline,
        workers: &mut [Box<dyn DeviceProvider>],
        policy: RoutingPolicy,
        tables: &TableStore,
        start: SimTime,
        threads: usize,
        faults: &FaultSession,
        ctx: &TraceCtx,
    ) -> Result<StageOutcome, EngineError> {
        if workers.is_empty() {
            return Err(EngineError::NoWorkers { placement: "placed stage".to_string() });
        }
        let traced = ctx.is_enabled();

        // ---- Broadcast the probed hash tables along each worker's input
        // exchanges (a no-op for host-local workers) and check capacities.
        // An armed `BroadcastOom` fault fires here: the allocation for the
        // broadcast copy fails, the device is quarantined, and the typed
        // `DeviceFailed` hands recovery to the stepper's re-placement
        // loop.
        let mut h2d_bytes = 0u64;
        for w in workers.iter_mut() {
            if faults.is_active() {
                if let Some(g) = w.gpu_index() {
                    if faults.oom_at_install(g) {
                        if traced {
                            ctx.record(Span::new(
                                SpanKind::Fault,
                                format!("broadcast OOM on gpu{g}"),
                                "",
                            ));
                            ctx.add("fault.injected", 1);
                        }
                        return Err(EngineError::DeviceFailed { device: format!("gpu{g}") });
                    }
                }
            }
            h2d_bytes += w.install_tables(pipeline, tables, start)?;
        }
        if traced && h2d_bytes > 0 {
            ctx.add("h2d.broadcast_bytes", h2d_bytes);
        }

        // ---- Cost classes: one charge per packet per distinct class,
        // not per worker (all cores of a socket share a model).
        let mut classes: Vec<CostClass> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(workers.len());
        let mut reps: Vec<usize> = Vec::new();
        for (wi, w) in workers.iter().enumerate() {
            let c = w.cost_class();
            match classes.iter().position(|x| *x == c) {
                Some(i) => class_of.push(i),
                None => {
                    classes.push(c);
                    reps.push(wi);
                    class_of.push(classes.len() - 1);
                }
            }
        }

        // ---- Phase 1, data plane: kernels once per packet, priced per
        // class, on the worker pool.
        let agg_spec = pipeline.agg.as_ref();
        let shared: &[Box<dyn DeviceProvider>] = workers;
        // Per-packet wall interval + the pool thread that computed it —
        // measured on the data plane, shipped back through the same mpsc
        // plumbing as the results, recorded on the control plane.
        // Observability only: wall values never touch simulated state.
        type PacketWall = (u64, u64, usize);
        let charged = runtime::scatter(
            threads,
            packets.len(),
            |t| (Scratch::new(), t),
            |i, state: &mut (Scratch, usize)| {
                let wall_start = if traced { ctx.now_ns() } else { 0 };
                let work = run_ops(packets[i].clone(), pipeline, tables, &mut state.0)?;
                let costs = reps
                    .iter()
                    .map(|&r| shared[r].charge(&work, agg_spec, tables))
                    .collect::<Result<Vec<SimTime>, EngineError>>()?;
                let wall = (wall_start, if traced { ctx.now_ns() } else { 0 }, state.1);
                Ok::<(PacketWork, Vec<SimTime>, PacketWall), EngineError>((work, costs, wall))
            },
        );
        // First error in packet order — the same packet the sequential
        // loop would have tripped on.
        let mut works: Vec<(PacketWork, Vec<SimTime>, PacketWall)> =
            Vec::with_capacity(charged.len());
        for r in charged {
            works.push(r?);
        }

        // ---- Phase 2, control plane: sequential routing + sim-time
        // accounting, replaying worker `ready_at` state in packet order.
        let mut router = Router::new(policy);
        let mut end = start;
        let mut packets_cpu = 0usize;
        let mut packets_gpu = 0usize;
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
        for (i, (work, costs, wall)) in works.iter().enumerate() {
            let bytes = work.bytes.max(1);
            let candidates: Vec<CandidateLoad> = workers
                .iter()
                .map(|w| CandidateLoad {
                    ready_at: w.ready_at(start, bytes),
                    est_ns_per_byte: w.est_ns_per_byte(),
                })
                .collect();
            let pick = router.pick(&packets[i], &candidates);
            let sim_ready = candidates[pick].ready_at;
            // ---- Fault plane: triggers keyed on the routed GPU's
            // control-plane packet ordinal, checked here on the
            // sequential control plane — injection points are therefore
            // identical at any thread count. A `TransferError` prices its
            // retries (backoff + the re-sent transfer) onto the worker's
            // compute resource before the commit; a `GpuFailed` aborts
            // the stage with the recoverable `DeviceFailed`.
            if faults.is_active() {
                if let Some(g) = workers[pick].gpu_index() {
                    match faults.on_gpu_packet(g) {
                        Some(PacketFault::Fail) => {
                            if traced {
                                ctx.record(Span::new(
                                    SpanKind::Fault,
                                    format!("gpu{g} failed at packet {i}"),
                                    "",
                                ));
                                ctx.add("fault.injected", 1);
                            }
                            return Err(EngineError::DeviceFailed {
                                device: format!("gpu{g}"),
                            });
                        }
                        Some(PacketFault::Transfer { failures }) => {
                            let policy = faults.retry_policy();
                            if failures > policy.max_retries {
                                return Err(EngineError::TransferRetriesExhausted {
                                    device: format!("gpu{g}"),
                                    attempts: policy.max_retries,
                                });
                            }
                            let mut delay = SimTime::ZERO;
                            for attempt in 1..=failures {
                                delay += policy.backoff(attempt)
                                    + workers[pick].transfer_duration(bytes);
                            }
                            workers[pick].charge_fault_delay(start, delay);
                            faults.add_retries(failures as usize);
                            if traced {
                                ctx.record(Span::new(
                                    SpanKind::Fault,
                                    format!(
                                        "transfer to gpu{g} retried {failures}x at packet {i}"
                                    ),
                                    "",
                                ));
                                ctx.add("fault.injected", 1);
                                ctx.add("fault.retries", failures as u64);
                            }
                        }
                        None => {}
                    }
                }
            }
            let outcome = workers[pick].commit_packet(work, costs[class_of[pick]], start);
            end = end.max(outcome.done);
            h2d_bytes += outcome.h2d_bytes;
            match workers[pick].device() {
                DeviceType::Cpu => packets_cpu += 1,
                DeviceType::Gpu => packets_gpu += 1,
            }
            assignments[pick].push(i);
            if traced {
                // Recorded here, on the sequential control plane, so span
                // order is packet order at any thread count. The sim
                // interval is the routed worker's occupancy; the wall
                // interval is the data-plane kernel pass measured above.
                let lane = workers[pick].id().to_string();
                ctx.record(
                    Span::new(SpanKind::Packet, format!("packet {i}"), "")
                        .lane(lane.clone())
                        .pool_thread(wall.2)
                        .at_sim(sim_ready, outcome.done)
                        .at_wall(wall.0, wall.1)
                        .rows(packets[i].rows() as u64, work.out.rows() as u64),
                );
                ctx.add(&format!("packets.worker.{lane}"), 1);
                let class = match workers[pick].device() {
                    DeviceType::Cpu => "cpu",
                    DeviceType::Gpu => "gpu",
                };
                ctx.add(&format!("packets.class.{class}"), 1);
                if outcome.h2d_bytes > 0 {
                    ctx.add("h2d.packet_bytes", outcome.h2d_bytes);
                }
                for op in &work.ops {
                    ctx.add(&format!("rows.{}.in", op.label()), op.rows_in());
                    ctx.add(&format!("rows.{}.out", op.label()), op.rows_out());
                }
            }
        }

        // ---- Phase 3: stage outputs (build), or the per-worker fold
        // jobs (stream) — data plane again, one job per worker, each
        // folding its packets in routed order.
        let mut outputs = Vec::new();
        if agg_spec.is_none() {
            for (work, _, _) in works {
                if work.out.rows() > 0 {
                    outputs.push(work.out);
                }
            }
        } else {
            let mut batches: Vec<Option<Batch>> =
                works.into_iter().map(|(w, _, _)| Some(w.out)).collect();
            let jobs: Vec<(&mut Box<dyn DeviceProvider>, Vec<Batch>)> = workers
                .iter_mut()
                .zip(&assignments)
                .filter(|(_, idxs)| !idxs.is_empty())
                .map(|(w, idxs)| {
                    let mine = idxs
                        .iter()
                        .map(|&i| batches[i].take().expect("packet routed once"))
                        .collect();
                    (w, mine)
                })
                .collect();
            runtime::drain(threads, jobs, |(w, mine)| {
                for b in &mine {
                    if b.rows() > 0 {
                        w.fold_packet(b);
                    }
                }
            });
        }

        let busy_of = |device: DeviceType| {
            workers.iter().filter(|w| w.device() == device).map(|w| w.busy()).sum()
        };
        Ok(StageOutcome {
            outputs,
            end,
            cpu_busy: busy_of(DeviceType::Cpu),
            gpu_busy: busy_of(DeviceType::Gpu),
            h2d_bytes,
            packets_cpu,
            packets_gpu,
        })
    }
}

/// The per-query execution state of one in-flight placed plan: the table
/// store accumulating built hash tables, the query's private simulated
/// clock (always starting at [`SimTime::ZERO`], regardless of what else
/// the fleet is serving), busy/packet counters and partial results.
///
/// Created by [`Engine::begin`]; advanced one placed stage at a time by
/// [`QueryExec::step`]; consumed by [`QueryExec::finish`]. Because all
/// worker state (clocks, aggregation states, calibrated estimates) is
/// instantiated per stage *inside* the step, interleaving steps of many
/// `QueryExec`s over the same engine — as the serving layer's scheduler
/// does — leaves every query's simulated makespan and result rows
/// bit-identical to running it solo.
pub struct QueryExec<'a> {
    engine: &'a Engine,
    catalog: &'a Catalog,
    // Borrowed for the common fault-free run; re-placement on the
    // surviving fleet swaps in an owned degraded plan mid-query.
    placed: Cow<'a, PlacedPlan>,
    threads: usize,
    tables: TableStore,
    resident: HashSet<String>,
    clock: SimTime,
    cpu_busy: SimTime,
    gpu_busy: SimTime,
    h2d_bytes: u64,
    packets_cpu: usize,
    packets_gpu: usize,
    builds_cached: usize,
    rows: AggRows,
    next_stage: usize,
    trace: TraceRecorder,
    wall_start_ns: u64,
    faults: FaultSession,
}

impl<'a> QueryExec<'a> {
    /// Record this execution into `trace` (see [`crate::trace`]): a query
    /// span over the whole run, one stage span per [`QueryExec::step`] —
    /// carrying the optimizer's estimate when the plan has one — and
    /// per-packet spans from the packet loop. A disabled recorder keeps
    /// this a no-op; either way results and simulated times are
    /// bit-identical to an untraced execution.
    pub fn with_trace(mut self, trace: &TraceRecorder) -> Self {
        self.trace = trace.clone();
        self.wall_start_ns = trace.now_ns();
        self
    }

    /// Arm the fault plane for this execution with a private health
    /// registry (solo runs — each query sees its own fleet health).
    pub fn with_faults(self, plan: &FaultPlan) -> Self {
        self.with_fault_health(plan, HealthRegistry::new())
    }

    /// Arm the fault plane with a *shared* health registry — the serving
    /// layer's: a device a query loses permanently stays quarantined for
    /// every later admission on the same [`crate::serve::SessionServer`].
    pub fn with_fault_health(mut self, plan: &FaultPlan, health: HealthRegistry) -> Self {
        self.faults = FaultSession::new(plan.clone(), health);
        self
    }

    /// The query's private simulated clock (sim time elapsed so far) —
    /// what the serving layer's per-query deadline checks against.
    pub fn sim_time(&self) -> SimTime {
        self.clock
    }

    /// True once every placed stage has run (or been served from cache).
    pub fn is_done(&self) -> bool {
        self.next_stage >= self.placed.stages.len()
    }

    /// Index of the next stage [`QueryExec::step`] would run.
    pub fn stage_index(&self) -> usize {
        self.next_stage
    }

    /// The placed plan this execution interprets — the degraded
    /// re-placement once mid-query recovery has swapped one in.
    pub fn placed(&self) -> &PlacedPlan {
        &self.placed
    }

    /// Pre-install a built hash table under `name`, as the serving
    /// layer's cross-query cache does at admission: the matching
    /// [`PlacedStage::Build`] stage is then skipped entirely — no build
    /// work, no clock advance — and counted in
    /// [`QueryReport::builds_cached`]. With `device_resident`, GPU
    /// workers additionally treat the table as already broadcast: its
    /// footprint still counts against device memory, but the PCIe
    /// transfer and partition prep are skipped.
    pub fn install_cached_build(
        &mut self,
        name: &str,
        table: Arc<JoinTable>,
        device_resident: bool,
    ) {
        if self.tables.insert(name.to_string(), table).is_none() {
            self.builds_cached += 1;
        }
        if device_resident {
            self.resident.insert(name.to_string());
        }
    }

    /// A hash table built (or cache-installed) so far, by name — how the
    /// serving layer harvests freshly built tables into its cache.
    pub fn built_table(&self, name: &str) -> Option<Arc<JoinTable>> {
        self.tables.get(name).cloned()
    }

    /// Run the next placed stage to completion. A no-op once
    /// [`QueryExec::is_done`]; errors leave the execution positioned
    /// after the failed stage (per-query failure isolation: other
    /// in-flight queries are unaffected).
    ///
    /// With the fault plane armed, the stage-barrier faults fire first
    /// and a stage lost to a (recoverable) [`EngineError::DeviceFailed`]
    /// is re-placed on the surviving fleet and re-run from this barrier —
    /// bounded by [`crate::fault::RetryPolicy::max_replans`], after which the typed
    /// [`EngineError::RecoveryFailed`] surfaces. Aborted attempts leave
    /// no trace in the query's clock or counters: all accumulation
    /// happens after the stage result is `Ok`.
    pub fn step(&mut self) -> Result<(), EngineError> {
        if self.next_stage >= self.placed.stages.len() {
            return Ok(());
        }
        let idx = self.next_stage;
        self.next_stage += 1;
        if !self.faults.is_active() {
            return self.run_stage_at(idx);
        }
        self.fire_barrier_faults(idx);
        loop {
            match self.run_stage_at(idx) {
                Err(EngineError::DeviceFailed { device }) => {
                    let policy = self.faults.retry_policy();
                    if self.faults.replans() >= policy.max_replans as usize {
                        return Err(EngineError::RecoveryFailed {
                            reason: format!(
                                "replan budget ({}) exhausted after losing {device}",
                                policy.max_replans
                            ),
                        });
                    }
                    self.replan_surviving(idx, &device)?;
                }
                other => return other,
            }
        }
    }

    /// Interpret one placed stage by index — the body of the fault-free
    /// fast path, and the retried unit of the recovery loop. Clones the
    /// stage up front: the plan may be `Cow::Owned` after a re-placement
    /// and the interpretation mutates `self` throughout.
    fn run_stage_at(&mut self, idx: usize) -> Result<(), EngineError> {
        let Some(stage) = self.placed.stages.get(idx).cloned() else {
            return Ok(());
        };
        let stage = &stage;
        let engine = self.engine;
        let catalog = self.catalog;
        let ctx = TraceCtx::new(&self.trace, &self.placed.name, idx);
        let sim_start = self.clock;
        let wall_start = ctx.now_ns();
        // Observed source cardinality — the stage span's rows_in.
        let rows_in = if ctx.is_enabled() {
            catalog.lookup(stage.pipeline().source.as_str()).map_or(0, |t| t.rows() as u64)
        } else {
            0
        };
        let stage_name: String;
        let rows_out: u64;
        match stage {
            PlacedStage::Build { name, key_col, pipeline, segments, .. } => {
                if self.tables.contains_key(name) {
                    // Served from the cross-query cache at admission:
                    // nothing to build, no simulated time passes.
                    if ctx.is_enabled() {
                        ctx.add("cache.builds_served", 1);
                        ctx.record(
                            Span::new(SpanKind::Cache, format!("cached build {name}"), "")
                                .at_sim(self.clock, self.clock)
                                .at_wall(wall_start, ctx.now_ns()),
                        );
                    }
                    return Ok(());
                }
                let out = engine.run_stage(
                    catalog,
                    pipeline,
                    segments,
                    stage.policy(),
                    None,
                    &self.tables,
                    &self.resident,
                    self.clock,
                    None,
                    self.threads,
                    &self.faults,
                    &ctx,
                )?;
                self.clock = out.end;
                self.cpu_busy += out.cpu_busy;
                self.gpu_busy += out.gpu_busy;
                self.h2d_bytes += out.h2d_bytes;
                let batch = concat_outputs(out.outputs);
                let table = Arc::new(JoinTable::build(batch, *key_col));
                stage_name = format!("build {name}");
                rows_out = table.rows() as u64;
                self.tables.insert(name.clone(), table);
            }
            PlacedStage::Stream { pipeline, segments, .. } => {
                let agg_spec = pipeline.agg.as_ref().ok_or_else(|| {
                    EngineError::InvalidPlan(PlanError::StreamWithoutAggregate {
                        name: pipeline.source.clone(),
                    })
                })?;
                let mut workers = engine.workers_for(
                    segments,
                    Some(agg_spec),
                    &self.resident,
                    &self.faults,
                )?;
                let out = engine.run_workers(
                    catalog,
                    pipeline,
                    &mut workers,
                    stage.policy(),
                    &self.tables,
                    self.clock,
                    self.placed.packet_rows,
                    self.threads,
                    &self.faults,
                    &ctx,
                )?;
                self.clock = out.end;
                self.cpu_busy += out.cpu_busy;
                self.gpu_busy += out.gpu_busy;
                self.h2d_bytes += out.h2d_bytes;
                self.packets_cpu += out.packets_cpu;
                self.packets_gpu += out.packets_gpu;
                // ---- Merge partial aggregates (cheap: group counts
                // are small), in worker order for determinism.
                let mut merged = AggState::new(agg_spec.clone());
                for w in &workers {
                    if let Some(a) = w.agg() {
                        merged.merge(a);
                    }
                }
                self.rows = merged.finish();
                stage_name = format!("stream {}", pipeline.source);
                rows_out = self.rows.len() as u64;
            }
            PlacedStage::CoProcess { pipeline, ht, segments, gpus, .. } => {
                let agg_spec = pipeline.agg.as_ref().ok_or_else(|| {
                    EngineError::InvalidPlan(PlanError::StreamWithoutAggregate {
                        name: pipeline.source.clone(),
                    })
                })?;
                let (merged_rows, out) = engine.run_coprocess_stage(
                    catalog,
                    pipeline,
                    ht,
                    segments,
                    stage.policy(),
                    gpus,
                    &self.tables,
                    &self.resident,
                    self.clock,
                    agg_spec,
                    self.placed.packet_rows,
                    self.threads,
                    &self.faults,
                    &ctx,
                )?;
                self.clock = out.end;
                self.cpu_busy += out.cpu_busy;
                self.gpu_busy += out.gpu_busy;
                self.h2d_bytes += out.h2d_bytes;
                self.packets_cpu += out.packets_cpu;
                self.packets_gpu += out.packets_gpu;
                self.rows = merged_rows;
                stage_name = format!("coprocess {ht}");
                rows_out = self.rows.len() as u64;
            }
        }
        if ctx.is_enabled() {
            // The predicted-vs-observed record: the optimizer's chosen
            // estimate (Auto plans only) rides the stage span next to the
            // observed simulated elapsed time and row counts.
            let mut span = Span::new(SpanKind::Stage, stage_name, "")
                .at_sim(sim_start, self.clock)
                .at_wall(wall_start, ctx.now_ns())
                .rows(rows_in, rows_out);
            if let Some(est) = self.placed.costs.as_ref().and_then(|c| c.stages.get(idx)) {
                span = span.estimate(est.clone());
            }
            ctx.record(span);
        }
        Ok(())
    }

    /// Fire the fault plan's stage-/time-triggered faults at this stage
    /// barrier (before any of the stage's workers exist): permanent
    /// losses land in the health registry, slow-downs derate links, OOMs
    /// arm for the next broadcast install.
    fn fire_barrier_faults(&self, idx: usize) {
        let fired = self.faults.begin_stage(idx, self.clock);
        if fired.is_empty() || !self.trace.is_enabled() {
            return;
        }
        let ctx = TraceCtx::new(&self.trace, &self.placed.name, idx);
        for spec in &fired {
            ctx.record(Span::new(
                SpanKind::Fault,
                format!("injected {:?} on gpu{} at stage {idx} barrier", spec.kind, spec.gpu),
                "",
            ));
            ctx.add("fault.injected", 1);
        }
    }

    /// Mid-query re-placement after losing `lost`: re-derive the logical
    /// plan, route it around the quarantined devices through the ordinary
    /// placement passes, gate the result on the static verifier's
    /// *structural* diagnostics, price one backoff onto the sim clock and
    /// swap the degraded plan in. The stage at `idx` then re-runs from
    /// its barrier; completed builds replay as cache hits from their host
    /// copies (device-resident copies on the old fleet are dropped).
    fn replan_surviving(&mut self, idx: usize, lost: &str) -> Result<(), EngineError> {
        let excluded = self.faults.excluded();
        let server = &self.engine.server;
        let survives = |d: &DeviceId| match d {
            DeviceId::Gpu(g) => !excluded.contains(g),
            DeviceId::Cpu(_) => true,
        };
        let logical = self.placed.logical();
        let mut cfg = ExecConfig::new(Placement::Auto);
        cfg.policy =
            self.placed.stages.get(idx).map_or(RoutingPolicy::LoadAware, |s| s.policy());
        cfg.packet_rows = self.placed.packet_rows;
        cfg.threads = self.placed.threads;
        let replaced = if self.placed.costs.is_some() {
            // The optimizer placed this plan: re-optimize every stage
            // against the surviving pool.
            let pool: Vec<DeviceId> =
                participants(Placement::Auto, server).into_iter().filter(survives).collect();
            crate::optimize::optimize_on(&logical, self.catalog, &cfg, server, &pool)
        } else {
            // Manual placement: keep each stage's device set minus the
            // quarantined GPUs; a stage left empty falls back to the
            // surviving CPUs.
            let cpu_survivors = participants(Placement::CpuOnly, server);
            let subsets: Vec<Vec<DeviceId>> = self
                .placed
                .stage_devices()
                .into_iter()
                .map(|devs| {
                    let kept: Vec<DeviceId> =
                        devs.into_iter().filter(|d| survives(d)).collect();
                    if kept.is_empty() {
                        cpu_survivors.clone()
                    } else {
                        kept
                    }
                })
                .collect();
            place_on(&logical, &cfg, server, &subsets)
        };
        let new_placed = replaced.map_err(|e| EngineError::RecoveryFailed {
            reason: format!("lost {lost}; re-placement refused: {e}"),
        })?;
        // Gate resumption on the static verifier, but only refuse on
        // *structural* diagnostics — capacity diagnostics stay with the
        // interpreter so a degraded plan that genuinely cannot fit fails
        // with the same typed error a fault-free run would produce.
        if let Err(e) = crate::verify::verify_placed(&new_placed, self.catalog, server) {
            if e.structural().is_some() {
                return Err(EngineError::RecoveryFailed {
                    reason: format!("lost {lost}; degraded plan failed verification: {e}"),
                });
            }
        }
        self.resident.clear();
        // Recovery is priced: one backoff per replan attempt lands on the
        // query's simulated clock (see the cost-formula table).
        let policy = self.faults.retry_policy();
        let attempt = self.faults.replans() as u32 + 1;
        self.clock += policy.backoff(attempt);
        self.faults.note_replan();
        if self.trace.is_enabled() {
            let ctx = TraceCtx::new(&self.trace, &self.placed.name, idx);
            ctx.record(Span::new(
                SpanKind::Fault,
                format!("replanned stage {idx} on surviving fleet after losing {lost}"),
                "",
            ));
            ctx.add("fault.replans", 1);
        }
        self.placed = Cow::Owned(new_placed);
        Ok(())
    }

    /// Consume the execution into its final report.
    pub fn finish(self) -> QueryReport {
        if self.trace.is_enabled() {
            self.trace.record(
                Span::new(SpanKind::Query, self.placed.name.clone(), self.placed.name.clone())
                    .at_sim(SimTime::ZERO, self.clock)
                    .at_wall(self.wall_start_ns, self.trace.now_ns())
                    .rows(0, self.rows.len() as u64),
            );
        }
        QueryReport {
            rows: self.rows,
            time: self.clock,
            cpu_busy: self.cpu_busy,
            gpu_busy: self.gpu_busy,
            h2d_bytes: self.h2d_bytes,
            packets_cpu: self.packets_cpu,
            packets_gpu: self.packets_gpu,
            builds_cached: self.builds_cached,
            retries: self.faults.retries(),
            replans: self.faults.replans(),
        }
    }
}

/// Concatenate packet outputs into one batch (column-wise).
fn concat_outputs(outputs: Vec<Batch>) -> Batch {
    match outputs.len() {
        0 => Batch::empty(),
        1 => outputs.into_iter().next().expect("len checked"),
        _ => {
            let n_cols = outputs[0].columns.len();
            let cols = (0..n_cols)
                .map(|c| {
                    let parts: Vec<_> = outputs.iter().map(|b| b.columns[c].clone()).collect();
                    hape_storage::Column::concat(&parts)
                })
                .collect();
            Batch::new(cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinAlgo, Pipeline, Stage};
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_storage::datagen::gen_key_fk_table;

    fn setup() -> (Catalog, QueryPlan) {
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 1));
        catalog.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 2));
        let plan = QueryPlan::try_new(
            "test",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![
                            (AggFunc::Count, Expr::col(0)),
                            (AggFunc::Sum, Expr::col(2)),
                        ])),
                },
            ],
        )
        .unwrap();
        (catalog, plan)
    }

    #[test]
    fn all_placements_agree_on_results() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let mut results = Vec::new();
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine.run(&catalog, &plan, &ExecConfig::new(placement)).unwrap();
            assert_eq!(rep.rows[0].1[0], (1 << 14) as f64, "{placement:?}");
            results.push(rep.rows.clone());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn hybrid_uses_both_device_kinds() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert!(rep.packets_cpu > 0, "no CPU packets");
        assert!(rep.packets_gpu > 0, "no GPU packets");
        assert!(rep.h2d_bytes > 0);
        assert!(rep.gpu_busy.as_ns() > 0.0);
        assert!(rep.cpu_busy.as_ns() > 0.0);
    }

    #[test]
    fn gpu_only_moves_everything_over_pcie() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        assert_eq!(rep.packets_cpu, 0);
        assert!(rep.packets_gpu > 0);
        // Fact table + hash-table broadcast both crossed PCIe.
        let fact_bytes = catalog.expect("fact").bytes();
        assert!(rep.h2d_bytes > fact_bytes);
    }

    #[test]
    fn oversized_hash_table_rejected_on_gpu() {
        let (catalog, plan) = setup();
        // GPU memory scaled to ~96 KiB: the 16K-entry table cannot fit.
        let engine = Engine::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0));
        let err =
            engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap_err();
        assert!(matches!(err, EngineError::GpuMemoryExceeded { .. }), "{err}");
        // CPU-only still works.
        assert!(engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).is_ok());
    }

    #[test]
    fn missing_table_reported() {
        let (_, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let err = engine
            .run(&Catalog::new(), &plan, &ExecConfig::new(Placement::CpuOnly))
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingTable(_)));
    }

    #[test]
    fn gpu_placement_on_cpu_only_server_is_a_typed_error() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::cpu_only());
        let err =
            engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap_err();
        assert!(matches!(err, EngineError::NoWorkers { .. }), "{err}");
        // Hybrid degrades gracefully to the CPUs that do exist.
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert_eq!(rep.packets_gpu, 0);
        assert!(rep.packets_cpu > 0);
    }

    #[test]
    fn placed_plan_against_smaller_server_is_a_typed_error() {
        // Place against the 2-GPU testbed, run on a 1-GPU server: the
        // second GPU segment must surface DeviceNotPresent, not panic.
        let (catalog, plan) = setup();
        let placed = crate::place::place(
            &plan,
            &ExecConfig::new(Placement::GpuOnly),
            &Server::paper_testbed(),
        )
        .unwrap();
        let engine = Engine::new(Server::single_gpu());
        let err = engine.run_placed(&catalog, &placed).unwrap_err();
        assert!(matches!(err, EngineError::DeviceNotPresent { .. }), "{err}");
    }

    #[test]
    fn unbuilt_hash_table_is_a_typed_error_not_a_panic() {
        // A hand-assembled placed plan whose stream probes a table no
        // stage built — only constructible by bypassing plan validation.
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let mut placed =
            crate::place::place(&plan, &ExecConfig::new(Placement::CpuOnly), &engine.server)
                .unwrap();
        placed.stages.remove(0); // drop the build stage
        let err = engine.run_placed(&catalog, &placed).unwrap_err();
        assert!(
            matches!(err, EngineError::HashTableNotBuilt { ref table } if table == "dim_ht"),
            "{err}"
        );
    }

    #[test]
    fn placement_parses_and_displays_round_trip() {
        for p in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto] {
            assert_eq!(p.to_string().parse::<Placement>().unwrap(), p);
        }
        assert_eq!("CPU-only".parse::<Placement>().unwrap(), Placement::CpuOnly);
        assert_eq!("gpuonly".parse::<Placement>().unwrap(), Placement::GpuOnly);
        assert_eq!("AUTO".parse::<Placement>().unwrap(), Placement::Auto);
        let err = "both".parse::<Placement>().unwrap_err();
        assert!(err.to_string().contains("both"), "{err}");
    }

    #[test]
    fn auto_runs_through_the_optimizer_and_matches_manual_results() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let auto = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Auto)).unwrap();
        let cpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        assert_eq!(auto.rows, cpu.rows);
        // Handing Auto to the bare placement pass is a typed error.
        let err = crate::place::place(
            &plan,
            &ExecConfig::new(Placement::Auto),
            &Server::paper_testbed(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::AutoWithoutOptimizer), "{err}");
    }

    #[test]
    fn deterministic_execution() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let a = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        let b = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.time, b.time);
        assert_eq!(a.packets_gpu, b.packets_gpu);
    }
}
