//! The HAPE engine: discrete-event execution of query plans over the
//! simulated server.
//!
//! Execution follows §4.2/§5: a plan's stages run in order (pipeline
//! breakers); within a stage the source table is split into packets and a
//! CPU-side [`Router`] distributes them over the configured worker set —
//! CPU cores, GPUs, or both (hybrid). GPU-bound packets cross PCIe via
//! `mem-move`s; built hash tables are broadcast to every participating GPU
//! before the probe stage and must fit device memory (Q9's GPU-only failure
//! mode). Every worker folds into a private aggregation state; states merge
//! at the end — no cross-device shared mutable structures, which is the
//! paper's answer to missing system-wide cache coherence.

use std::collections::HashMap;
use std::sync::Arc;

use hape_ops::agg::AggState;
use hape_ops::GroupKey;
use hape_sim::des::Resource;
use hape_sim::interconnect::Link;
use hape_sim::topology::Server;
use hape_sim::{CpuCostModel, Fidelity, GpuSim, Region, SimTime};
use hape_storage::Batch;

use crate::catalog::Catalog;
use crate::error::PlanError;
use crate::exchange::{CandidateLoad, Router, RoutingPolicy};
use crate::plan::{JoinAlgo, JoinTable, PipeOp, Pipeline, QueryPlan, Stage};
use crate::provider::{CpuProvider, GpuProvider, TableStore};

/// Which devices execute the stream stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All CPU cores, no GPUs (Proteus CPU in Figure 8).
    CpuOnly,
    /// GPUs only (Proteus GPU).
    GpuOnly,
    /// Everything (Proteus Hybrid).
    Hybrid,
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Device placement.
    pub placement: Placement,
    /// Router policy for the stream stage.
    pub policy: RoutingPolicy,
    /// Rows per packet (`None` = auto: ~4 packets per worker).
    pub packet_rows: Option<usize>,
}

impl ExecConfig {
    /// Default config for a placement.
    pub fn new(placement: Placement) -> Self {
        ExecConfig { placement, policy: RoutingPolicy::LoadAware, packet_rows: None }
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// The plan's hash tables exceed GPU memory (with working space) —
    /// the paper's Q9 GPU-only failure (§6.4).
    GpuMemoryExceeded {
        /// Bytes the tables (plus working space) require.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A table referenced by the plan is missing from the catalog.
    MissingTable(String),
    /// The plan failed structural validation before execution started.
    InvalidPlan(PlanError),
    /// The placement selects a device class the server does not have.
    NoWorkers {
        /// The placement description.
        placement: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::GpuMemoryExceeded { required, capacity } => {
                write!(f, "hash tables require {required} bytes but GPU memory is {capacity}")
            }
            EngineError::MissingTable(t) => write!(f, "missing table {t:?}"),
            EngineError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            EngineError::NoWorkers { placement } => {
                write!(f, "placement {placement} selects no available workers")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidPlan(e) => Some(e),
            _ => None,
        }
    }
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Aggregated result rows, sorted by group key.
    pub rows: Vec<(GroupKey, Vec<f64>)>,
    /// End-to-end simulated latency.
    pub time: SimTime,
    /// Aggregate CPU busy time.
    pub cpu_busy: SimTime,
    /// Aggregate GPU busy time.
    pub gpu_busy: SimTime,
    /// Host-to-device bytes moved.
    pub h2d_bytes: u64,
    /// Packets processed by CPU workers.
    pub packets_cpu: usize,
    /// Packets processed by GPUs.
    pub packets_gpu: usize,
}

/// Working space multiplier for GPU-resident hash tables (buffer
/// management, as the paper notes when sizing Q9, §6.4). Calibrated so
/// Q9's broadcast tables exceed the SF-scaled GPU memory even with the
/// front-end's minimal pushed-down projections, reproducing the paper's
/// GPU-only failure mode.
const GPU_HT_WORKING_FACTOR: f64 = 2.5;

/// The engine.
#[derive(Debug, Clone)]
pub struct Engine {
    /// The server topology.
    pub server: Server,
    /// GPU memory-model fidelity.
    pub fidelity: Fidelity,
}

struct GpuWorker {
    res: Resource,
    provider: GpuProvider,
    link: Link,
    agg: Option<AggState>,
    est_ns_per_byte: f64,
}

struct CpuWorker {
    res: Resource,
    provider: CpuProvider,
    agg: Option<AggState>,
    est_ns_per_byte: f64,
}

impl Engine {
    /// Engine over a server, analytic GPU fidelity.
    pub fn new(server: Server) -> Self {
        Engine { server, fidelity: Fidelity::Analytic }
    }

    /// Run `plan` against `catalog` under `cfg`.
    ///
    /// The plan is structurally re-validated first, so hand-assembled
    /// physical plans that bypass [`QueryPlan::try_new`] surface
    /// [`EngineError::InvalidPlan`] instead of panicking mid-execution.
    pub fn run(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
        cfg: &ExecConfig,
    ) -> Result<QueryReport, EngineError> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        let mut tables: TableStore = TableStore::new();
        let mut clock = SimTime::ZERO;
        let mut cpu_busy = SimTime::ZERO;
        let mut gpu_busy = SimTime::ZERO;
        let mut h2d_bytes = 0u64;
        let mut packets_cpu = 0usize;
        let mut packets_gpu = 0usize;
        let mut rows = Vec::new();

        for stage in &plan.stages {
            match stage {
                Stage::Build { name, key_col, pipeline } => {
                    // Builds run on the CPU side (dimension pipelines are
                    // scan-light); the probe stage moves the tables to the
                    // devices that need them.
                    let (outputs, end, busy) =
                        self.run_cpu_stage(catalog, pipeline, &tables, clock, None)?;
                    cpu_busy += busy;
                    clock = end;
                    let batch = concat_outputs(outputs);
                    tables.insert(name.clone(), Arc::new(JoinTable::build(batch, *key_col)));
                }
                Stage::Stream { pipeline } => {
                    let report =
                        self.run_stream_stage(catalog, pipeline, &tables, clock, cfg)?;
                    clock = report.0;
                    cpu_busy += report.1;
                    gpu_busy += report.2;
                    h2d_bytes += report.3;
                    packets_cpu += report.4;
                    packets_gpu += report.5;
                    rows = report.6;
                }
            }
        }

        Ok(QueryReport {
            rows,
            time: clock,
            cpu_busy,
            gpu_busy,
            h2d_bytes,
            packets_cpu,
            packets_gpu,
        })
    }

    /// Materialise a (non-aggregating) pipeline on the CPU workers against
    /// an explicit table store. Returns the output batch, the completion
    /// time (relative to `start`) and the CPU busy time.
    ///
    /// This is the hook intra-operator co-processing builds on: the TPC-H
    /// Q9 hybrid runner materialises the lineitem-side intermediate here
    /// and hands it to the co-processing join (§5).
    pub fn materialize_cpu(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<(Batch, SimTime, SimTime), EngineError> {
        if pipeline.agg.is_some() {
            return Err(EngineError::InvalidPlan(PlanError::BuildWithAggregate {
                stage: pipeline.source.clone(),
            }));
        }
        let (outputs, end, busy) =
            self.run_cpu_stage(catalog, pipeline, tables, start, None)?;
        Ok((concat_outputs(outputs), end, busy))
    }

    /// Build a named hash table by materialising `pipeline` on the CPU.
    pub fn build_join_table(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        key_col: usize,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<(Arc<JoinTable>, SimTime, SimTime), EngineError> {
        let (batch, end, busy) = self.materialize_cpu(catalog, pipeline, tables, start)?;
        Ok((Arc::new(JoinTable::build(batch, key_col)), end, busy))
    }

    fn cpu_workers(&self, agg: Option<&hape_ops::AggSpec>) -> Vec<CpuWorker> {
        let mut workers = Vec::new();
        for (socket, spec) in self.server.cpus.iter().enumerate() {
            let model = CpuCostModel::new(spec.clone(), spec.cores);
            for core in 0..spec.cores {
                workers.push(CpuWorker {
                    res: Resource::new(format!("cpu{socket}.{core}")),
                    provider: CpuProvider { model: model.clone() },
                    agg: agg.map(|a| AggState::new(a.clone())),
                    est_ns_per_byte: 0.25,
                });
            }
        }
        workers
    }

    fn gpu_workers(&self, agg: Option<&hape_ops::AggSpec>) -> Vec<GpuWorker> {
        self.server
            .gpus
            .iter()
            .enumerate()
            .map(|(idx, spec)| {
                let mut link = self.server.pcie[idx].clone();
                link.reset();
                GpuWorker {
                    res: Resource::new(format!("gpu{idx}")),
                    provider: GpuProvider { sim: GpuSim::new(spec.clone(), self.fidelity) },
                    link,
                    agg: agg.map(|a| AggState::new(a.clone())),
                    est_ns_per_byte: 0.12,
                }
            })
            .collect()
    }

    /// Run a pipeline entirely on CPU workers (build stages). Returns the
    /// packet outputs, the stage end time, and CPU busy time.
    fn run_cpu_stage(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
        agg: Option<&hape_ops::AggSpec>,
    ) -> Result<(Vec<Batch>, SimTime, SimTime), EngineError> {
        let table = catalog.lookup(&pipeline.source)?;
        let mut workers = self.cpu_workers(agg);
        let packet_rows = auto_packet_rows(table.rows(), workers.len(), None);
        let packets = table.data.split(packet_rows);
        let mut outputs = Vec::new();
        let mut end = start;
        let mut router = Router::new(RoutingPolicy::LoadAware);
        for packet in packets {
            let candidates: Vec<CandidateLoad> = workers
                .iter()
                .map(|w| CandidateLoad {
                    ready_at: w.res.free_at().max(start),
                    est_ns_per_byte: w.est_ns_per_byte,
                })
                .collect();
            let wi = router.pick(&packet, &candidates);
            let w = &mut workers[wi];
            let bytes = packet.bytes().max(1);
            let result = w.provider.run_packet(packet, pipeline, tables, w.agg.as_mut());
            let (_, done) = w.res.acquire(start, result.time);
            end = end.max(done);
            w.est_ns_per_byte =
                0.7 * w.est_ns_per_byte + 0.3 * (result.time.as_ns() / bytes as f64);
            if let Some(out) = result.output {
                if out.rows() > 0 {
                    outputs.push(out);
                }
            }
        }
        let busy = workers.iter().map(|w| w.res.busy_time()).sum();
        Ok((outputs, end, busy))
    }

    /// Run the stream stage per the configured placement.
    #[allow(clippy::type_complexity)]
    fn run_stream_stage(
        &self,
        catalog: &Catalog,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
        cfg: &ExecConfig,
    ) -> Result<
        (SimTime, SimTime, SimTime, u64, usize, usize, Vec<(GroupKey, Vec<f64>)>),
        EngineError,
    > {
        let table = catalog.lookup(&pipeline.source)?;
        let agg_spec = pipeline.agg.as_ref().ok_or_else(|| {
            EngineError::InvalidPlan(PlanError::StreamWithoutAggregate {
                name: pipeline.source.clone(),
            })
        })?;

        let mut cpu_workers = match cfg.placement {
            Placement::GpuOnly => Vec::new(),
            _ => self.cpu_workers(Some(agg_spec)),
        };
        let mut gpu_workers = match cfg.placement {
            Placement::CpuOnly => Vec::new(),
            _ => self.gpu_workers(Some(agg_spec)),
        };
        if cpu_workers.is_empty() && gpu_workers.is_empty() {
            return Err(EngineError::NoWorkers { placement: format!("{:?}", cfg.placement) });
        }

        // ---- Broadcast hash tables to the GPUs (mem-move) and check the
        // capacity constraint.
        let probed: Vec<&str> = pipeline.tables_probed();
        let mut ht_regions: HashMap<String, Region> = HashMap::new();
        let mut h2d_bytes = 0u64;
        if !gpu_workers.is_empty() && !probed.is_empty() {
            let mut total: u64 = 0;
            let mut region_base = 1u64 << 44;
            let mut partitioned_prep = SimTime::ZERO;
            for name in &probed {
                let jt = tables.get(*name).expect("validated by plan");
                total += jt.bytes();
                ht_regions
                    .insert((*name).to_string(), Region::at(region_base, jt.bytes().max(1)));
                region_base += jt.bytes().max(128) * 2;
            }
            // Partitioned probes pre-partition the build side on the GPU.
            for op in &pipeline.ops {
                if let PipeOp::JoinProbe { ht, algo: JoinAlgo::Partitioned, .. } = op {
                    let jt = tables.get(ht).expect("validated");
                    let gpu_bw = self.server.gpus[0].dram_bw;
                    partitioned_prep += SimTime::from_secs(4.0 * jt.bytes() as f64 / gpu_bw);
                }
            }
            let required = (total as f64 * GPU_HT_WORKING_FACTOR) as u64;
            let capacity = self.server.gpus[0].dram_capacity as u64;
            if required > capacity {
                return Err(EngineError::GpuMemoryExceeded { required, capacity });
            }
            for w in &mut gpu_workers {
                let (_, arrived) = w.link.transfer(start, total);
                h2d_bytes += total;
                let (_, ready) = w.res.acquire(arrived, partitioned_prep);
                debug_assert!(ready >= arrived);
            }
        }

        // ---- Route packets.
        let packet_rows = auto_packet_rows(
            table.rows(),
            cpu_workers.len() + gpu_workers.len() * 4,
            cfg.packet_rows,
        );
        let packets = table.data.split(packet_rows);
        let mut router = Router::new(cfg.policy);
        let mut end = start;
        let mut packets_cpu = 0usize;
        let mut packets_gpu = 0usize;
        for packet in packets {
            // Candidate list: CPU workers first, then GPUs.
            let mut candidates: Vec<CandidateLoad> =
                Vec::with_capacity(cpu_workers.len() + gpu_workers.len());
            for w in &cpu_workers {
                candidates.push(CandidateLoad {
                    ready_at: w.res.free_at().max(start),
                    est_ns_per_byte: w.est_ns_per_byte,
                });
            }
            let bytes = packet.bytes().max(1);
            for w in &gpu_workers {
                let arrive = w.link.free_at().max(start) + w.link.duration(bytes);
                candidates.push(CandidateLoad {
                    ready_at: w.res.free_at().max(arrive),
                    est_ns_per_byte: w.est_ns_per_byte,
                });
            }
            let pick = router.pick(&packet, &candidates);
            if pick < cpu_workers.len() {
                let w = &mut cpu_workers[pick];
                let result = w.provider.run_packet(packet, pipeline, tables, w.agg.as_mut());
                let (_, done) = w.res.acquire(start, result.time);
                end = end.max(done);
                w.est_ns_per_byte =
                    0.7 * w.est_ns_per_byte + 0.3 * (result.time.as_ns() / bytes as f64);
                packets_cpu += 1;
            } else {
                let w = &mut gpu_workers[pick - cpu_workers.len()];
                let (_, arrived) = w.link.transfer(start, bytes);
                h2d_bytes += bytes;
                let result = w.provider.run_packet(
                    packet,
                    pipeline,
                    tables,
                    &ht_regions,
                    w.agg.as_mut(),
                );
                let (_, done) = w.res.acquire(arrived, result.time);
                end = end.max(done);
                w.est_ns_per_byte =
                    0.7 * w.est_ns_per_byte + 0.3 * (result.time.as_ns() / bytes as f64);
                packets_gpu += 1;
            }
        }

        // ---- Merge partial aggregates (cheap: group counts are small).
        let mut merged = AggState::new(agg_spec.clone());
        for w in &cpu_workers {
            if let Some(a) = &w.agg {
                merged.merge(a);
            }
        }
        for w in &gpu_workers {
            if let Some(a) = &w.agg {
                merged.merge(a);
            }
        }
        let cpu_busy = cpu_workers.iter().map(|w| w.res.busy_time()).sum();
        let gpu_busy = gpu_workers.iter().map(|w| w.res.busy_time()).sum();
        Ok((end, cpu_busy, gpu_busy, h2d_bytes, packets_cpu, packets_gpu, merged.finish()))
    }
}

/// Packet sizing: about four packets per worker, clamped to [8K, 1M] rows.
fn auto_packet_rows(rows: usize, workers: usize, explicit: Option<usize>) -> usize {
    if let Some(r) = explicit {
        return r.max(1);
    }
    (rows / (4 * workers.max(1))).clamp(2 << 10, 1 << 20)
}

/// Concatenate packet outputs into one batch (column-wise).
fn concat_outputs(outputs: Vec<Batch>) -> Batch {
    match outputs.len() {
        0 => Batch::empty(),
        1 => outputs.into_iter().next().unwrap(),
        _ => {
            let n_cols = outputs[0].columns.len();
            let cols = (0..n_cols)
                .map(|c| {
                    let parts: Vec<_> = outputs.iter().map(|b| b.columns[c].clone()).collect();
                    hape_storage::Column::concat(&parts)
                })
                .collect();
            Batch::new(cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_storage::datagen::gen_key_fk_table;

    fn setup() -> (Catalog, QueryPlan) {
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 1));
        catalog.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 2));
        let plan = QueryPlan::try_new(
            "test",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![
                            (AggFunc::Count, Expr::col(0)),
                            (AggFunc::Sum, Expr::col(2)),
                        ])),
                },
            ],
        )
        .unwrap();
        (catalog, plan)
    }

    #[test]
    fn all_placements_agree_on_results() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let mut results = Vec::new();
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine.run(&catalog, &plan, &ExecConfig::new(placement)).unwrap();
            assert_eq!(rep.rows[0].1[0], (1 << 14) as f64, "{placement:?}");
            results.push(rep.rows.clone());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn hybrid_uses_both_device_kinds() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert!(rep.packets_cpu > 0, "no CPU packets");
        assert!(rep.packets_gpu > 0, "no GPU packets");
        assert!(rep.h2d_bytes > 0);
        assert!(rep.gpu_busy.as_ns() > 0.0);
        assert!(rep.cpu_busy.as_ns() > 0.0);
    }

    #[test]
    fn gpu_only_moves_everything_over_pcie() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        assert_eq!(rep.packets_cpu, 0);
        assert!(rep.packets_gpu > 0);
        // Fact table + hash-table broadcast both crossed PCIe.
        let fact_bytes = catalog.expect("fact").bytes();
        assert!(rep.h2d_bytes > fact_bytes);
    }

    #[test]
    fn oversized_hash_table_rejected_on_gpu() {
        let (catalog, plan) = setup();
        // GPU memory scaled to ~96 KiB: the 16K-entry table cannot fit.
        let engine = Engine::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0));
        let err =
            engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap_err();
        assert!(matches!(err, EngineError::GpuMemoryExceeded { .. }), "{err}");
        // CPU-only still works.
        assert!(engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).is_ok());
    }

    #[test]
    fn missing_table_reported() {
        let (_, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let err = engine
            .run(&Catalog::new(), &plan, &ExecConfig::new(Placement::CpuOnly))
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingTable(_)));
    }

    #[test]
    fn deterministic_execution() {
        let (catalog, plan) = setup();
        let engine = Engine::new(Server::paper_testbed());
        let a = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        let b = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.time, b.time);
        assert_eq!(a.packets_gpu, b.packets_gpu);
    }
}
