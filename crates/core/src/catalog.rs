//! The table catalog.

use std::collections::HashMap;

use hape_storage::Table;

use crate::engine::EngineError;

/// Outcome of a typed registration ([`Catalog::register_table`] /
/// `Session::register_table`): whether the name was fresh or silently
/// replaced an existing table, plus the catalog version after the
/// registration — the invalidation key consumed by the cross-query build
/// cache (`hape_core::serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRegistration {
    /// The name was previously unbound.
    Fresh {
        /// Catalog version after this registration.
        version: u64,
    },
    /// An existing table of the same name was replaced — any state derived
    /// from the old contents (cached hash tables, lowered plans) is stale.
    Replaced {
        /// Catalog version after this registration.
        version: u64,
    },
}

impl TableRegistration {
    /// The catalog version after the registration.
    pub fn version(&self) -> u64 {
        match self {
            TableRegistration::Fresh { version } | TableRegistration::Replaced { version } => {
                *version
            }
        }
    }

    /// True when the registration replaced an existing table.
    pub fn replaced(&self) -> bool {
        matches!(self, TableRegistration::Replaced { .. })
    }
}

/// A named collection of tables the engine can scan.
///
/// Cloning is cheap: table columns are `Arc`-backed views, so a clone
/// shares all data. Query lowering uses this to derive per-query catalogs
/// that add projected scan views without copying any column payload.
///
/// Every registration bumps a monotonically increasing [`Catalog::version`]
/// counter; consumers that cache state derived from table *contents* (the
/// serving layer's cross-query build cache) key their entries on it, so
/// re-registering a table mid-session invalidates instead of silently
/// serving stale data.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    version: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under its own name.
    pub fn register(&mut self, table: Table) {
        let name = table.name.clone();
        self.register_table(name, table);
    }

    /// Register under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, table: Table) {
        self.register_table(name, table);
    }

    /// Register under an explicit name, reporting whether the name was
    /// fresh or an existing table was replaced — the typed registration
    /// path callers use when replacement must be observable.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        mut table: Table,
    ) -> TableRegistration {
        let name = name.into();
        table.name = name.clone();
        let prior = self.tables.insert(name, table);
        self.version += 1;
        match prior {
            Some(_) => TableRegistration::Replaced { version: self.version },
            None => TableRegistration::Fresh { version: self.version },
        }
    }

    /// The catalog's registration counter: bumped by every
    /// register call, never reset. Cached derivations of table contents
    /// compare against it to detect staleness.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table, surfacing the engine's typed missing-table error.
    ///
    /// This is what every execution path uses; [`Catalog::expect`] remains
    /// only as a convenience for tests and examples that hold tables they
    /// registered themselves.
    pub fn lookup(&self, name: &str) -> Result<&Table, EngineError> {
        self.get(name).ok_or_else(|| EngineError::MissingTable(name.to_string()))
    }

    /// Look up or panic with a useful message.
    pub fn expect(&self, name: &str) -> &Table {
        self.get(name).unwrap_or_else(|| panic!("catalog has no table named {name:?}"))
    }

    /// Names of all registered tables (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Total bytes across tables.
    pub fn bytes(&self) -> u64 {
        self.tables.values().map(Table::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::datagen::gen_key_fk_table;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_as("r", gen_key_fk_table(64, 64, 1));
        c.register_as("s", gen_key_fk_table(64, 64, 2));
        assert_eq!(c.names(), vec!["r", "s"]);
        assert_eq!(c.expect("r").rows(), 64);
        assert!(c.get("t").is_none());
        assert!(c.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn expect_panics_on_missing() {
        Catalog::new().expect("nope");
    }

    #[test]
    fn version_counts_registrations_and_replacement_is_typed() {
        let mut c = Catalog::new();
        assert_eq!(c.version(), 0);
        let first = c.register_table("r", gen_key_fk_table(64, 64, 1));
        assert_eq!(first, TableRegistration::Fresh { version: 1 });
        let second = c.register_table("r", gen_key_fk_table(64, 64, 2));
        assert_eq!(second, TableRegistration::Replaced { version: 2 });
        assert!(second.replaced());
        assert_eq!(second.version(), 2);
        // The untyped paths bump the version too.
        c.register_as("s", gen_key_fk_table(64, 64, 3));
        assert_eq!(c.version(), 3);
        // Clones inherit the counter (derived per-query catalogs).
        assert_eq!(c.clone().version(), 3);
    }
}
