//! The table catalog.

use std::collections::HashMap;

use hape_storage::Table;

use crate::engine::EngineError;

/// A named collection of tables the engine can scan.
///
/// Cloning is cheap: table columns are `Arc`-backed views, so a clone
/// shares all data. Query lowering uses this to derive per-query catalogs
/// that add projected scan views without copying any column payload.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Register under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, mut table: Table) {
        let name = name.into();
        table.name = name.clone();
        self.tables.insert(name, table);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table, surfacing the engine's typed missing-table error.
    ///
    /// This is what every execution path uses; [`Catalog::expect`] remains
    /// only as a convenience for tests and examples that hold tables they
    /// registered themselves.
    pub fn lookup(&self, name: &str) -> Result<&Table, EngineError> {
        self.get(name).ok_or_else(|| EngineError::MissingTable(name.to_string()))
    }

    /// Look up or panic with a useful message.
    pub fn expect(&self, name: &str) -> &Table {
        self.get(name).unwrap_or_else(|| panic!("catalog has no table named {name:?}"))
    }

    /// Names of all registered tables (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Total bytes across tables.
    pub fn bytes(&self) -> u64 {
        self.tables.values().map(Table::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::datagen::gen_key_fk_table;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_as("r", gen_key_fk_table(64, 64, 1));
        c.register_as("s", gen_key_fk_table(64, 64, 2));
        assert_eq!(c.names(), vec!["r", "s"]);
        assert_eq!(c.expect("r").rows(), 64);
        assert!(c.get("t").is_none());
        assert!(c.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn expect_panics_on_missing() {
        Catalog::new().expect("nope");
    }
}
