//! Device providers — the per-device code-generation back-ends (§4.2).
//!
//! A provider "compiles" a pipeline for its device: it runs a packet through
//! all fused operators in one pass, charging device-appropriate costs. The
//! CPU provider charges the analytic Xeon model; the GPU provider executes
//! the operators as kernels on the simulator (fused: one launch per packet
//! per pipeline, not per operator — the HorseQC/MapD argument of §2.2).
//!
//! Providers are what make relational operators device-*portable*: the same
//! [`Pipeline`] runs on either device type, and the device-crossing operator
//! merely swaps the provider.

use std::collections::HashMap;
use std::sync::Arc;

use hape_ops::agg::AggState;
use hape_ops::{cpu as cpu_ops, gpu as gpu_ops};
use hape_sim::{CpuCostModel, GpuSim, Region, SimTime};
use hape_storage::{Batch, Column};

use crate::plan::{JoinAlgo, JoinTable, PipeOp, Pipeline};

/// The built hash tables visible to probes.
pub type TableStore = HashMap<String, Arc<JoinTable>>;

/// Result of pushing one packet through a compiled pipeline.
pub struct PacketResult {
    /// Output rows (for build pipelines); `None` when aggregated away.
    pub output: Option<Batch>,
    /// Simulated device time consumed.
    pub time: SimTime,
}

/// Probe `packet` against `jt`, producing the joined batch (probe columns
/// followed by the selected build payload columns) and the measured average
/// chain length. Shared by both providers — the *functional* operator is
/// heterogeneity-oblivious; only the costing differs. (Also used by the
/// `hape-baselines` stand-ins, which share operator semantics but charge
/// their own execution models.)
pub fn probe_join(
    packet: &Batch,
    jt: &JoinTable,
    key_col: usize,
    build_payload_cols: &[usize],
) -> (Batch, f64) {
    let keys = packet.col(key_col).as_i32();
    let mut probe_sel: Vec<u32> = Vec::new();
    let mut build_sel: Vec<u32> = Vec::new();
    let mut steps_total: u64 = 0;
    for (i, &k) in keys.iter().enumerate() {
        steps_total += jt.probe(k, |e| {
            probe_sel.push(i as u32);
            build_sel.push(e);
        }) as u64;
    }
    let mut cols: Vec<Column> = packet.columns.iter().map(|c| c.take(&probe_sel)).collect();
    for &b in build_payload_cols {
        cols.push(jt.batch.col(b).take(&build_sel));
    }
    let out = Batch { columns: cols, partition: packet.partition };
    let avg_chain = if keys.is_empty() { 0.0 } else { steps_total as f64 / keys.len() as f64 };
    (out, avg_chain)
}

/// The CPU device provider.
#[derive(Debug, Clone)]
pub struct CpuProvider {
    /// Per-worker cost model (bandwidth share folded in).
    pub model: CpuCostModel,
}

impl CpuProvider {
    /// Push one packet through the fused pipeline.
    ///
    /// `agg` is this worker's partial aggregation state (for stream
    /// pipelines).
    pub fn run_packet(
        &self,
        packet: Batch,
        pipeline: &Pipeline,
        tables: &TableStore,
        agg: Option<&mut AggState>,
    ) -> PacketResult {
        let mut time = cpu_ops::scan_cost(packet.bytes(), &self.model);
        let mut cur = packet;
        for op in &pipeline.ops {
            if cur.rows() == 0 {
                break;
            }
            match op {
                PipeOp::Filter(pred) => {
                    let (out, t) = cpu_ops::filter(&cur, pred, &self.model);
                    cur = out;
                    time += t;
                }
                PipeOp::Project(exprs) => {
                    let (out, t) = cpu_ops::project(&cur, exprs, &self.model);
                    cur = out;
                    time += t;
                }
                PipeOp::JoinProbe { ht, key_col, build_payload_cols, .. } => {
                    let jt =
                        tables.get(ht).unwrap_or_else(|| panic!("hash table {ht} not built"));
                    let n = cur.rows() as u64;
                    let (out, chain) = probe_join(&cur, jt, *key_col, build_payload_cols);
                    // Fused probe: random table accesses only — the gathered
                    // payloads ride in registers to the next operator.
                    time += self.model.ht_probe(n, chain, jt.bytes());
                    cur = out;
                }
            }
        }
        if let Some(state) = agg {
            if cur.rows() > 0 {
                time += cpu_ops::agg_update(state, &cur, &self.model);
            }
            return PacketResult { output: None, time };
        }
        PacketResult { output: Some(cur), time }
    }
}

/// The GPU device provider.
#[derive(Debug, Clone)]
pub struct GpuProvider {
    /// The kernel simulator for the target GPU.
    pub sim: GpuSim,
}

impl GpuProvider {
    /// Push one packet through the fused pipeline as GPU kernels.
    ///
    /// `ht_regions` maps hash-table names to their device-memory regions
    /// (placed there by the pre-stage broadcast `mem-move`).
    pub fn run_packet(
        &self,
        packet: Batch,
        pipeline: &Pipeline,
        tables: &TableStore,
        ht_regions: &HashMap<String, Region>,
        agg: Option<&mut AggState>,
    ) -> PacketResult {
        let mut time = SimTime::ZERO;
        let mut cur = packet;
        let in_region = Region::at(1 << 24, cur.bytes().max(1));
        for op in &pipeline.ops {
            if cur.rows() == 0 {
                break;
            }
            match op {
                PipeOp::Filter(pred) => {
                    let (out, report) = gpu_ops::filter(&self.sim, in_region, &cur, pred);
                    cur = out;
                    time += report.time;
                }
                PipeOp::Project(exprs) => {
                    // Fused projection: stream + compute, outputs stay in
                    // registers for the next fused operator.
                    let bytes = cur.bytes();
                    let ops: f64 = exprs.iter().map(|e| e.ops_per_row()).sum();
                    time += gpu_ops::stream_pass(&self.sim, in_region, bytes, ops);
                    let mut cols = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        cols.push(Column::from_f64(hape_ops::eval(e, &cur).as_f64().to_vec()));
                    }
                    cur = Batch { columns: cols, partition: cur.partition };
                }
                PipeOp::JoinProbe { ht, key_col, build_payload_cols, algo } => {
                    let jt =
                        tables.get(ht).unwrap_or_else(|| panic!("hash table {ht} not built"));
                    let region = ht_regions
                        .get(ht)
                        .copied()
                        .unwrap_or_else(|| Region::at(1 << 44, jt.bytes().max(1)));
                    let n = cur.rows();
                    let keys: Vec<i32> = cur.col(*key_col).as_i32().to_vec();
                    let (out, chain) = probe_join(&cur, jt, *key_col, build_payload_cols);
                    time += self.charge_probe(&keys, jt, region, chain, *algo);
                    time +=
                        SimTime::from_ns((out.rows() * build_payload_cols.len()) as f64 * 0.05);
                    let _ = n;
                    cur = out;
                }
            }
        }
        if let Some(state) = agg {
            if cur.rows() > 0 {
                let region = Region::at(1 << 24, cur.bytes().max(1));
                let report = gpu_ops::agg_update(&self.sim, region, &cur, state);
                time += report.time;
            }
            return PacketResult { output: None, time };
        }
        PacketResult { output: Some(cur), time }
    }

    /// Charge a GPU join probe of `keys` against a device-resident table.
    fn charge_probe(
        &self,
        keys: &[i32],
        jt: &JoinTable,
        region: Region,
        avg_chain: f64,
        algo: JoinAlgo,
    ) -> SimTime {
        let n = keys.len();
        if n == 0 {
            return SimTime::ZERO;
        }
        let cfg = gpu_ops::grid_for(n);
        let bits = jt.table.bits;
        let report = match algo {
            JoinAlgo::NonPartitioned => self.sim.launch(&cfg, |blk| {
                let start = blk.block_idx * gpu_ops::ITEMS_PER_BLOCK;
                let end = (start + gpu_ops::ITEMS_PER_BLOCK).min(n);
                if start >= end {
                    return;
                }
                let cn = (end - start) as u64;
                blk.global_read_stream(&region, 0, cn * 8);
                blk.compute(cn, 6.0);
                // Random head + chain loads through L1/L2 — each drags a
                // whole line for 8 bytes of use.
                let offs: Vec<u64> = keys[start..end]
                    .iter()
                    .map(|&k| hape_join::hash32(k, bits) as u64 * 4)
                    .collect();
                blk.global_read(&region, &offs, 4);
                let chain_loads = (cn as f64 * avg_chain).ceil() as usize;
                let chain_offs: Vec<u64> = (0..chain_loads)
                    .map(|i| {
                        let k = keys[start + i % (end - start)];
                        (hape_join::hash32(k, bits.max(4)) as u64).wrapping_mul(2654435761)
                            % region.bytes.max(128)
                    })
                    .collect();
                blk.global_read(&region, &chain_offs, 12);
            }),
            JoinAlgo::Partitioned => self.sim.launch(&cfg, |blk| {
                let start = blk.block_idx * gpu_ops::ITEMS_PER_BLOCK;
                let end = (start + gpu_ops::ITEMS_PER_BLOCK).min(n);
                if start >= end {
                    return;
                }
                let cn = (end - start) as u64;
                // Partition the probe packet (read + consolidated write +
                // read back), then probe scratchpad-resident tables.
                blk.global_read_stream(&region, 0, cn * 8);
                blk.global_write_stream(cn * 8);
                blk.global_read_stream(&region, 0, cn * 8);
                blk.compute(cn, 9.0);
                let words: Vec<u32> =
                    keys[start..end].iter().map(|&k| hape_join::hash32(k, 12)).collect();
                blk.smem_access(&words);
                let extra = ((cn as f64) * (avg_chain - 1.0).max(0.0)) as usize;
                let extra_words: Vec<u32> = words.iter().take(extra).map(|&w| w + 1).collect();
                blk.smem_access(&extra_words);
            }),
        };
        report.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_sim::{CpuSpec, Fidelity, GpuSpec};
    use hape_storage::Column;

    fn packet(n: usize) -> Batch {
        Batch::new(vec![
            Column::from_i32((0..n as i32).collect()),
            Column::from_f64((0..n).map(|i| i as f64).collect()),
        ])
    }

    fn dim_table() -> Arc<JoinTable> {
        // keys 0..100 step 2, payload = key*10
        let keys: Vec<i32> = (0..50).map(|i| i * 2).collect();
        let pay: Vec<f64> = keys.iter().map(|&k| (k * 10) as f64).collect();
        let batch = Batch::new(vec![Column::from_i32(keys), Column::from_f64(pay)]);
        Arc::new(JoinTable::build(batch, 0))
    }

    fn pipeline() -> Pipeline {
        Pipeline::scan("t")
            .filter(Expr::lt(Expr::col(0), Expr::LitI32(100)))
            .join("d", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![
                (AggFunc::Count, Expr::col(0)),
                (AggFunc::Sum, Expr::col(2)), // build payload
            ]))
    }

    #[test]
    fn cpu_and_gpu_providers_agree_on_results() {
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = pipeline();

        let cpu = CpuProvider { model: CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12) };
        let mut cpu_state = AggState::new(p.agg.clone().unwrap());
        let r1 = cpu.run_packet(packet(1000), &p, &tables, Some(&mut cpu_state));
        assert!(r1.output.is_none());

        let gpu = GpuProvider { sim: GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic) };
        let mut gpu_state = AggState::new(p.agg.clone().unwrap());
        let r2 =
            gpu.run_packet(packet(1000), &p, &tables, &HashMap::new(), Some(&mut gpu_state));
        assert!(r2.output.is_none());

        let a = cpu_state.finish();
        let b = gpu_state.finish();
        assert_eq!(a, b);
        // 50 keys of 0..100 are even and survive the filter.
        assert_eq!(a[0].1[0], 50.0);
        assert_eq!(a[0].1[1], (0..50).map(|i| (i * 2 * 10) as f64).sum::<f64>());
        assert!(r1.time.as_ns() > 0.0);
        assert!(r2.time.as_ns() > 0.0);
    }

    #[test]
    fn build_pipeline_returns_output() {
        let cpu = CpuProvider { model: CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12) };
        let p = Pipeline::scan("t").filter(Expr::lt(Expr::col(0), Expr::LitI32(10)));
        let r = cpu.run_packet(packet(100), &p, &TableStore::new(), None);
        let out = r.output.unwrap();
        assert_eq!(out.rows(), 10);
    }

    #[test]
    fn partitioned_probe_cheaper_for_large_tables() {
        // A large device-resident table: random NPJ probes over-fetch;
        // the partitioned probe stays in the scratchpad.
        let n = 1 << 20;
        let keys: Vec<i32> = (0..n as i32).collect();
        let pay: Vec<f64> = vec![0.0; n];
        let jt = Arc::new(JoinTable::build(
            Batch::new(vec![Column::from_i32(keys), Column::from_f64(pay)]),
            0,
        ));
        let mut tables = TableStore::new();
        tables.insert("big".into(), jt.clone());
        let gpu = GpuProvider { sim: GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic) };
        let mut regions = HashMap::new();
        regions.insert("big".to_string(), Region::at(1 << 44, jt.bytes()));

        let probe = packet(1 << 18);
        let npj = Pipeline::scan("t")
            .join("big", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]));
        let part = Pipeline::scan("t")
            .join("big", 0, vec![1], JoinAlgo::Partitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]));
        let mut s1 = AggState::new(npj.agg.clone().unwrap());
        let mut s2 = AggState::new(part.agg.clone().unwrap());
        let t_npj = gpu.run_packet(probe.clone(), &npj, &tables, &regions, Some(&mut s1)).time;
        let t_part = gpu.run_packet(probe, &part, &tables, &regions, Some(&mut s2)).time;
        assert_eq!(s1.finish(), s2.finish());
        assert!(t_part.as_secs() < t_npj.as_secs(), "partitioned {} !< npj {}", t_part, t_npj);
    }
}
