//! Device providers — the per-device code-generation back-ends (§4.2).
//!
//! A provider "compiles" a pipeline for its device: it runs a packet through
//! all fused operators in one pass, charging device-appropriate costs. The
//! CPU provider charges the analytic Xeon model; the GPU provider executes
//! the operators as kernels on the simulator (fused: one launch per packet
//! per pipeline, not per operator — the HorseQC/MapD argument of §2.2).
//!
//! Providers are what make relational operators device-*portable*: the same
//! [`Pipeline`] runs on either device type, and the device-crossing operator
//! merely swaps the provider. The [`DeviceProvider`] trait is that swap
//! point made explicit: the engine interprets a
//! [`crate::place::PlacedPlan`] over `dyn DeviceProvider` workers — one
//! [`CpuWorker`] per core, one [`GpuWorker`] per GPU — and never branches
//! on a placement enum. New device classes implement the trait and slot
//! into the same interpreter.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use hape_ops::agg::AggState;
use hape_ops::{cpu as cpu_ops, eval_bool, gpu as gpu_ops, stateful, AggSpec, GroupKey};
use hape_sim::des::Resource;
use hape_sim::interconnect::Link;
use hape_sim::{CpuCostModel, Fidelity, GpuSim, GpuSpec, Region, SimTime};
use hape_storage::{Batch, Column};

use crate::error::EngineError;
use crate::exchange::WorkerId;
use crate::plan::{JoinAlgo, JoinTable, PipeOp, Pipeline};
use crate::traits::DeviceType;

/// The built hash tables visible to probes.
pub type TableStore = HashMap<String, Arc<JoinTable>>;

/// Working space multiplier for GPU-resident hash tables (buffer
/// management, as the paper notes when sizing Q9, §6.4). Calibrated so
/// Q9's broadcast tables exceed the SF-scaled GPU memory even with the
/// front-end's minimal pushed-down projections, reproducing the paper's
/// GPU-only failure mode.
pub const GPU_HT_WORKING_FACTOR: f64 = 2.5;

/// Seed for a CPU worker's calibrated ns-per-byte processing estimate (the
/// router tie-breaker before the first packet lands): roughly one core's
/// share of socket bandwidth on the paper's Xeon. Shared with the cost
/// subsystem so the optimizer's priors match the router's.
pub const CPU_WORKER_SEED_NS_PER_BYTE: f64 = 0.25;

/// Seed for a GPU worker's calibrated ns-per-byte estimate: PCIe-bound
/// streaming on a x16 link (~12 GB/s ≈ 0.08 ns/B) plus kernel overheads.
pub const GPU_WORKER_SEED_NS_PER_BYTE: f64 = 0.12;

/// Packet shares a GPU worker requests from the packet sizer: GPUs pipeline
/// PCIe transfers against kernels, so they run deeper queues than a core.
pub const GPU_PACKET_SHARE: usize = 4;

/// Result of pushing one packet through a compiled pipeline.
#[derive(Debug)]
pub struct PacketResult {
    /// Output rows (for build pipelines); `None` when aggregated away.
    pub output: Option<Batch>,
    /// Simulated device time consumed.
    pub time: SimTime,
}

/// What a [`DeviceProvider`] reports after the control plane commits one
/// routed packet against its clocks.
#[derive(Debug, Clone, Copy)]
pub struct CommitOutcome {
    /// When the worker finishes the packet (input transfer + device time +
    /// any device-to-host return of build output).
    pub done: SimTime,
    /// Bytes the packet moved host-to-device to reach the worker.
    pub h2d_bytes: u64,
}

/// Reusable per-thread scratch buffers for the data plane's functional
/// kernels: selection vectors for filters and join match indices. One
/// lives on each pool thread and is cleared (not freed) between packets,
/// killing the per-packet allocation churn on the probe path.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Surviving-row / probe-side match indices.
    pub sel: Vec<u32>,
    /// Build-side match indices.
    pub build_sel: Vec<u32>,
}

impl Scratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Per-operator record of the canonical functional pass ([`run_ops`]):
/// the statistics each device class's cost model needs to price the
/// operator *without re-running it*. Column references are Arc-backed
/// views — recording a trace copies no data.
#[derive(Debug, Clone)]
pub enum OpTrace {
    /// A fused filter.
    Filter {
        /// Rows entering the filter.
        rows_in: usize,
        /// Predicate operations per row.
        pred_ops: f64,
        /// Bytes per row the predicate touches.
        pred_row_bytes: u64,
        /// Bytes per surviving row (all columns).
        out_row_bytes: u64,
        /// Survivor count per GPU thread block (see
        /// [`hape_ops::gpu::block_survivors`]).
        survivors: Vec<u32>,
    },
    /// A fused projection.
    Project {
        /// Rows entering the projection.
        rows_in: usize,
        /// Total expression operations per row.
        ops: f64,
        /// Batch payload bytes at this operator.
        bytes_in: u64,
    },
    /// A fused hash-join probe.
    Probe {
        /// The probed table.
        ht: String,
        /// Probe algorithm.
        algo: JoinAlgo,
        /// Rows entering the probe.
        rows_in: usize,
        /// Measured average chain length.
        avg_chain: f64,
        /// The probe-key column (zero-copy view).
        keys: Column,
        /// Match rows produced.
        rows_out: usize,
        /// Build payload columns gathered per match.
        payload_cols: usize,
    },
    /// A fused stateful per-user aggregate ([`hape_ops::stateful`]).
    Stateful {
        /// Rows entering the state machines.
        rows_in: usize,
        /// Distinct users (= output rows) in the packet.
        users: usize,
        /// Bytes per input row the operator touches (user + ts + event).
        row_bytes: u64,
        /// Per-user state footprint times the packet's user count — the
        /// working set the random-access terms price against.
        state_bytes: u64,
        /// State-machine operations per input row.
        ops_per_row: f64,
    },
}

impl OpTrace {
    /// Counter-key label of the operator kind (the tracing plane's
    /// `rows.<label>.in/out` counters).
    pub fn label(&self) -> &'static str {
        match self {
            OpTrace::Filter { .. } => "filter",
            OpTrace::Project { .. } => "project",
            OpTrace::Probe { .. } => "probe",
            OpTrace::Stateful { .. } => "stateful",
        }
    }

    /// Rows entering the operator.
    pub fn rows_in(&self) -> u64 {
        match self {
            OpTrace::Filter { rows_in, .. }
            | OpTrace::Project { rows_in, .. }
            | OpTrace::Probe { rows_in, .. }
            | OpTrace::Stateful { rows_in, .. } => *rows_in as u64,
        }
    }

    /// Rows leaving the operator: filter survivors, probe matches,
    /// stateful per-user outputs; projections preserve cardinality.
    pub fn rows_out(&self) -> u64 {
        match self {
            OpTrace::Filter { survivors, .. } => survivors.iter().map(|&s| s as u64).sum(),
            OpTrace::Project { rows_in, .. } => *rows_in as u64,
            OpTrace::Probe { rows_out, .. } => *rows_out as u64,
            OpTrace::Stateful { users, .. } => *users as u64,
        }
    }
}

/// The aggregation-relevant statistics of one packet: how many rows reach
/// the terminal fold and which distinct group keys they contribute. The
/// control plane accumulates the keys per worker to reproduce the
/// cumulative group-table growth term of the CPU cost model exactly.
#[derive(Debug, Clone)]
pub struct PacketAgg {
    /// Rows reaching the aggregation.
    pub rows: u64,
    /// Distinct group keys among them (first-seen order).
    pub groups: Vec<GroupKey>,
}

/// Everything one packet's trip through the fused operator chain produced:
/// the functional result plus the per-operator cost statistics. Computed
/// once per packet on the data plane ([`run_ops`]), priced per device
/// class ([`CpuProvider::charge`] / [`GpuProvider::charge`]), and committed
/// against the routed worker's clocks by the control plane
/// ([`DeviceProvider::commit_packet`]).
#[derive(Debug, Clone)]
pub struct PacketWork {
    /// Input packet payload bytes.
    pub bytes: u64,
    /// Per-operator cost statistics, in pipeline order (truncated at the
    /// first operator that saw zero rows).
    pub ops: Vec<OpTrace>,
    /// Rows leaving the operator chain: the build output, or the rows the
    /// terminal aggregation folds.
    pub out: Batch,
    /// True when the pipeline ends in an aggregation (`out` feeds the
    /// routed worker's fold instead of the stage output).
    pub folds: bool,
    /// Fold statistics, when `folds` and rows survived.
    pub agg: Option<PacketAgg>,
}

/// Cost-equivalence class of a worker: workers in the same class charge
/// identical device times for the same packet (same spec, same model), so
/// the data plane prices each packet once per class instead of once per
/// worker.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// All cores of one socket (they share the per-core cost model).
    Cpu {
        /// Socket index.
        socket: usize,
    },
    /// GPUs whose charge inputs coincide: same spec *and* same broadcast
    /// table list (the broadcast determines the deterministic device
    /// regions [`DeviceProvider::charge`] prices probes against). The
    /// paper testbed's two identical GTX 1080s therefore share one class
    /// — one `charge` per packet instead of one per GPU.
    Gpu {
        /// Canonical fingerprint of the spec + broadcast list.
        key: String,
    },
}

/// The canonical functional pass: push one packet through the fused
/// operator chain exactly once, recording per-operator statistics rich
/// enough for *every* device class's cost model to replay its charge
/// bit-exactly (the CPU model from row counts and chain lengths, the GPU
/// simulator from per-block survivor counts and the key column itself).
///
/// Functional results are device-independent — this is the same
/// heterogeneity-oblivious operator semantics both providers always
/// shared — so the engine runs kernels once per packet on the data plane
/// regardless of how many device classes participate in the stage.
pub fn run_ops(
    packet: Batch,
    pipeline: &Pipeline,
    tables: &TableStore,
    scratch: &mut Scratch,
) -> Result<PacketWork, EngineError> {
    let bytes = packet.bytes();
    let mut ops_trace = Vec::with_capacity(pipeline.ops.len());
    let mut cur = packet;
    for op in &pipeline.ops {
        if cur.rows() == 0 {
            break;
        }
        match op {
            PipeOp::Filter(pred) => {
                let rows_in = cur.rows();
                let pred_row_bytes = pred
                    .columns_used()
                    .iter()
                    .map(|&i| cur.col(i).data_type().width() as u64)
                    .sum::<u64>()
                    .max(1);
                let out_row_bytes =
                    cur.columns.iter().map(|c| c.data_type().width() as u64).sum();
                let keep = eval_bool(pred, &cur);
                scratch.sel.clear();
                scratch
                    .sel
                    .extend(keep.iter().enumerate().filter(|(_, &k)| k).map(|(i, _)| i as u32));
                let survivors = gpu_ops::block_survivors(&scratch.sel, rows_in);
                let out = Batch {
                    columns: cur.columns.iter().map(|c| c.take(&scratch.sel)).collect(),
                    partition: cur.partition,
                };
                ops_trace.push(OpTrace::Filter {
                    rows_in,
                    pred_ops: pred.ops_per_row(),
                    pred_row_bytes,
                    out_row_bytes,
                    survivors,
                });
                cur = out;
            }
            PipeOp::Project(exprs) => {
                let rows_in = cur.rows();
                let bytes_in = cur.bytes();
                let ops: f64 = exprs.iter().map(|e| e.ops_per_row()).sum();
                let cols = exprs.iter().map(|e| cpu_ops::project_column(e, &cur)).collect();
                ops_trace.push(OpTrace::Project { rows_in, ops, bytes_in });
                cur = Batch { columns: cols, partition: cur.partition };
            }
            PipeOp::JoinProbe { ht, key_col, build_payload_cols, algo } => {
                let jt = lookup_ht(tables, ht)?;
                let rows_in = cur.rows();
                let keys = cur.col(*key_col).clone();
                let (out, avg_chain) =
                    probe_join_with(&cur, jt, *key_col, build_payload_cols, scratch);
                ops_trace.push(OpTrace::Probe {
                    ht: ht.clone(),
                    algo: *algo,
                    rows_in,
                    avg_chain,
                    keys,
                    rows_out: out.rows(),
                    payload_cols: build_payload_cols.len(),
                });
                cur = out;
            }
            PipeOp::Stateful(agg) => {
                let rows_in = cur.rows();
                let mut row_bytes = cur.col(agg.user_col()).data_type().width() as u64
                    + cur.col(agg.ts_col()).data_type().width() as u64;
                if let Some(ev) = agg.event_col() {
                    row_bytes += cur.col(ev).data_type().width() as u64;
                }
                let (out, users) = stateful::run_stateful(agg, &cur);
                ops_trace.push(OpTrace::Stateful {
                    rows_in,
                    users,
                    row_bytes,
                    state_bytes: users as u64 * agg.state_bytes_per_user(),
                    ops_per_row: agg.ops_per_row(),
                });
                cur = out;
            }
        }
    }
    let folds = pipeline.agg.is_some();
    let agg = match &pipeline.agg {
        Some(spec) if cur.rows() > 0 => Some(PacketAgg {
            rows: cur.rows() as u64,
            groups: hape_ops::agg::distinct_groups(spec, &cur),
        }),
        _ => None,
    };
    Ok(PacketWork { bytes, ops: ops_trace, out: cur, folds, agg })
}

/// A placed worker instance: one router consumer executing packets of a
/// compiled pipeline on a concrete device.
///
/// The trait unifies everything the engine's two planes need. The **data
/// plane** calls the `&self` methods from pool threads: [`charge`] prices
/// a packet's recorded statistics on this worker's cost class, and the
/// canonical kernels run through the free [`run_ops`]. The **control
/// plane** calls the `&mut self` methods sequentially on the coordinator:
/// [`install_tables`] executes the broadcast mem-moves,
/// [`commit_packet`] advances the worker's simulated clocks for a routed
/// packet, and [`fold_packet`] folds the packet's rows into the worker's
/// partial aggregation state (invoked from the data plane's per-worker
/// fold jobs, in routed order). The interpreter holds
/// `Box<dyn DeviceProvider>` workers and treats CPU cores and GPUs
/// identically.
///
/// [`charge`]: DeviceProvider::charge
/// [`install_tables`]: DeviceProvider::install_tables
/// [`commit_packet`]: DeviceProvider::commit_packet
/// [`fold_packet`]: DeviceProvider::fold_packet
pub trait DeviceProvider: Send + Sync {
    /// This worker's identity.
    fn id(&self) -> WorkerId;

    /// The device type executing the packets (the device trait).
    fn device(&self) -> DeviceType;

    /// The worker's cost-equivalence class (see [`CostClass`]).
    fn cost_class(&self) -> CostClass;

    /// Relative packet-sizing weight: how many packet shares this worker
    /// wants in flight (GPUs pipeline transfers against kernels, so they
    /// run deeper queues).
    fn packet_share(&self) -> usize {
        1
    }

    /// Earliest time this worker could *start* a packet of `bytes` that
    /// becomes ready at `start`, including any input mem-move on the
    /// worker's exchange path.
    fn ready_at(&self, start: SimTime, bytes: u64) -> SimTime;

    /// Calibrated processing-cost estimate (ns per byte), updated after
    /// every committed packet — the router's tie-breaker.
    fn est_ns_per_byte(&self) -> f64;

    /// Install the hash tables `pipeline` probes ahead of the stage (the
    /// broadcast mem-move plus any device-side preparation), checking the
    /// device's capacity. Returns the host-to-device bytes moved.
    fn install_tables(
        &mut self,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<u64, EngineError>;

    /// Price one packet's recorded statistics on this worker's device:
    /// the base device time, *excluding* transfer legs and any cost term
    /// that depends on routing history (those are applied by
    /// [`DeviceProvider::commit_packet`]). `agg` is the stage's
    /// aggregation spec, when it has one. Pure w.r.t. the worker's clocks
    /// — safe to call from pool threads.
    fn charge(
        &self,
        work: &PacketWork,
        agg: Option<&AggSpec>,
        tables: &TableStore,
    ) -> Result<SimTime, EngineError>;

    /// Account one routed packet against this worker's simulated clocks:
    /// the input transfer on the worker's exchange path, the `base` device
    /// time from [`DeviceProvider::charge`] plus any history-dependent
    /// terms (the CPU model's cumulative group-table growth), the
    /// device-to-host return of build output, and the calibrated-estimate
    /// update. Control-plane only — called sequentially in packet order.
    fn commit_packet(
        &mut self,
        work: &PacketWork,
        base: SimTime,
        start: SimTime,
    ) -> CommitOutcome;

    /// Fold one packet's surviving rows into the worker's partial
    /// aggregation state. Called in routed-packet order from the worker's
    /// fold job — bitwise identical to folding inline during execution.
    fn fold_packet(&mut self, batch: &Batch);

    /// The worker's partial aggregation state (stream stages).
    fn agg(&self) -> Option<&AggState>;

    /// Total simulated busy time of the worker's compute resource.
    fn busy(&self) -> SimTime;

    /// The GPU index this worker runs on, if it is a GPU lane — the
    /// fault plane's addressing key. CPU workers return `None` and are
    /// never fault targets.
    fn gpu_index(&self) -> Option<usize> {
        None
    }

    /// Pure (no-queueing) duration of one `bytes` transfer on this
    /// worker's exchange path — what one failed transfer attempt wastes.
    /// Workers without a transfer leg charge nothing.
    fn transfer_duration(&self, _bytes: u64) -> SimTime {
        SimTime::ZERO
    }

    /// Charge a fault-recovery delay (retry backoff plus wasted transfer
    /// attempts) to this worker's simulated clock starting no earlier than
    /// `at`, so recovery is priced into busy time and makespan. Returns
    /// when the worker is free again. Control-plane only.
    fn charge_fault_delay(&mut self, at: SimTime, delay: SimTime) -> SimTime {
        at + delay
    }
}

/// Probe `packet` against `jt`, producing the joined batch (probe columns
/// followed by the selected build payload columns) and the measured average
/// chain length. Shared by both providers — the *functional* operator is
/// heterogeneity-oblivious; only the costing differs. (Also used by the
/// `hape-baselines` stand-ins, which share operator semantics but charge
/// their own execution models.)
pub fn probe_join(
    packet: &Batch,
    jt: &JoinTable,
    key_col: usize,
    build_payload_cols: &[usize],
) -> (Batch, f64) {
    probe_join_with(packet, jt, key_col, build_payload_cols, &mut Scratch::new())
}

/// [`probe_join`] writing its match-index selection vectors into reusable
/// per-worker `scratch` buffers instead of allocating fresh `Vec`s every
/// packet — the hot probe path the data plane runs.
pub fn probe_join_with(
    packet: &Batch,
    jt: &JoinTable,
    key_col: usize,
    build_payload_cols: &[usize],
    scratch: &mut Scratch,
) -> (Batch, f64) {
    let keys = packet.col(key_col).as_i32();
    scratch.sel.clear();
    scratch.build_sel.clear();
    let (probe_sel, build_sel) = (&mut scratch.sel, &mut scratch.build_sel);
    let mut steps_total: u64 = 0;
    for (i, &k) in keys.iter().enumerate() {
        steps_total += jt.probe(k, |e| {
            probe_sel.push(i as u32);
            build_sel.push(e);
        }) as u64;
    }
    let mut cols: Vec<Column> = packet.columns.iter().map(|c| c.take(probe_sel)).collect();
    for &b in build_payload_cols {
        cols.push(jt.batch.col(b).take(build_sel));
    }
    let out = Batch { columns: cols, partition: packet.partition };
    let avg_chain = if keys.is_empty() { 0.0 } else { steps_total as f64 / keys.len() as f64 };
    (out, avg_chain)
}

/// Assemble the joined batch from co-processing match pairs: the probe
/// side's columns gathered by `probe_sel`, followed by the selected build
/// payload columns gathered by `build_sel` — exactly the shape
/// [`probe_join`] produces, so the pipeline operators downstream of a
/// co-processed probe ([`crate::plan::ProbeExec::CoProcess`]) see the same
/// physical layout either way.
pub fn gather_matches(
    probe: &Batch,
    jt: &JoinTable,
    probe_sel: &[u32],
    build_sel: &[u32],
    build_payload_cols: &[usize],
) -> Batch {
    let mut cols: Vec<Column> = probe.columns.iter().map(|c| c.take(probe_sel)).collect();
    for &b in build_payload_cols {
        cols.push(jt.batch.col(b).take(build_sel));
    }
    Batch { columns: cols, partition: probe.partition }
}

fn lookup_ht<'a>(tables: &'a TableStore, ht: &str) -> Result<&'a Arc<JoinTable>, EngineError> {
    tables.get(ht).ok_or_else(|| EngineError::HashTableNotBuilt { table: ht.to_string() })
}

/// The CPU device provider.
#[derive(Debug, Clone)]
pub struct CpuProvider {
    /// Per-worker cost model (bandwidth share folded in).
    pub model: CpuCostModel,
}

impl CpuProvider {
    /// Price a packet's recorded statistics on this model: source scan +
    /// per-operator charges. Excludes the terminal aggregation entirely —
    /// its cost depends on the routed worker's cumulative group count,
    /// which the control plane applies at commit time
    /// ([`hape_ops::cpu::agg_cost`]).
    pub fn charge(
        &self,
        work: &PacketWork,
        tables: &TableStore,
    ) -> Result<SimTime, EngineError> {
        let mut time = cpu_ops::scan_cost(work.bytes, &self.model);
        for op in &work.ops {
            match op {
                OpTrace::Filter { rows_in, pred_ops, .. } => {
                    time += cpu_ops::filter_cost(*rows_in as u64, *pred_ops, &self.model);
                }
                OpTrace::Project { rows_in, ops, .. } => {
                    time += cpu_ops::project_cost(*rows_in as u64, *ops, &self.model);
                }
                OpTrace::Probe { ht, rows_in, avg_chain, .. } => {
                    let jt = lookup_ht(tables, ht)?;
                    // Fused probe: random table accesses only — the gathered
                    // payloads ride in registers to the next operator.
                    time += self.model.ht_probe(*rows_in as u64, *avg_chain, jt.bytes());
                }
                OpTrace::Stateful { rows_in, users, state_bytes, ops_per_row, .. } => {
                    time += stateful::cpu_cost(
                        *rows_in as u64,
                        *users as u64,
                        *state_bytes,
                        *ops_per_row,
                        &self.model,
                    );
                }
            }
        }
        Ok(time)
    }

    /// Push one packet through the fused pipeline.
    ///
    /// `agg` is this worker's partial aggregation state (for stream
    /// pipelines). A probe of a never-built hash table is the typed
    /// [`EngineError::HashTableNotBuilt`], not a panic.
    pub fn run_packet(
        &self,
        packet: Batch,
        pipeline: &Pipeline,
        tables: &TableStore,
        agg: Option<&mut AggState>,
    ) -> Result<PacketResult, EngineError> {
        let work = run_ops(packet, pipeline, tables, &mut Scratch::new())?;
        let mut time = self.charge(&work, tables)?;
        if let Some(state) = agg {
            if work.out.rows() > 0 {
                time += cpu_ops::agg_update(state, &work.out, &self.model);
            }
            return Ok(PacketResult { output: None, time });
        }
        Ok(PacketResult { output: Some(work.out), time })
    }
}

/// The GPU device provider.
#[derive(Debug, Clone)]
pub struct GpuProvider {
    /// The kernel simulator for the target GPU.
    pub sim: GpuSim,
}

impl GpuProvider {
    /// Price a packet's recorded statistics as GPU kernels against
    /// `ht_regions` (the broadcast hash tables' device-memory residences).
    /// The per-block survivor counts and the zero-copy key column recorded
    /// by [`run_ops`] let the simulator replay exactly the kernels the
    /// interleaved implementation used to launch — including the terminal
    /// aggregation kernel, whose GPU cost is packet-local (per-block
    /// scratchpad tables, no cumulative term).
    pub fn charge(
        &self,
        work: &PacketWork,
        agg: Option<&AggSpec>,
        tables: &TableStore,
        ht_regions: &HashMap<String, Region>,
    ) -> Result<SimTime, EngineError> {
        let mut time = SimTime::ZERO;
        let in_region = Region::at(1 << 24, work.bytes.max(1));
        for op in &work.ops {
            match op {
                OpTrace::Filter {
                    rows_in,
                    pred_ops,
                    pred_row_bytes,
                    out_row_bytes,
                    survivors,
                } => {
                    time += gpu_ops::filter_cost(
                        &self.sim,
                        in_region,
                        *rows_in,
                        *pred_row_bytes,
                        *out_row_bytes,
                        *pred_ops,
                        survivors,
                    )
                    .time;
                }
                OpTrace::Project { ops, bytes_in, .. } => {
                    // Fused projection: stream + compute, outputs stay in
                    // registers for the next fused operator.
                    time += gpu_ops::stream_pass(&self.sim, in_region, *bytes_in, *ops);
                }
                OpTrace::Probe {
                    ht, algo, avg_chain, keys, rows_out, payload_cols, ..
                } => {
                    let jt = lookup_ht(tables, ht)?;
                    let region = ht_regions
                        .get(ht)
                        .copied()
                        .unwrap_or_else(|| Region::at(1 << 44, jt.bytes().max(1)));
                    time += self.charge_probe(keys.as_i32(), jt, region, *avg_chain, *algo);
                    time += SimTime::from_ns((*rows_out * *payload_cols) as f64 * 0.05);
                }
                OpTrace::Stateful { rows_in, row_bytes, state_bytes, ops_per_row, .. } => {
                    time += stateful::gpu_cost(
                        &self.sim,
                        in_region,
                        *rows_in,
                        *row_bytes,
                        *state_bytes,
                        *ops_per_row,
                    );
                }
            }
        }
        if let (Some(spec), Some(_)) = (agg, &work.agg) {
            let region = Region::at(1 << 24, work.out.bytes().max(1));
            time += gpu_ops::agg_cost(&self.sim, region, &work.out, spec).time;
        }
        Ok(time)
    }

    /// Push one packet through the fused pipeline as GPU kernels.
    ///
    /// `ht_regions` maps hash-table names to their device-memory regions
    /// (placed there by the pre-stage broadcast `mem-move`).
    pub fn run_packet(
        &self,
        packet: Batch,
        pipeline: &Pipeline,
        tables: &TableStore,
        ht_regions: &HashMap<String, Region>,
        agg: Option<&mut AggState>,
    ) -> Result<PacketResult, EngineError> {
        let work = run_ops(packet, pipeline, tables, &mut Scratch::new())?;
        let spec = agg.as_ref().map(|s| s.spec().clone());
        let time = self.charge(&work, spec.as_ref(), tables, ht_regions)?;
        if let Some(state) = agg {
            if work.out.rows() > 0 {
                state.update(&work.out);
            }
            return Ok(PacketResult { output: None, time });
        }
        Ok(PacketResult { output: Some(work.out), time })
    }

    /// Charge a GPU join probe of `keys` against a device-resident table.
    fn charge_probe(
        &self,
        keys: &[i32],
        jt: &JoinTable,
        region: Region,
        avg_chain: f64,
        algo: JoinAlgo,
    ) -> SimTime {
        let n = keys.len();
        if n == 0 {
            return SimTime::ZERO;
        }
        let cfg = gpu_ops::grid_for(n);
        let bits = jt.table.bits;
        let report = match algo {
            JoinAlgo::NonPartitioned => self.sim.launch(&cfg, |blk| {
                let start = blk.block_idx * gpu_ops::ITEMS_PER_BLOCK;
                let end = (start + gpu_ops::ITEMS_PER_BLOCK).min(n);
                if start >= end {
                    return;
                }
                let cn = (end - start) as u64;
                blk.global_read_stream(&region, 0, cn * 8);
                blk.compute(cn, 6.0);
                // Random head + chain loads through L1/L2 — each drags a
                // whole line for 8 bytes of use.
                let offs: Vec<u64> = keys[start..end]
                    .iter()
                    .map(|&k| hape_join::hash32(k, bits) as u64 * 4)
                    .collect();
                blk.global_read(&region, &offs, 4);
                let chain_loads = (cn as f64 * avg_chain).ceil() as usize;
                let chain_offs: Vec<u64> = (0..chain_loads)
                    .map(|i| {
                        let k = keys[start + i % (end - start)];
                        (hape_join::hash32(k, bits.max(4)) as u64).wrapping_mul(2654435761)
                            % region.bytes.max(128)
                    })
                    .collect();
                blk.global_read(&region, &chain_offs, 12);
            }),
            JoinAlgo::Partitioned => self.sim.launch(&cfg, |blk| {
                let start = blk.block_idx * gpu_ops::ITEMS_PER_BLOCK;
                let end = (start + gpu_ops::ITEMS_PER_BLOCK).min(n);
                if start >= end {
                    return;
                }
                let cn = (end - start) as u64;
                // Partition the probe packet (read + consolidated write +
                // read back), then probe scratchpad-resident tables.
                blk.global_read_stream(&region, 0, cn * 8);
                blk.global_write_stream(cn * 8);
                blk.global_read_stream(&region, 0, cn * 8);
                blk.compute(cn, 9.0);
                let words: Vec<u32> =
                    keys[start..end].iter().map(|&k| hape_join::hash32(k, 12)).collect();
                blk.smem_access(&words);
                let extra = ((cn as f64) * (avg_chain - 1.0).max(0.0)) as usize;
                let extra_words: Vec<u32> = words.iter().take(extra).map(|&w| w + 1).collect();
                blk.smem_access(&extra_words);
            }),
        };
        report.time
    }
}

/// Exponentially-weighted update of a worker's ns-per-byte estimate.
fn update_estimate(est: &mut f64, time: SimTime, bytes: u64) {
    *est = 0.7 * *est + 0.3 * (time.as_ns() / bytes as f64);
}

/// One CPU core as a placed worker.
#[derive(Debug)]
pub struct CpuWorker {
    socket: usize,
    core: usize,
    res: Resource,
    provider: CpuProvider,
    agg: Option<AggState>,
    /// Distinct group keys of the packets committed so far — the control
    /// plane's mirror of the fold state's group count, used to price the
    /// cumulative group-table random-access term before the actual fold
    /// (which runs later, on the data plane, in this same commit order).
    groups_seen: HashSet<GroupKey>,
    est: f64,
}

impl CpuWorker {
    /// A worker for `core` of `socket`, charging `model` (the per-core
    /// share of the socket's bandwidth is already folded in).
    pub fn new(socket: usize, core: usize, model: CpuCostModel, agg: Option<AggState>) -> Self {
        CpuWorker {
            socket,
            core,
            res: Resource::new(format!("cpu{socket}.{core}")),
            provider: CpuProvider { model },
            agg,
            groups_seen: HashSet::new(),
            est: CPU_WORKER_SEED_NS_PER_BYTE,
        }
    }
}

impl DeviceProvider for CpuWorker {
    fn id(&self) -> WorkerId {
        WorkerId::CpuCore { socket: self.socket, core: self.core }
    }

    fn device(&self) -> DeviceType {
        DeviceType::Cpu
    }

    fn cost_class(&self) -> CostClass {
        CostClass::Cpu { socket: self.socket }
    }

    fn ready_at(&self, start: SimTime, _bytes: u64) -> SimTime {
        self.res.free_at().max(start)
    }

    fn est_ns_per_byte(&self) -> f64 {
        self.est
    }

    fn install_tables(
        &mut self,
        _pipeline: &Pipeline,
        _tables: &TableStore,
        _start: SimTime,
    ) -> Result<u64, EngineError> {
        // Built tables already live in host memory: no mem-move needed.
        Ok(0)
    }

    fn charge(
        &self,
        work: &PacketWork,
        _agg: Option<&AggSpec>,
        tables: &TableStore,
    ) -> Result<SimTime, EngineError> {
        // The aggregation term is history-dependent on the CPU model
        // (cumulative group-table growth): commit_packet applies it.
        self.provider.charge(work, tables)
    }

    fn commit_packet(
        &mut self,
        work: &PacketWork,
        base: SimTime,
        start: SimTime,
    ) -> CommitOutcome {
        let bytes = work.bytes.max(1);
        let mut time = base;
        if let (Some(state), Some(info)) = (&self.agg, &work.agg) {
            for k in &info.groups {
                self.groups_seen.insert(*k);
            }
            time += cpu_ops::agg_cost(
                state.spec(),
                info.rows,
                self.groups_seen.len(),
                &self.provider.model,
            );
        }
        let (_, done) = self.res.acquire(start, time);
        update_estimate(&mut self.est, time, bytes);
        CommitOutcome { done, h2d_bytes: 0 }
    }

    fn fold_packet(&mut self, batch: &Batch) {
        if let Some(state) = &mut self.agg {
            state.update(batch);
        }
    }

    fn agg(&self) -> Option<&AggState> {
        self.agg.as_ref()
    }

    fn busy(&self) -> SimTime {
        self.res.busy_time()
    }
}

/// One GPU as a placed worker: packets (and broadcast hash tables) reach
/// it over its PCIe link — realising the mem-move exchanges its segment
/// carries.
#[derive(Debug)]
pub struct GpuWorker {
    idx: usize,
    res: Resource,
    provider: GpuProvider,
    link: Link,
    dram_capacity: u64,
    dram_bw: f64,
    /// Hash tables this worker's segment broadcasts to it (from the
    /// segment's `MemMove { table: Some(_) }` exchanges, in order).
    broadcast: Vec<String>,
    /// Broadcast tables already resident in device memory from an earlier
    /// run of the shared fleet (the serving layer's cross-query build
    /// cache): they still occupy capacity and get regions, but skip the
    /// PCIe transfer and the partition prep.
    resident: HashSet<String>,
    ht_regions: HashMap<String, Region>,
    /// Cost-equivalence fingerprint: spec + broadcast list (see
    /// [`CostClass::Gpu`]).
    class_key: String,
    agg: Option<AggState>,
    est: f64,
}

impl GpuWorker {
    /// A worker for GPU `idx` with spec `spec`, reached over `link`.
    ///
    /// `broadcast` names the hash tables the worker's segment moves into
    /// device memory ahead of the stage — the IR's broadcast mem-move
    /// exchanges, which [`GpuWorker::install_tables`] executes.
    pub fn new(
        idx: usize,
        spec: GpuSpec,
        mut link: Link,
        fidelity: Fidelity,
        agg: Option<AggState>,
        broadcast: Vec<String>,
    ) -> Self {
        link.reset();
        // Identical spec + identical broadcast list ⇒ identical regions ⇒
        // bit-identical `charge` for every packet: one class, one price.
        let class_key = format!("{spec:?}#{broadcast:?}");
        GpuWorker {
            idx,
            res: Resource::new(format!("gpu{idx}")),
            dram_capacity: spec.dram_capacity as u64,
            dram_bw: spec.dram_bw,
            provider: GpuProvider { sim: GpuSim::new(spec, fidelity) },
            link,
            broadcast,
            resident: HashSet::new(),
            ht_regions: HashMap::new(),
            class_key,
            agg,
            est: GPU_WORKER_SEED_NS_PER_BYTE,
        }
    }

    /// Mark broadcast tables as already device-resident (retained from an
    /// earlier query of the same serving fleet): [`GpuWorker::install_tables`]
    /// still assigns their regions and counts them against capacity, but
    /// skips the PCIe transfer and device-side prep.
    pub fn with_resident(mut self, resident: HashSet<String>) -> Self {
        self.resident = resident;
        self
    }
}

impl DeviceProvider for GpuWorker {
    fn id(&self) -> WorkerId {
        WorkerId::Gpu(self.idx)
    }

    fn device(&self) -> DeviceType {
        DeviceType::Gpu
    }

    fn cost_class(&self) -> CostClass {
        CostClass::Gpu { key: self.class_key.clone() }
    }

    fn packet_share(&self) -> usize {
        GPU_PACKET_SHARE
    }

    fn ready_at(&self, start: SimTime, bytes: u64) -> SimTime {
        let arrive = self.link.free_at().max(start) + self.link.duration(bytes);
        self.res.free_at().max(arrive)
    }

    fn est_ns_per_byte(&self) -> f64 {
        self.est
    }

    /// Execute the segment's broadcast mem-moves: every table named by a
    /// `MemMove { table: Some(_) }` exchange crosses this worker's PCIe
    /// link into device memory, after the capacity check against this
    /// device's own spec. The exchange list is authoritative: a placed
    /// plan that omits the broadcasts runs the probes against host-staged
    /// default regions and skips the capacity constraint.
    fn install_tables(
        &mut self,
        pipeline: &Pipeline,
        tables: &TableStore,
        start: SimTime,
    ) -> Result<u64, EngineError> {
        if self.broadcast.is_empty() {
            return Ok(0);
        }
        self.ht_regions.clear();
        // `occupied` counts every broadcast table against capacity;
        // `moved` is the subset actually crossing the link this stage —
        // tables already device-resident (cross-query cache hits) occupy
        // memory and get regions, but skip the transfer.
        let mut occupied: u64 = 0;
        let mut moved: u64 = 0;
        let mut region_base = 1u64 << 44;
        for name in &self.broadcast {
            // Defensive dedupe: a table listed twice (duplicate probe
            // sites of a memoised build) still crosses the link — and
            // occupies device memory — once.
            if self.ht_regions.contains_key(name) {
                continue;
            }
            let jt = lookup_ht(tables, name)?;
            occupied += jt.bytes();
            if !self.resident.contains(name) {
                moved += jt.bytes();
            }
            self.ht_regions.insert(name.clone(), Region::at(region_base, jt.bytes().max(1)));
            region_base += jt.bytes().max(128) * 2;
        }
        // Partitioned probes pre-partition the device-resident build side
        // on the GPU (once per distinct table; resident tables were
        // prepped when they first arrived).
        let mut prep = SimTime::ZERO;
        let mut prepped: Vec<&str> = Vec::new();
        for op in &pipeline.ops {
            if let PipeOp::JoinProbe { ht, algo: JoinAlgo::Partitioned, .. } = op {
                if self.ht_regions.contains_key(ht)
                    && !self.resident.contains(ht)
                    && !prepped.contains(&ht.as_str())
                {
                    prepped.push(ht);
                    let jt = lookup_ht(tables, ht)?;
                    prep += SimTime::from_secs(4.0 * jt.bytes() as f64 / self.dram_bw);
                }
            }
        }
        // The capacity constraint — this device's own memory, with working
        // space (the paper's Q9 GPU-only failure, §6.4). Resident tables
        // still occupy their share.
        let required = (occupied as f64 * GPU_HT_WORKING_FACTOR) as u64;
        if required > self.dram_capacity {
            return Err(EngineError::GpuMemoryExceeded {
                required,
                capacity: self.dram_capacity,
            });
        }
        if moved > 0 || prep > SimTime::ZERO {
            let (_, arrived) = self.link.transfer(start, moved);
            let (_, ready) = self.res.acquire(arrived, prep);
            debug_assert!(ready >= arrived);
        }
        Ok(moved)
    }

    fn charge(
        &self,
        work: &PacketWork,
        agg: Option<&AggSpec>,
        tables: &TableStore,
    ) -> Result<SimTime, EngineError> {
        self.provider.charge(work, agg, tables, &self.ht_regions)
    }

    fn commit_packet(
        &mut self,
        work: &PacketWork,
        base: SimTime,
        start: SimTime,
    ) -> CommitOutcome {
        let bytes = work.bytes.max(1);
        let (_, arrived) = self.link.transfer(start, bytes);
        let (_, done) = self.res.acquire(arrived, base);
        // A build pipeline's output is consumed host-side (the hash table
        // is built in host memory for broadcasting): it rides the link
        // back, and the packet is not finished until the return lands.
        let done = if !work.folds && work.out.rows() > 0 {
            self.link.transfer(done, work.out.bytes().max(1)).1
        } else {
            done
        };
        update_estimate(&mut self.est, base, bytes);
        CommitOutcome { done, h2d_bytes: bytes }
    }

    fn fold_packet(&mut self, batch: &Batch) {
        if let Some(state) = &mut self.agg {
            state.update(batch);
        }
    }

    fn agg(&self) -> Option<&AggState> {
        self.agg.as_ref()
    }

    fn busy(&self) -> SimTime {
        self.res.busy_time()
    }

    fn gpu_index(&self) -> Option<usize> {
        Some(self.idx)
    }

    fn transfer_duration(&self, bytes: u64) -> SimTime {
        self.link.duration(bytes)
    }

    /// Retry backoff and wasted transfer attempts occupy the device (it is
    /// stalled waiting on its link), so the delay lands on the compute
    /// resource: busy time and every later packet's start shift by it.
    fn charge_fault_delay(&mut self, at: SimTime, delay: SimTime) -> SimTime {
        self.res.acquire(at, delay).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_sim::{CpuSpec, Fidelity, GpuSpec};
    use hape_storage::Column;

    fn packet(n: usize) -> Batch {
        Batch::new(vec![
            Column::from_i32((0..n as i32).collect()),
            Column::from_f64((0..n).map(|i| i as f64).collect()),
        ])
    }

    fn dim_table() -> Arc<JoinTable> {
        // keys 0..100 step 2, payload = key*10
        let keys: Vec<i32> = (0..50).map(|i| i * 2).collect();
        let pay: Vec<f64> = keys.iter().map(|&k| (k * 10) as f64).collect();
        let batch = Batch::new(vec![Column::from_i32(keys), Column::from_f64(pay)]);
        Arc::new(JoinTable::build(batch, 0))
    }

    fn pipeline() -> Pipeline {
        Pipeline::scan("t")
            .filter(Expr::lt(Expr::col(0), Expr::LitI32(100)))
            .join("d", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![
                (AggFunc::Count, Expr::col(0)),
                (AggFunc::Sum, Expr::col(2)), // build payload
            ]))
    }

    #[test]
    fn cpu_and_gpu_providers_agree_on_results() {
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = pipeline();

        let cpu = CpuProvider { model: CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12) };
        let mut cpu_state = AggState::new(p.agg.clone().unwrap());
        let r1 = cpu.run_packet(packet(1000), &p, &tables, Some(&mut cpu_state)).unwrap();
        assert!(r1.output.is_none());

        let gpu = GpuProvider { sim: GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic) };
        let mut gpu_state = AggState::new(p.agg.clone().unwrap());
        let r2 = gpu
            .run_packet(packet(1000), &p, &tables, &HashMap::new(), Some(&mut gpu_state))
            .unwrap();
        assert!(r2.output.is_none());

        let a = cpu_state.finish();
        let b = gpu_state.finish();
        assert_eq!(a, b);
        // 50 keys of 0..100 are even and survive the filter.
        assert_eq!(a[0].1[0], 50.0);
        assert_eq!(a[0].1[1], (0..50).map(|i| (i * 2 * 10) as f64).sum::<f64>());
        assert!(r1.time.as_ns() > 0.0);
        assert!(r2.time.as_ns() > 0.0);
    }

    #[test]
    fn build_pipeline_returns_output() {
        let cpu = CpuProvider { model: CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12) };
        let p = Pipeline::scan("t").filter(Expr::lt(Expr::col(0), Expr::LitI32(10)));
        let r = cpu.run_packet(packet(100), &p, &TableStore::new(), None).unwrap();
        let out = r.output.unwrap();
        assert_eq!(out.rows(), 10);
    }

    #[test]
    fn unbuilt_hash_table_is_a_typed_error() {
        let cpu = CpuProvider { model: CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12) };
        let p = Pipeline::scan("t").join("ghost", 0, vec![], JoinAlgo::NonPartitioned);
        let err = cpu.run_packet(packet(16), &p, &TableStore::new(), None).unwrap_err();
        assert!(
            matches!(err, EngineError::HashTableNotBuilt { ref table } if table == "ghost")
        );
        let gpu = GpuProvider { sim: GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic) };
        let err = gpu
            .run_packet(packet(16), &p, &TableStore::new(), &HashMap::new(), None)
            .unwrap_err();
        assert!(matches!(err, EngineError::HashTableNotBuilt { .. }));
    }

    #[test]
    fn partitioned_probe_cheaper_for_large_tables() {
        // A large device-resident table: random NPJ probes over-fetch;
        // the partitioned probe stays in the scratchpad.
        let n = 1 << 20;
        let keys: Vec<i32> = (0..n as i32).collect();
        let pay: Vec<f64> = vec![0.0; n];
        let jt = Arc::new(JoinTable::build(
            Batch::new(vec![Column::from_i32(keys), Column::from_f64(pay)]),
            0,
        ));
        let mut tables = TableStore::new();
        tables.insert("big".into(), jt.clone());
        let gpu = GpuProvider { sim: GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic) };
        let mut regions = HashMap::new();
        regions.insert("big".to_string(), Region::at(1 << 44, jt.bytes()));

        let probe = packet(1 << 18);
        let npj = Pipeline::scan("t")
            .join("big", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]));
        let part = Pipeline::scan("t")
            .join("big", 0, vec![1], JoinAlgo::Partitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]));
        let mut s1 = AggState::new(npj.agg.clone().unwrap());
        let mut s2 = AggState::new(part.agg.clone().unwrap());
        let t_npj =
            gpu.run_packet(probe.clone(), &npj, &tables, &regions, Some(&mut s1)).unwrap().time;
        let t_part =
            gpu.run_packet(probe, &part, &tables, &regions, Some(&mut s2)).unwrap().time;
        assert_eq!(s1.finish(), s2.finish());
        assert!(t_part.as_secs() < t_npj.as_secs(), "partitioned {t_part} !< npj {t_npj}");
    }

    #[test]
    fn workers_unify_devices_behind_the_trait() {
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = pipeline();
        let agg = p.agg.clone().unwrap();
        let mut workers: Vec<Box<dyn DeviceProvider>> = vec![
            Box::new(CpuWorker::new(
                0,
                0,
                CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12),
                Some(AggState::new(agg.clone())),
            )),
            Box::new(GpuWorker::new(
                0,
                GpuSpec::gtx_1080(),
                Link::pcie3_x16("pcie0"),
                Fidelity::Analytic,
                Some(AggState::new(agg.clone())),
                vec!["d".into()],
            )),
        ];
        let mut merged = AggState::new(agg.clone());
        let mut scratch = Scratch::new();
        for w in &mut workers {
            let h2d = w.install_tables(&p, &tables, SimTime::ZERO).unwrap();
            // Only the GPU worker needs the broadcast mem-move.
            assert_eq!(h2d > 0, w.device() == DeviceType::Gpu, "{:?}", w.id());
            // Data plane: kernels + class pricing; control plane: commit;
            // data plane again: the fold — the engine's three beats.
            let work = run_ops(packet(1000), &p, &tables, &mut scratch).unwrap();
            assert!(work.folds);
            let base = w.charge(&work, Some(&agg), &tables).unwrap();
            assert!(base.as_ns() > 0.0, "{:?}", w.id());
            let out = w.commit_packet(&work, base, SimTime::ZERO);
            assert!(out.done.as_ns() > 0.0);
            w.fold_packet(&work.out);
            assert!(w.busy().as_ns() > 0.0);
            merged.merge(w.agg().unwrap());
        }
        let rows = merged.finish();
        assert_eq!(rows[0].1[0], 100.0); // both workers saw 50 matches
    }

    #[test]
    fn run_packet_equals_split_charge_plus_commit() {
        // The compatibility wrapper and the split planes must price a
        // packet identically — the bit-identity the control plane's replay
        // rests on.
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = pipeline();
        let agg = p.agg.clone().unwrap();
        let model = CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12);
        let cpu = CpuProvider { model: model.clone() };
        let mut state = AggState::new(agg.clone());
        let whole = cpu.run_packet(packet(1000), &p, &tables, Some(&mut state)).unwrap().time;

        let mut worker = CpuWorker::new(0, 0, model, Some(AggState::new(agg.clone())));
        let work = run_ops(packet(1000), &p, &tables, &mut Scratch::new()).unwrap();
        let base = worker.charge(&work, Some(&agg), &tables).unwrap();
        let out = worker.commit_packet(&work, base, SimTime::ZERO);
        assert_eq!(out.done, whole, "split planes diverge from the fused path");
        assert_eq!(worker.busy(), whole);
    }

    #[test]
    fn duplicate_broadcast_entries_install_once() {
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = Pipeline::scan("t").join("d", 0, vec![1], JoinAlgo::NonPartitioned).join(
            "d",
            0,
            vec![1],
            JoinAlgo::NonPartitioned,
        );
        let mut once = GpuWorker::new(
            0,
            GpuSpec::gtx_1080(),
            Link::pcie3_x16("pcie0"),
            Fidelity::Analytic,
            None,
            vec!["d".into()],
        );
        let mut twice = GpuWorker::new(
            0,
            GpuSpec::gtx_1080(),
            Link::pcie3_x16("pcie0"),
            Fidelity::Analytic,
            None,
            vec!["d".into(), "d".into()],
        );
        let a = once.install_tables(&p, &tables, SimTime::ZERO).unwrap();
        let b = twice.install_tables(&p, &tables, SimTime::ZERO).unwrap();
        assert_eq!(a, b, "a duplicated table must cross the link once");
        assert_eq!(a, dim_table().bytes());
    }

    #[test]
    fn gpu_build_output_rides_the_link_back() {
        // A build pipeline (no aggregation) produces output the host
        // consumes: the worker is not done until the d2h return lands —
        // at least two link trips for a pass-through scan.
        let mut w = GpuWorker::new(
            0,
            GpuSpec::gtx_1080(),
            Link::pcie3_x16("pcie0"),
            Fidelity::Analytic,
            None,
            Vec::new(),
        );
        let pkt = packet(100_000);
        let bytes = pkt.bytes();
        let tables = TableStore::new();
        let p = Pipeline::scan("t");
        let work = run_ops(pkt, &p, &tables, &mut Scratch::new()).unwrap();
        assert!(!work.folds && work.out.rows() > 0);
        let base = w.charge(&work, None, &tables).unwrap();
        let out = w.commit_packet(&work, base, SimTime::ZERO);
        let two_trips = Link::pcie3_x16("x").duration(bytes) * 2.0;
        assert!(out.done >= two_trips, "{} < {}", out.done, two_trips);
    }

    #[test]
    fn gpu_worker_rejects_oversized_tables_on_its_own_capacity() {
        let mut tables = TableStore::new();
        tables.insert("d".into(), dim_table());
        let p = pipeline();
        let mut spec = GpuSpec::gtx_1080();
        spec.dram_capacity = 64; // far below the table bytes
        let mut w = GpuWorker::new(
            0,
            spec,
            Link::pcie3_x16("pcie0"),
            Fidelity::Analytic,
            None,
            vec!["d".into()],
        );
        let err = w.install_tables(&p, &tables, SimTime::ZERO).unwrap_err();
        match err {
            EngineError::GpuMemoryExceeded { required, capacity } => {
                assert_eq!(capacity, 64);
                assert!(required > capacity);
            }
            e => panic!("unexpected error {e}"),
        }
    }
}
