//! Static plan verification: a multi-pass IR checker for [`QueryPlan`]
//! and [`PlacedPlan`] — the engine's MIR/HLO-style validator.
//!
//! The engine's correctness rests on a web of IR invariants that the
//! lower/optimize/place passes are supposed to uphold: every
//! [`crate::traits::HetTraits`] mismatch must be discharged by exactly the
//! right [`Exchange`], stateful aggregates need user-aligned packets in
//! source coordinates, co-process stages need a final probe and ≥ 1 GPU
//! lane, broadcast hash tables must fit the receiving GPU. A buggy pass
//! otherwise only fails deep inside the interpreter — or worse, runs
//! wrong. This module checks the invariants *statically*, before
//! execution, and reports violations as typed [`Diagnostic`]s carrying
//! (stage, segment, op) locations.
//!
//! ## Invariants ↔ passes ↔ diagnostics ↔ paper sections
//!
//! | invariant | pass | diagnostic | paper § |
//! |---|---|---|---|
//! | every column reference resolves in the dataflow schema | [`Pass::SchemaDataflow`] | [`DiagnosticKind::ColumnOutOfRange`] | §3 (operator fusion) |
//! | scan sources exist in the catalog | [`Pass::SchemaDataflow`] | [`DiagnosticKind::UnknownSource`] | §3 |
//! | probe keys are `i32`/date typed | [`Pass::SchemaDataflow`] | [`DiagnosticKind::ProbeKeyType`] | §4.1 (hash joins) |
//! | probe payloads index the build's output | [`Pass::SchemaDataflow`] | [`DiagnosticKind::PayloadOutOfRange`] | §4.1 |
//! | probes reference earlier builds | [`Pass::SchemaDataflow`] | [`DiagnosticKind::ProbeUnbuilt`] | §3 (stage order) |
//! | builds never aggregate; the one stream does | [`Pass::SchemaDataflow`] | [`DiagnosticKind::BuildAggregates`] / [`DiagnosticKind::StreamMissingAgg`] / [`DiagnosticKind::NotExactlyOneStream`] | §3 |
//! | only filters precede a stateful aggregate | [`Pass::SchemaDataflow`] | [`DiagnosticKind::StatefulAfterReshape`] | PR 7 order contract |
//! | stateful user/ts/event columns are correctly typed | [`Pass::SchemaDataflow`] | [`DiagnosticKind::StatefulColumnType`] | PR 7 |
//! | segment traits match the device's recomputed traits | [`Pass::TraitCoherence`] | [`DiagnosticKind::TraitsMismatch`] | §3 (trait tuples) |
//! | every trait mismatch has its converter | [`Pass::TraitCoherence`] | [`DiagnosticKind::MissingExchange`] / [`DiagnosticKind::MissingBroadcast`] / [`DiagnosticKind::MissingRouter`] | §3, Fig. 3 |
//! | no dead converters exist | [`Pass::TraitCoherence`] | [`DiagnosticKind::DeadExchange`] / [`DiagnosticKind::UnexpectedBroadcast`] | §3 |
//! | the router converts dop 1 → the stage's fan-out | [`Pass::TraitCoherence`] | [`DiagnosticKind::RouterDopMismatch`] | §4.2 (router) |
//! | every segment's device exists on the server | [`Pass::DeviceAudit`] | [`DiagnosticKind::DeviceNotPresent`] | §2.1 |
//! | broadcast footprints fit the receiving GPU | [`Pass::DeviceAudit`] | [`DiagnosticKind::BroadcastOverCapacity`] | §6.4 |
//! | co-process stages end in a probe of their table | [`Pass::DeviceAudit`] | [`DiagnosticKind::CoProcessFinalProbeMismatch`] | §5 |
//! | co-process stages have ≥ 1 GPU lane, CPU-only segments | [`Pass::DeviceAudit`] | [`DiagnosticKind::CoProcessNoGpuLane`] / [`DiagnosticKind::CoProcessGpuSegment`] | §5 |
//! | a co-partitioning fanout exists within CPU bounds | [`Pass::DeviceAudit`] | [`DiagnosticKind::CoProcessInfeasibleFanout`] | §5 |
//! | stateful user column is valid in source coordinates | [`Pass::Determinism`] | [`DiagnosticKind::StatefulAlignmentInvalid`] | PR 7 (user-aligned packets) |
//! | the stage barrier covers every routed worker | [`Pass::Determinism`] | [`DiagnosticKind::BarrierCoverage`] | PR 5 (control plane) |
//! | packetization makes progress | [`Pass::Determinism`] | [`DiagnosticKind::InvalidPacketRows`] | PR 5 |
//!
//! ## Structural vs. runtime-checked diagnostics
//!
//! Not every diagnostic should abort execution in debug builds. The
//! engine already rejects some conditions with *typed runtime errors* —
//! an absent device is [`crate::error::EngineError::DeviceNotPresent`],
//! an unbuilt probe is
//! [`crate::error::EngineError::HashTableNotBuilt`], an over-capacity
//! broadcast is [`crate::error::EngineError::GpuMemoryExceeded`] — and
//! those conditions depend on catalog/server *state*, not on the
//! correctness of the pass pipeline. The always-on `debug_assertions`
//! hook (`debug_check_placed`) therefore panics only on **structural**
//! diagnostics ([`DiagnosticKind::is_structural`]): the invariants whose
//! violation the runtime would otherwise silently mis-execute. Explicit
//! verification ([`verify_placed`], [`crate::session::Session::verify`],
//! `figures --verify`) always reports the full set.
//!
//! Verification is a **pure reader** of the IR: it never mutates the
//! plan, the catalog or the server, so running it cannot perturb the
//! engine's bit-identical determinism guarantees.

use std::collections::HashMap;

use hape_sim::topology::{DeviceId, Server};
use hape_storage::DataType;

use crate::catalog::Catalog;
use crate::cost::{CostModel, HtEstimates};
use crate::exchange::Exchange;
use crate::place::{segment_traits, PlacedPlan, PlacedStage, Segment};
use crate::plan::{PipeOp, Pipeline, QueryPlan, Stage};
use crate::provider::GPU_HT_WORKING_FACTOR;
use crate::traits::HetTraits;

/// Which verifier pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Pass 1: walk every pipeline propagating the available column
    /// set/types; reject dropped/unknown column references and malformed
    /// operator orders.
    SchemaDataflow,
    /// Pass 2: recompute the [`HetTraits`] flow across placed segments;
    /// assert every mismatch is discharged by exactly the right exchange
    /// and no dead exchanges exist.
    TraitCoherence,
    /// Pass 3: devices exist on the server, broadcast footprints fit the
    /// receiving GPUs, co-process stages are §5-shaped.
    DeviceAudit,
    /// Pass 4: stateful stages carry a valid user-aligned packetization
    /// contract; stage barriers cover every routed worker.
    Determinism,
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Pass::SchemaDataflow => "schema-dataflow",
            Pass::TraitCoherence => "trait-coherence",
            Pass::DeviceAudit => "device-audit",
            Pass::Determinism => "determinism",
        };
        write!(f, "{s}")
    }
}

/// What exactly is wrong — one variant per invariant class the verifier
/// checks (the mutation self-test corpus in `tests/verify.rs` corrupts a
/// valid plan one class at a time and asserts the specific variant).
#[derive(Debug, Clone, PartialEq)]
pub enum DiagnosticKind {
    /// A pipeline scans a table the catalog does not have.
    UnknownSource {
        /// The missing source table.
        table: String,
    },
    /// An expression or operator references a column the dataflow schema
    /// does not have at that point.
    ColumnOutOfRange {
        /// The out-of-range column index.
        column: usize,
        /// The schema width at that point.
        width: usize,
        /// Where the reference appears (`filter`, `project`, `probe key`,
        /// `agg`, `group-by`, `build key`).
        context: &'static str,
    },
    /// A probe key column is not `i32`/date typed in the dataflow schema.
    ProbeKeyType {
        /// The probed hash table.
        ht: String,
        /// The key column.
        key_col: usize,
        /// The type the dataflow found there.
        found: DataType,
    },
    /// A probe's build-payload index exceeds the build stage's output
    /// width.
    PayloadOutOfRange {
        /// The probed hash table.
        ht: String,
        /// The offending payload column index.
        column: usize,
        /// The build pipeline's output width.
        build_width: usize,
    },
    /// A pipeline probes a hash table no earlier stage builds.
    ProbeUnbuilt {
        /// The unbuilt table.
        ht: String,
    },
    /// A build stage's pipeline ends in an aggregation.
    BuildAggregates {
        /// The offending build stage name.
        name: String,
    },
    /// A stream stage's pipeline has no terminal aggregation.
    StreamMissingAgg,
    /// The plan does not have exactly one stream stage.
    NotExactlyOneStream {
        /// How many it has.
        streams: usize,
    },
    /// A stateful aggregate appears after a row-reshaping operator.
    StatefulAfterReshape,
    /// A stateful aggregate's user/ts/event column has the wrong type.
    StatefulColumnType {
        /// The column index.
        column: usize,
        /// Which role the column plays (`user`, `ts`, `event`).
        role: &'static str,
        /// The type the dataflow found there.
        found: DataType,
    },
    /// A segment's stored traits disagree with the traits recomputed from
    /// its device and the server.
    TraitsMismatch {
        /// The traits recomputed from the device.
        expected: HetTraits,
        /// The traits the segment carries.
        found: HetTraits,
    },
    /// A trait mismatch on a segment's input edge has no converting
    /// exchange.
    MissingExchange {
        /// Rendered form of the missing exchange.
        expected: String,
    },
    /// An exchange exists on an edge with no trait mismatch requiring it
    /// (or with the wrong endpoints).
    DeadExchange {
        /// Rendered form of the dead exchange.
        exchange: String,
    },
    /// A device-local segment probes a hash table its input edge never
    /// broadcasts.
    MissingBroadcast {
        /// The un-broadcast table.
        ht: String,
    },
    /// A broadcast exists for a table the pipeline does not probe, or
    /// duplicates another broadcast of the same table.
    UnexpectedBroadcast {
        /// The spurious broadcast's table.
        ht: String,
    },
    /// The stage fans out over more than one worker but has no router.
    MissingRouter {
        /// The stage's total degree of parallelism.
        total_dop: usize,
    },
    /// The router's dop conversion does not match the stage: the source
    /// side must be 1 and the consumer side the segments' summed dop.
    RouterDopMismatch {
        /// Router producer-side dop.
        from_dop: usize,
        /// Router consumer-side dop.
        to_dop: usize,
        /// The segments' summed dop.
        total_dop: usize,
    },
    /// A segment (or co-process lane) targets a device the server does
    /// not have.
    DeviceNotPresent {
        /// The absent device.
        device: DeviceId,
    },
    /// The broadcast hash tables (with working space) exceed the
    /// receiving GPU's memory — the §6.4 capacity constraint, checked on
    /// the cost model's estimates.
    BroadcastOverCapacity {
        /// The receiving GPU.
        device: DeviceId,
        /// Estimated bytes required (tables × working factor).
        required: u64,
        /// The device's capacity.
        capacity: u64,
    },
    /// A co-process stage's named table is not its pipeline's final
    /// probe.
    CoProcessFinalProbeMismatch {
        /// The table the stage claims to co-process.
        ht: String,
    },
    /// A co-process stage has no GPU lanes.
    CoProcessNoGpuLane,
    /// A co-process stage's CPU prefix has a GPU segment.
    CoProcessGpuSegment {
        /// The offending segment's device.
        device: DeviceId,
    },
    /// No legal co-partitioning fanout exists for the co-processed probe
    /// within the CPU's multi-pass bound.
    CoProcessInfeasibleFanout {
        /// The co-processed table.
        ht: String,
    },
    /// A stateful aggregate's user column is not a valid column of the
    /// *source* table — the engine aligns packet boundaries on it in
    /// source coordinates, so an invalid index breaks the user-aligned
    /// packetization contract.
    StatefulAlignmentInvalid {
        /// The user column the aggregate carries.
        user_col: usize,
        /// The source table's width.
        source_width: usize,
    },
    /// The stage router routes packets to a different worker count than
    /// the segments instantiate, so the stage barrier would not cover
    /// every worker that received packets.
    BarrierCoverage {
        /// Workers the router routes to.
        to_dop: usize,
        /// Workers the segments instantiate (and the barrier waits on).
        total_dop: usize,
    },
    /// The plan pins packetization to zero rows per packet.
    InvalidPacketRows,
}

impl DiagnosticKind {
    /// True for invariants whose violation the runtime would silently
    /// mis-execute — the ones the `debug_assertions` hook aborts on.
    /// False for conditions the engine already rejects with typed runtime
    /// errors (absent devices, unbuilt probes, capacity, co-process
    /// lane shape), which depend on catalog/server state rather than on
    /// the pass pipeline's correctness.
    pub fn is_structural(&self) -> bool {
        !matches!(
            self,
            DiagnosticKind::UnknownSource { .. }
                | DiagnosticKind::ProbeUnbuilt { .. }
                | DiagnosticKind::DeviceNotPresent { .. }
                | DiagnosticKind::BroadcastOverCapacity { .. }
                | DiagnosticKind::CoProcessNoGpuLane
                | DiagnosticKind::CoProcessInfeasibleFanout { .. }
        )
    }
}

impl std::fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnosticKind::UnknownSource { table } => {
                write!(f, "scan source {table:?} is not in the catalog")
            }
            DiagnosticKind::ColumnOutOfRange { column, width, context } => {
                write!(f, "column {column} out of range in {context} (schema width {width})")
            }
            DiagnosticKind::ProbeKeyType { ht, key_col, found } => {
                write!(f, "probe of {ht:?} keys on column {key_col} of type {found:?} (need i32/date)")
            }
            DiagnosticKind::PayloadOutOfRange { ht, column, build_width } => {
                write!(
                    f,
                    "probe of {ht:?} appends build column {column} but the build output \
                     has {build_width} columns"
                )
            }
            DiagnosticKind::ProbeUnbuilt { ht } => {
                write!(f, "hash table {ht:?} probed but never built by an earlier stage")
            }
            DiagnosticKind::BuildAggregates { name } => {
                write!(f, "build stage {name:?} must not aggregate")
            }
            DiagnosticKind::StreamMissingAgg => {
                write!(f, "stream pipeline has no terminal aggregation")
            }
            DiagnosticKind::NotExactlyOneStream { streams } => {
                write!(f, "plan needs exactly one stream stage (got {streams})")
            }
            DiagnosticKind::StatefulAfterReshape => {
                write!(f, "stateful aggregate preceded by a row-reshaping operator")
            }
            DiagnosticKind::StatefulColumnType { column, role, found } => {
                write!(f, "stateful {role} column {column} has type {found:?}")
            }
            DiagnosticKind::TraitsMismatch { expected, found } => {
                write!(f, "segment traits {found:?} disagree with recomputed {expected:?}")
            }
            DiagnosticKind::MissingExchange { expected } => {
                write!(f, "missing exchange {expected}")
            }
            DiagnosticKind::DeadExchange { exchange } => {
                write!(f, "dead exchange {exchange}")
            }
            DiagnosticKind::MissingBroadcast { ht } => {
                write!(f, "probed table {ht:?} is never broadcast to this segment")
            }
            DiagnosticKind::UnexpectedBroadcast { ht } => {
                write!(f, "broadcast of {ht:?} not required by any probe (or duplicated)")
            }
            DiagnosticKind::MissingRouter { total_dop } => {
                write!(f, "stage fans out over {total_dop} workers but has no router")
            }
            DiagnosticKind::RouterDopMismatch { from_dop, to_dop, total_dop } => {
                write!(
                    f,
                    "router converts {from_dop} -> {to_dop} but the stage needs 1 -> {total_dop}"
                )
            }
            DiagnosticKind::DeviceNotPresent { device } => {
                write!(f, "device {device} is not on the server")
            }
            DiagnosticKind::BroadcastOverCapacity { device, required, capacity } => {
                write!(
                    f,
                    "broadcast tables need {required} B (with working space) but {device} \
                     has {capacity} B"
                )
            }
            DiagnosticKind::CoProcessFinalProbeMismatch { ht } => {
                write!(f, "co-process stage's final probe does not target {ht:?}")
            }
            DiagnosticKind::CoProcessNoGpuLane => {
                write!(f, "co-process stage has no GPU lanes")
            }
            DiagnosticKind::CoProcessGpuSegment { device } => {
                write!(f, "co-process CPU prefix has a GPU segment on {device}")
            }
            DiagnosticKind::CoProcessInfeasibleFanout { ht } => {
                write!(f, "no legal co-partitioning fanout for {ht:?} within CPU bounds")
            }
            DiagnosticKind::StatefulAlignmentInvalid { user_col, source_width } => {
                write!(
                    f,
                    "stateful user column {user_col} is outside the source schema \
                     (width {source_width}); packet alignment would be undefined"
                )
            }
            DiagnosticKind::BarrierCoverage { to_dop, total_dop } => {
                write!(
                    f,
                    "router routes to {to_dop} workers but the stage barrier waits on {total_dop}"
                )
            }
            DiagnosticKind::InvalidPacketRows => {
                write!(f, "packet_rows = 0 cannot make progress")
            }
        }
    }
}

/// One verifier finding, located in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stage index, when the finding is stage-local.
    pub stage: Option<usize>,
    /// Segment device, when the finding is segment-local.
    pub segment: Option<DeviceId>,
    /// Pipeline operator index, when the finding is operator-local.
    pub op: Option<usize>,
    /// The pass that found it.
    pub pass: Pass,
    /// What is wrong.
    pub kind: DiagnosticKind,
}

impl std::fmt::Display for Diagnostic {
    /// Renders like one indented line of
    /// [`Session::explain`](crate::session::Session::explain):
    /// `stage 5 segment gpu0 op 1: [trait-coherence] missing exchange ...`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stage {
            Some(s) => write!(f, "stage {s}")?,
            None => write!(f, "plan")?,
        }
        if let Some(d) = self.segment {
            write!(f, " segment {d}")?;
        }
        if let Some(op) = self.op {
            write!(f, " op {op}")?;
        }
        write!(f, ": [{}] {}", self.pass, self.kind)
    }
}

/// A failed verification: the plan's name plus every diagnostic, in
/// (stage, segment, op) order.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The verified plan's display name.
    pub plan: String,
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyError {
    /// Keep only the structural diagnostics
    /// ([`DiagnosticKind::is_structural`]); `None` when none are.
    pub fn structural(&self) -> Option<VerifyError> {
        let diagnostics: Vec<Diagnostic> =
            self.diagnostics.iter().filter(|d| d.kind.is_structural()).cloned().collect();
        if diagnostics.is_empty() {
            None
        } else {
            Some(VerifyError { plan: self.plan.clone(), diagnostics })
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "verify {}: {} diagnostic{}",
            self.plan,
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verify a logical-level physical plan (pass 1 only — the placed-IR
/// passes need segments to look at). Ok when no diagnostics.
pub fn verify_plan(plan: &QueryPlan, catalog: &Catalog) -> Result<(), VerifyError> {
    let diagnostics = check_plan(plan, catalog);
    if diagnostics.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { plan: plan.name.clone(), diagnostics })
    }
}

/// Verify a placed plan: all four passes. Ok when no diagnostics.
pub fn verify_placed(
    placed: &PlacedPlan,
    catalog: &Catalog,
    server: &Server,
) -> Result<(), VerifyError> {
    let diagnostics = check_placed(placed, catalog, server);
    if diagnostics.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { plan: placed.name.clone(), diagnostics })
    }
}

/// The `debug_assertions` hook: abort on structural diagnostics (the
/// invariants whose violation the runtime would silently mis-execute),
/// leave runtime-checked conditions to the engine's typed errors. Called
/// by [`crate::engine::Engine::begin`] and the optimizer on every chosen
/// candidate in debug builds; compiled out entirely in release builds.
#[cfg(debug_assertions)]
pub(crate) fn debug_check_placed(placed: &PlacedPlan, catalog: &Catalog, server: &Server) {
    if let Err(e) = verify_placed(placed, catalog, server) {
        if let Some(structural) = e.structural() {
            panic!("placed plan failed static verification (pass-pipeline bug):\n{structural}");
        }
    }
}

/// The one-line footer [`Session::explain`](crate::session::Session::explain)
/// appends — `verified: N stages, M diagnostics` — followed by one
/// rendered line per diagnostic when any exist.
pub fn explain_footer(placed: &PlacedPlan, catalog: &Catalog, server: &Server) -> String {
    use std::fmt::Write as _;
    let diagnostics = check_placed(placed, catalog, server);
    let mut out = format!(
        "verified: {} stage{}, {} diagnostic{}\n",
        placed.stages.len(),
        if placed.stages.len() == 1 { "" } else { "s" },
        diagnostics.len(),
        if diagnostics.len() == 1 { "" } else { "s" }
    );
    for d in &diagnostics {
        let _ = writeln!(out, "  {d}");
    }
    out
}

/// Run pass 1 over a logical-level plan, returning every diagnostic.
pub fn check_plan(plan: &QueryPlan, catalog: &Catalog) -> Vec<Diagnostic> {
    let mut cx = Checker::new(catalog);
    let mut streams = 0usize;
    for (si, stage) in plan.stages.iter().enumerate() {
        match stage {
            Stage::Build { name, key_col, pipeline } => {
                cx.check_build(si, name, *key_col, pipeline);
            }
            Stage::Stream { pipeline } => {
                streams += 1;
                cx.check_stream(si, pipeline);
            }
        }
    }
    cx.check_stream_count(streams);
    cx.diagnostics
}

/// Run all four passes over a placed plan, returning every diagnostic.
/// `catalog` must be the catalog the plan's scans resolve against — for
/// lowered queries, the derived catalog in
/// [`crate::query::LoweredQuery::catalog`].
pub fn check_placed(
    placed: &PlacedPlan,
    catalog: &Catalog,
    server: &Server,
) -> Vec<Diagnostic> {
    let mut cx = Checker::new(catalog);

    // -------- pass 1: schema dataflow over every placed pipeline --------
    let mut streams = 0usize;
    for (si, stage) in placed.stages.iter().enumerate() {
        match stage {
            PlacedStage::Build { name, key_col, pipeline, .. } => {
                cx.check_build(si, name, *key_col, pipeline);
            }
            PlacedStage::Stream { pipeline, .. } | PlacedStage::CoProcess { pipeline, .. } => {
                streams += 1;
                cx.check_stream(si, pipeline);
            }
        }
    }
    cx.check_stream_count(streams);

    // -------- passes 2–4 over the placed segments --------
    let devices = server.devices();
    let model = CostModel::new(server, catalog);
    let mut hts = HtEstimates::new();
    for (si, stage) in placed.stages.iter().enumerate() {
        let pipeline = stage.pipeline();

        // Pass 3 (first half): device existence — segments and lanes.
        // Segments on absent devices are excluded from trait recomputation
        // (there is no spec to recompute against).
        let mut present: Vec<&Segment> = Vec::new();
        for seg in stage.segments() {
            if devices.contains(&seg.target) {
                present.push(seg);
            } else {
                cx.push(si, Some(seg.target), None, Pass::DeviceAudit, {
                    DiagnosticKind::DeviceNotPresent { device: seg.target }
                });
            }
        }

        // Pass 2: recompute the HetTraits flow and diff the exchanges.
        cx.check_trait_coherence(si, stage, pipeline, &present, server);

        // Pass 3 (second half): capacity + co-process shape, on the same
        // estimates the optimizer prices with. Estimation failures
        // (unknown source, unbuilt probe) were already flagged by pass 1.
        let est = model.estimate_pipeline(pipeline, &hts).ok();
        if let Some(est) = &est {
            cx.check_capacity(si, stage, est, server);
            if let PlacedStage::Build { name, .. } = stage {
                hts.insert(name.clone(), est.table_estimate());
            }
        }
        if let PlacedStage::CoProcess { ht, segments, gpus, .. } = stage {
            cx.check_coprocess(
                si,
                pipeline,
                ht,
                segments,
                gpus,
                est.as_ref(),
                &devices,
                &model,
            );
        }

        // Pass 4: determinism contracts.
        cx.check_determinism(si, stage, pipeline);
    }
    if placed.packet_rows == Some(0) {
        cx.push(usize::MAX, None, None, Pass::Determinism, DiagnosticKind::InvalidPacketRows);
    }
    cx.diagnostics
}

/// Internal state shared by the passes: the catalog, the accumulated
/// diagnostics, and the build-output schemas discovered so far.
struct Checker<'a> {
    catalog: &'a Catalog,
    diagnostics: Vec<Diagnostic>,
    /// Output column types of each build stage, by hash-table name.
    build_outputs: HashMap<String, Vec<DataType>>,
}

impl<'a> Checker<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Checker { catalog, diagnostics: Vec::new(), build_outputs: HashMap::new() }
    }

    fn push(
        &mut self,
        stage: usize,
        segment: Option<DeviceId>,
        op: Option<usize>,
        pass: Pass,
        kind: DiagnosticKind,
    ) {
        let stage = if stage == usize::MAX { None } else { Some(stage) };
        self.diagnostics.push(Diagnostic { stage, segment, op, pass, kind });
    }

    // ---------------- pass 1: schema dataflow ----------------

    fn check_build(&mut self, si: usize, name: &str, key_col: usize, pipeline: &Pipeline) {
        if pipeline.agg.is_some() {
            self.push(si, None, None, Pass::SchemaDataflow, {
                DiagnosticKind::BuildAggregates { name: name.to_string() }
            });
        }
        let Some(out) = self.dataflow(si, pipeline) else { return };
        if key_col >= out.len() {
            self.push(si, None, None, Pass::SchemaDataflow, {
                DiagnosticKind::ColumnOutOfRange {
                    column: key_col,
                    width: out.len(),
                    context: "build key",
                }
            });
        }
        self.build_outputs.insert(name.to_string(), out);
    }

    fn check_stream(&mut self, si: usize, pipeline: &Pipeline) {
        let out = self.dataflow(si, pipeline);
        match &pipeline.agg {
            None => {
                self.push(
                    si,
                    None,
                    None,
                    Pass::SchemaDataflow,
                    DiagnosticKind::StreamMissingAgg,
                );
            }
            Some(_) if out.is_none() => {}
            Some(spec) => {
                let out = out.as_deref().unwrap_or(&[]);
                for &g in &spec.group_by {
                    if g >= out.len() {
                        self.push(si, None, None, Pass::SchemaDataflow, {
                            DiagnosticKind::ColumnOutOfRange {
                                column: g,
                                width: out.len(),
                                context: "group-by",
                            }
                        });
                    }
                }
                for (_, expr) in &spec.aggs {
                    for c in expr.columns_used() {
                        if c >= out.len() {
                            self.push(si, None, None, Pass::SchemaDataflow, {
                                DiagnosticKind::ColumnOutOfRange {
                                    column: c,
                                    width: out.len(),
                                    context: "agg",
                                }
                            });
                        }
                    }
                }
            }
        }
    }

    fn check_stream_count(&mut self, streams: usize) {
        if streams != 1 {
            self.push(usize::MAX, None, None, Pass::SchemaDataflow, {
                DiagnosticKind::NotExactlyOneStream { streams }
            });
        }
    }

    /// Walk one pipeline's operators, propagating the column types, and
    /// return the output schema. Out-of-range references are flagged but
    /// the walk continues with each operator's declared output shape, so
    /// one corruption yields one diagnostic, not a cascade. An unknown
    /// source is `None`: with no schema to flow there is nothing sound to
    /// check downstream, so the walk stops at its one diagnostic (the
    /// engine's typed `MissingTable` owns the condition at runtime).
    fn dataflow(&mut self, si: usize, pipeline: &Pipeline) -> Option<Vec<DataType>> {
        let mut cols: Vec<DataType> = match self.catalog.get(&pipeline.source) {
            Some(t) => t.schema.fields.iter().map(|f| f.dtype).collect(),
            None => {
                self.push(si, None, None, Pass::SchemaDataflow, {
                    DiagnosticKind::UnknownSource { table: pipeline.source.clone() }
                });
                return None;
            }
        };
        let mut reshaped = false;
        for (oi, op) in pipeline.ops.iter().enumerate() {
            match op {
                PipeOp::Filter(expr) => {
                    self.check_expr_cols(si, oi, expr, cols.len(), "filter");
                }
                PipeOp::Project(exprs) => {
                    for e in exprs {
                        self.check_expr_cols(si, oi, e, cols.len(), "project");
                    }
                    cols = vec![DataType::F64; exprs.len()];
                    reshaped = true;
                }
                PipeOp::JoinProbe { ht, key_col, build_payload_cols, .. } => {
                    if *key_col >= cols.len() {
                        self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                            DiagnosticKind::ColumnOutOfRange {
                                column: *key_col,
                                width: cols.len(),
                                context: "probe key",
                            }
                        });
                    } else {
                        let found = cols[*key_col];
                        if !matches!(found, DataType::I32 | DataType::Date) {
                            self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                                DiagnosticKind::ProbeKeyType {
                                    ht: ht.clone(),
                                    key_col: *key_col,
                                    found,
                                }
                            });
                        }
                    }
                    match self.build_outputs.get(ht).cloned() {
                        None => {
                            self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                                DiagnosticKind::ProbeUnbuilt { ht: ht.clone() }
                            });
                            // Unknown build output: assume the payloads are
                            // wide floats so the walk can continue.
                            cols.extend(build_payload_cols.iter().map(|_| DataType::F64));
                        }
                        Some(build) => {
                            for &p in build_payload_cols {
                                match build.get(p) {
                                    Some(t) => cols.push(*t),
                                    None => {
                                        self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                                            DiagnosticKind::PayloadOutOfRange {
                                                ht: ht.clone(),
                                                column: p,
                                                build_width: build.len(),
                                            }
                                        });
                                        cols.push(DataType::F64);
                                    }
                                }
                            }
                        }
                    }
                    reshaped = true;
                }
                PipeOp::Stateful(agg) => {
                    if reshaped {
                        self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                            DiagnosticKind::StatefulAfterReshape
                        });
                    }
                    self.check_stateful_types(si, oi, agg, &cols);
                    cols = vec![DataType::I64; agg.out_width()];
                    reshaped = true;
                }
            }
        }
        Some(cols)
    }

    fn check_expr_cols(
        &mut self,
        si: usize,
        oi: usize,
        expr: &hape_ops::Expr,
        width: usize,
        context: &'static str,
    ) {
        for c in expr.columns_used() {
            if c >= width {
                self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                    DiagnosticKind::ColumnOutOfRange { column: c, width, context }
                });
            }
        }
    }

    /// Type-check a stateful aggregate's columns against the dataflow
    /// schema (range of the *user* column is the determinism pass's
    /// alignment contract; here only in-range columns are type-checked).
    fn check_stateful_types(
        &mut self,
        si: usize,
        oi: usize,
        agg: &hape_ops::StatefulAgg,
        cols: &[DataType],
    ) {
        let mut check = |col: usize, role: &'static str, ok: &[DataType]| {
            if let Some(&found) = cols.get(col) {
                if !ok.contains(&found) {
                    self.push(si, None, Some(oi), Pass::SchemaDataflow, {
                        DiagnosticKind::StatefulColumnType { column: col, role, found }
                    });
                }
            }
        };
        check(agg.user_col(), "user", &[DataType::I32, DataType::I64]);
        check(agg.ts_col(), "ts", &[DataType::I32, DataType::I64, DataType::Date]);
        if let Some(e) = agg.event_col() {
            check(e, "event", &[DataType::Str]);
        }
    }

    // ---------------- pass 2: trait coherence ----------------

    /// Recompute each present segment's traits from its device, rebuild
    /// the exchange list the placement pass would insert, and diff.
    fn check_trait_coherence(
        &mut self,
        si: usize,
        stage: &PlacedStage,
        pipeline: &Pipeline,
        present: &[&Segment],
        server: &Server,
    ) {
        let source = HetTraits::cpu_seq();
        let mut probed: Vec<&str> = Vec::new();
        for t in pipeline.tables_probed() {
            if !probed.contains(&t) {
                probed.push(t);
            }
        }
        for seg in present {
            let expected = segment_traits(seg.target, server);
            if seg.traits != expected {
                self.push(si, Some(seg.target), None, Pass::TraitCoherence, {
                    DiagnosticKind::TraitsMismatch { expected, found: seg.traits }
                });
            }
            // The canonical exchange list for this edge.
            let mut want: Vec<Exchange> = Vec::new();
            if source.needs_mem_move(&expected) {
                want.push(Exchange::MemMove {
                    from: source.locality,
                    to: expected.locality,
                    table: None,
                });
            }
            if source.needs_device_crossing(&expected) {
                want.push(Exchange::DeviceCrossing {
                    from: source.device,
                    to: expected.device,
                });
            }
            if source.needs_mem_move(&expected) {
                for ht in &probed {
                    want.push(Exchange::MemMove {
                        from: source.locality,
                        to: expected.locality,
                        table: Some((*ht).to_string()),
                    });
                }
            }
            // Set-diff: each expected exchange must appear once; anything
            // beyond that is dead. Broadcasts are reported by table name.
            let mut have: Vec<&Exchange> = seg.exchanges.iter().collect();
            for w in &want {
                match have.iter().position(|h| *h == w) {
                    Some(i) => {
                        have.remove(i);
                    }
                    None => {
                        let kind = match w {
                            Exchange::MemMove { table: Some(ht), .. } => {
                                DiagnosticKind::MissingBroadcast { ht: ht.clone() }
                            }
                            other => {
                                DiagnosticKind::MissingExchange { expected: other.to_string() }
                            }
                        };
                        self.push(si, Some(seg.target), None, Pass::TraitCoherence, kind);
                    }
                }
            }
            for h in have {
                let kind = match h {
                    Exchange::MemMove { table: Some(ht), .. } => {
                        DiagnosticKind::UnexpectedBroadcast { ht: ht.clone() }
                    }
                    other => DiagnosticKind::DeadExchange { exchange: other.to_string() },
                };
                self.push(si, Some(seg.target), None, Pass::TraitCoherence, kind);
            }
        }
        // The stage-level router: present iff the summed dop differs from
        // the source's, converting exactly 1 -> total. (The consumer-side
        // coverage equation — to_dop == total — is the determinism pass's
        // barrier check.)
        let total_dop: usize = stage.segments().iter().map(|s| s.traits.dop).sum();
        match stage.router() {
            None => {
                if total_dop != source.dop {
                    self.push(si, None, None, Pass::TraitCoherence, {
                        DiagnosticKind::MissingRouter { total_dop }
                    });
                }
            }
            Some(Exchange::Router { from_dop, to_dop, .. }) => {
                if total_dop == source.dop {
                    self.push(si, None, None, Pass::TraitCoherence, {
                        DiagnosticKind::DeadExchange {
                            exchange: format!("Router(_, {from_dop} -> {to_dop})"),
                        }
                    });
                } else if *from_dop != source.dop {
                    self.push(si, None, None, Pass::TraitCoherence, {
                        DiagnosticKind::RouterDopMismatch {
                            from_dop: *from_dop,
                            to_dop: *to_dop,
                            total_dop,
                        }
                    });
                }
            }
            Some(other) => {
                self.push(si, None, None, Pass::TraitCoherence, {
                    DiagnosticKind::DeadExchange { exchange: other.to_string() }
                });
            }
        }
    }

    // ---------------- pass 3: device & capacity audit ----------------

    /// Check each GPU segment's broadcast footprint (with working space)
    /// against the device's capacity, on the cost model's estimates —
    /// the same numbers the optimizer prunes with (§6.4).
    fn check_capacity(
        &mut self,
        si: usize,
        stage: &PlacedStage,
        est: &crate::cost::PipelineEstimate,
        server: &Server,
    ) {
        for seg in stage.segments() {
            let DeviceId::Gpu(g) = seg.target else { continue };
            let Some(spec) = server.gpus.get(g) else { continue };
            // The exchanges are the authoritative list of what this
            // segment installs; estimate each distinct broadcast table.
            let mut seen: Vec<&str> = Vec::new();
            let mut bytes = 0u64;
            for x in seg.broadcast_moves() {
                let Exchange::MemMove { table: Some(ht), .. } = x else { continue };
                if seen.contains(&ht.as_str()) {
                    continue;
                }
                seen.push(ht);
                if let Some(p) = est.probes.iter().find(|p| &p.ht == ht) {
                    bytes += p.ht_bytes;
                }
            }
            if bytes == 0 {
                continue;
            }
            let required = (bytes as f64 * GPU_HT_WORKING_FACTOR) as u64;
            let capacity = spec.dram_capacity as u64;
            if required > capacity {
                self.push(si, Some(seg.target), None, Pass::DeviceAudit, {
                    DiagnosticKind::BroadcastOverCapacity {
                        device: seg.target,
                        required,
                        capacity,
                    }
                });
            }
        }
    }

    /// §5 co-process shape: final probe targets the named table, the CPU
    /// prefix has no GPU segments, at least one (present) GPU lane, and a
    /// legal co-partitioning fanout exists.
    #[allow(clippy::too_many_arguments)]
    fn check_coprocess(
        &mut self,
        si: usize,
        pipeline: &Pipeline,
        ht: &str,
        segments: &[Segment],
        gpus: &[DeviceId],
        est: Option<&crate::cost::PipelineEstimate>,
        devices: &[DeviceId],
        model: &CostModel,
    ) {
        if pipeline.last_probe().is_none_or(|(_, t)| t != ht) {
            self.push(si, None, None, Pass::DeviceAudit, {
                DiagnosticKind::CoProcessFinalProbeMismatch { ht: ht.to_string() }
            });
        }
        for seg in segments {
            if seg.target.is_gpu() {
                self.push(si, Some(seg.target), None, Pass::DeviceAudit, {
                    DiagnosticKind::CoProcessGpuSegment { device: seg.target }
                });
            }
        }
        if gpus.is_empty() {
            self.push(si, None, None, Pass::DeviceAudit, DiagnosticKind::CoProcessNoGpuLane);
            return;
        }
        let mut lanes_ok = true;
        for &g in gpus {
            if !devices.contains(&g) {
                lanes_ok = false;
                self.push(si, Some(g), None, Pass::DeviceAudit, {
                    DiagnosticKind::DeviceNotPresent { device: g }
                });
            }
        }
        // Fanout feasibility, priced exactly as the optimizer does. Only
        // meaningful when the estimate resolved and the lanes exist.
        if let (Some(est), true) = (est, lanes_ok) {
            let cpus: Vec<DeviceId> =
                segments.iter().map(|s| s.target).filter(|d| !d.is_gpu()).collect();
            if !cpus.is_empty() {
                match model.coprocess_cost(est, &cpus, gpus) {
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => {
                        self.push(si, None, None, Pass::DeviceAudit, {
                            DiagnosticKind::CoProcessInfeasibleFanout { ht: ht.to_string() }
                        });
                    }
                }
            }
        }
    }

    // ---------------- pass 4: determinism contracts ----------------

    /// Stateful stages must carry a user column that is valid in *source*
    /// coordinates (the engine aligns packet boundaries on it there), and
    /// the stage router must route to exactly the workers the barrier
    /// waits on.
    fn check_determinism(&mut self, si: usize, stage: &PlacedStage, pipeline: &Pipeline) {
        if let Some(agg) = pipeline.stateful_agg() {
            if let Some(table) = self.catalog.get(&pipeline.source) {
                let source_width = table.schema.fields.len();
                if agg.user_col() >= source_width {
                    self.push(si, None, None, Pass::Determinism, {
                        DiagnosticKind::StatefulAlignmentInvalid {
                            user_col: agg.user_col(),
                            source_width,
                        }
                    });
                }
            }
        }
        let total_dop: usize = stage.segments().iter().map(|s| s.traits.dop).sum();
        if let Some(Exchange::Router { to_dop, .. }) = stage.router() {
            if *to_dop != total_dop {
                self.push(si, None, None, Pass::Determinism, {
                    DiagnosticKind::BarrierCoverage { to_dop: *to_dop, total_dop }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExecConfig, Placement};
    use crate::place::place;
    use crate::plan::JoinAlgo;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_storage::datagen::gen_key_fk_table;

    fn setup() -> (Catalog, Server) {
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 1));
        catalog.register_as("dim", gen_key_fk_table(1 << 10, 1 << 10, 2));
        (catalog, Server::paper_testbed())
    }

    fn join_plan() -> QueryPlan {
        QueryPlan::try_new(
            "v",
            vec![
                Stage::Build {
                    name: "dim_ht".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim"),
                },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                        .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
                },
            ],
        )
        .expect("valid plan")
    }

    #[test]
    fn valid_plans_verify_clean_on_every_manual_placement() {
        let (catalog, server) = setup();
        let plan = join_plan();
        assert_eq!(check_plan(&plan, &catalog), Vec::new());
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let placed =
                place(&plan, &ExecConfig::new(placement), &server).expect("placement succeeds");
            let diags = check_placed(&placed, &catalog, &server);
            assert_eq!(diags, Vec::new(), "{placement:?}");
            assert!(verify_placed(&placed, &catalog, &server).is_ok());
        }
    }

    #[test]
    fn diagnostics_render_with_locations() {
        let d = Diagnostic {
            stage: Some(5),
            segment: Some(DeviceId::Gpu(0)),
            op: Some(1),
            pass: Pass::TraitCoherence,
            kind: DiagnosticKind::MissingExchange {
                expected: "DeviceCrossing(Cpu -> Gpu)".into(),
            },
        };
        assert_eq!(
            d.to_string(),
            "stage 5 segment gpu0 op 1: [trait-coherence] missing exchange \
             DeviceCrossing(Cpu -> Gpu)"
        );
        let e = VerifyError { plan: "Q5".into(), diagnostics: vec![d] };
        let text = e.to_string();
        assert!(text.starts_with("verify Q5: 1 diagnostic\n"), "{text}");
        assert!(text.contains("[trait-coherence]"), "{text}");
    }

    #[test]
    fn structural_filter_keeps_runtime_checked_kinds_out() {
        let mk = |kind| Diagnostic {
            stage: Some(0),
            segment: None,
            op: None,
            pass: Pass::DeviceAudit,
            kind,
        };
        let e = VerifyError {
            plan: "p".into(),
            diagnostics: vec![
                mk(DiagnosticKind::DeviceNotPresent { device: DeviceId::Gpu(7) }),
                mk(DiagnosticKind::BroadcastOverCapacity {
                    device: DeviceId::Gpu(0),
                    required: 10,
                    capacity: 1,
                }),
                mk(DiagnosticKind::ProbeUnbuilt { ht: "x".into() }),
            ],
        };
        assert!(e.structural().is_none(), "runtime-checked kinds are not structural");
        let e2 = VerifyError {
            plan: "p".into(),
            diagnostics: vec![mk(DiagnosticKind::StatefulAfterReshape)],
        };
        assert_eq!(e2.structural().expect("structural").diagnostics.len(), 1);
    }

    #[test]
    fn explain_footer_counts_stages_and_diagnostics() {
        let (catalog, server) = setup();
        let placed =
            place(&join_plan(), &ExecConfig::new(Placement::Hybrid), &server).expect("places");
        let footer = explain_footer(&placed, &catalog, &server);
        assert_eq!(footer, "verified: 2 stages, 0 diagnostics\n");
    }
}
