//! Physical query plans: pipelines of fused operators.
//!
//! A [`QueryPlan`] is a sequence of [`Stage`]s separated by pipeline
//! breakers, exactly as a JIT engine splits a physical plan (§3): `Build`
//! stages materialise join hash tables; the final `Stream` stage folds
//! packets into aggregation states. Within a stage, the [`PipeOp`]s are
//! *fused* — a packet makes one trip through the device provider's compiled
//! code with no intermediate materialisation points.

use hape_join::common::{ChainedTable, NIL};
use hape_ops::{AggSpec, Expr, StatefulAgg};
use hape_storage::Batch;

use crate::error::PlanError;

/// Join algorithm choice for a GPU-side probe (the Figure 9 toggle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Hardware-oblivious: random probes into a device-memory hash table.
    NonPartitioned,
    /// Hardware-conscious: radix co-partitioning, scratchpad-resident
    /// per-partition tables (§4.1).
    Partitioned,
}

/// How a stage executes its hash-table probes — the execution-mode
/// vocabulary the cost-based optimizer chooses from and the placement
/// layer renders. This is what turns the §5 co-processing join from a
/// hand-written escape hatch into plan vocabulary: when a probed table
/// exceeds every GPU's memory, the optimizer may flip the stage from
/// [`ProbeExec::Broadcast`] to [`ProbeExec::CoProcess`] instead of
/// silently degrading to CPU-only execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeExec {
    /// Broadcast every probed table into each executing device's local
    /// memory ahead of the stream (the default; requires the tables to
    /// fit the device, §6.4).
    Broadcast,
    /// Intra-operator co-processing of the stage's *final* probe (§5):
    /// the CPUs run the pipeline prefix, then co-partition the stream
    /// against the named oversized table with a fanout just large enough
    /// that each co-partition pair fits GPU memory; every pair makes a
    /// single pass over PCIe and joins on a GPU with the
    /// hardware-conscious radix join.
    CoProcess {
        /// The oversized probed hash table.
        ht: String,
    },
}

impl std::fmt::Display for ProbeExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeExec::Broadcast => write!(f, "broadcast"),
            ProbeExec::CoProcess { ht } => write!(f, "co-process {ht:?}"),
        }
    }
}

/// One fused operator inside a pipeline.
#[derive(Debug, Clone)]
pub enum PipeOp {
    /// Keep rows satisfying the predicate.
    Filter(Expr),
    /// Replace the row with the given expressions (all `f64` outputs).
    Project(Vec<Expr>),
    /// Probe a built hash table; append the named build payload columns to
    /// each matching row.
    JoinProbe {
        /// Name of the build stage that produced the table.
        ht: String,
        /// Probe key column (must be `i32`-typed).
        key_col: usize,
        /// Columns of the build batch appended to matches.
        build_payload_cols: Vec<usize>,
        /// Algorithm (affects GPU cost; CPU probes use the cache-conscious
        /// layout either way).
        algo: JoinAlgo,
    },
    /// An order-sensitive per-user stateful aggregate
    /// ([`hape_ops::stateful`]): collapses each user's sorted event run
    /// into one row via a sequential state machine. The engine aligns
    /// packet boundaries on the user column, so only filters may precede
    /// it in a pipeline (validated) — anything that reshapes rows would
    /// break the source-order contract the alignment relies on.
    Stateful(StatefulAgg),
}

/// A pipeline: a source table streamed through fused operators, optionally
/// ending in an aggregation.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Source table name in the catalog.
    pub source: String,
    /// Fused operators, in order.
    pub ops: Vec<PipeOp>,
    /// Terminal aggregation (required for `Stream` stages).
    pub agg: Option<AggSpec>,
}

impl Pipeline {
    /// A pipeline scanning `source`.
    pub fn scan(source: impl Into<String>) -> Self {
        Pipeline { source: source.into(), ops: Vec::new(), agg: None }
    }

    /// Append a filter.
    pub fn filter(mut self, pred: Expr) -> Self {
        self.ops.push(PipeOp::Filter(pred));
        self
    }

    /// Append a projection.
    pub fn project(mut self, exprs: Vec<Expr>) -> Self {
        self.ops.push(PipeOp::Project(exprs));
        self
    }

    /// Append a join probe.
    pub fn join(
        mut self,
        ht: impl Into<String>,
        key_col: usize,
        build_payload_cols: Vec<usize>,
        algo: JoinAlgo,
    ) -> Self {
        self.ops.push(PipeOp::JoinProbe { ht: ht.into(), key_col, build_payload_cols, algo });
        self
    }

    /// Append a stateful per-user aggregate.
    pub fn stateful(mut self, agg: StatefulAgg) -> Self {
        self.ops.push(PipeOp::Stateful(agg));
        self
    }

    /// Terminate with an aggregation.
    pub fn aggregate(mut self, spec: AggSpec) -> Self {
        self.agg = Some(spec);
        self
    }

    /// Names of the hash tables this pipeline probes.
    pub fn tables_probed(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                PipeOp::JoinProbe { ht, .. } => Some(ht.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The pipeline's final hash-table probe, as `(op index, table name)` —
    /// the probe a [`ProbeExec::CoProcess`] stage executes as the §5
    /// co-processing join (the preceding operators form the CPU-side
    /// prefix).
    pub fn last_probe(&self) -> Option<(usize, &str)> {
        self.ops.iter().enumerate().rev().find_map(|(i, op)| match op {
            PipeOp::JoinProbe { ht, .. } => Some((i, ht.as_str())),
            _ => None,
        })
    }

    /// The pipeline's stateful aggregate, if any. Because
    /// [`QueryPlan::validate`] guarantees only filters precede it, the
    /// returned aggregate's user column is also a valid column index into
    /// the *source* table — the engine aligns packet boundaries on it.
    pub fn stateful_agg(&self) -> Option<&StatefulAgg> {
        self.ops.iter().find_map(|op| match op {
            PipeOp::Stateful(agg) => Some(agg),
            _ => None,
        })
    }
}

/// One stage of a query plan.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Run the pipeline and build a hash table over its output.
    Build {
        /// Name under which probes reference the table.
        name: String,
        /// Key column *of the pipeline's output*.
        key_col: usize,
        /// The producing pipeline (must not aggregate).
        pipeline: Pipeline,
    },
    /// Run the pipeline into its terminal aggregation.
    Stream {
        /// The pipeline (must aggregate).
        pipeline: Pipeline,
    },
}

/// A full physical plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Display name (e.g. `"Q5"`).
    pub name: String,
    /// The stages, executed in order.
    pub stages: Vec<Stage>,
}

impl QueryPlan {
    /// Create a named plan, validating its stage structure: builds must not
    /// aggregate, the (single) stream stage must, and every probe must
    /// reference an earlier build.
    pub fn try_new(name: impl Into<String>, stages: Vec<Stage>) -> Result<Self, PlanError> {
        let plan = QueryPlan { name: name.into(), stages };
        plan.validate()?;
        Ok(plan)
    }

    /// Check the stage structure of an already-assembled plan.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut built: Vec<&str> = Vec::new();
        let mut streams = 0;
        for s in &self.stages {
            match s {
                Stage::Build { name, pipeline, .. } => {
                    if pipeline.agg.is_some() {
                        return Err(PlanError::BuildWithAggregate { stage: name.clone() });
                    }
                    self.check_stateful_position(pipeline)?;
                    for t in pipeline.tables_probed() {
                        if !built.contains(&t) {
                            return Err(PlanError::ProbeBeforeBuild { table: t.to_string() });
                        }
                    }
                    built.push(name);
                }
                Stage::Stream { pipeline } => {
                    if pipeline.agg.is_none() {
                        return Err(PlanError::StreamWithoutAggregate {
                            name: self.name.clone(),
                        });
                    }
                    self.check_stateful_position(pipeline)?;
                    for t in pipeline.tables_probed() {
                        if !built.contains(&t) {
                            return Err(PlanError::ProbeBeforeBuild { table: t.to_string() });
                        }
                    }
                    streams += 1;
                }
            }
        }
        if streams != 1 {
            return Err(PlanError::NotExactlyOneStream { plan: self.name.clone(), streams });
        }
        Ok(())
    }

    /// A stateful aggregate consumes the source's `(user, ts)` order and
    /// its user column doubles as the engine's packet-alignment column in
    /// source coordinates — so only filters (which drop rows but never
    /// reshape or reorder them) may precede it.
    fn check_stateful_position(&self, pipeline: &Pipeline) -> Result<(), PlanError> {
        let mut reshaped = false;
        for op in &pipeline.ops {
            match op {
                PipeOp::Filter(_) => {}
                PipeOp::Stateful(_) => {
                    if reshaped {
                        return Err(PlanError::StatefulAfterReshape {
                            name: self.name.clone(),
                        });
                    }
                    reshaped = true;
                }
                PipeOp::Project(_) | PipeOp::JoinProbe { .. } => reshaped = true,
            }
        }
        Ok(())
    }
}

/// A materialised build-side hash table (runtime object).
#[derive(Debug)]
pub struct JoinTable {
    /// The build rows.
    pub batch: Batch,
    /// The chained hash table over the key column.
    pub table: ChainedTable,
    /// Which column of `batch` is the key.
    pub key_col: usize,
    /// Cached keys (decoded once).
    pub keys: Vec<i32>,
}

impl JoinTable {
    /// Build from a batch and key column.
    pub fn build(batch: Batch, key_col: usize) -> Self {
        let keys: Vec<i32> = batch.col(key_col).as_i32().to_vec();
        let table = ChainedTable::build(&keys);
        JoinTable { batch, table, key_col, keys }
    }

    /// Number of build rows.
    pub fn rows(&self) -> usize {
        self.keys.len()
    }

    /// Working-set bytes of a probe (table + build rows touched).
    pub fn bytes(&self) -> u64 {
        self.table.bytes() + self.batch.bytes()
    }

    /// Probe one key; `on_match(build_row)` per hit; returns chain steps.
    #[inline]
    pub fn probe(&self, key: i32, mut on_match: impl FnMut(u32)) -> u32 {
        let mut steps = 0;
        let mut e = self.table.heads[hape_join::hash32(key, self.table.bits) as usize];
        while e != NIL {
            steps += 1;
            if self.keys[e as usize] == key {
                on_match(e);
            }
            e = self.table.next[e as usize];
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PlanError;
    use hape_ops::AggFunc;
    use hape_storage::Column;

    fn agg() -> AggSpec {
        AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])
    }

    #[test]
    fn builder_api_constructs_plan() {
        let plan = QueryPlan::try_new(
            "q",
            vec![
                Stage::Build { name: "d".into(), key_col: 0, pipeline: Pipeline::scan("dim") },
                Stage::Stream {
                    pipeline: Pipeline::scan("fact")
                        .filter(Expr::lt(Expr::col(0), Expr::LitI32(5)))
                        .join("d", 1, vec![1], JoinAlgo::Partitioned)
                        .aggregate(agg()),
                },
            ],
        )
        .unwrap();
        assert_eq!(plan.stages.len(), 2);
    }

    #[test]
    fn probing_unbuilt_table_rejected() {
        let err = QueryPlan::try_new(
            "bad",
            vec![Stage::Stream {
                pipeline: Pipeline::scan("fact")
                    .join("ghost", 0, vec![], JoinAlgo::NonPartitioned)
                    .aggregate(agg()),
            }],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::ProbeBeforeBuild { table: "ghost".into() });
    }

    #[test]
    fn stream_without_agg_rejected() {
        let err =
            QueryPlan::try_new("bad", vec![Stage::Stream { pipeline: Pipeline::scan("t") }])
                .unwrap_err();
        assert_eq!(err, PlanError::StreamWithoutAggregate { name: "bad".into() });
    }

    #[test]
    fn build_with_agg_rejected() {
        let err = QueryPlan::try_new(
            "bad",
            vec![
                Stage::Build {
                    name: "d".into(),
                    key_col: 0,
                    pipeline: Pipeline::scan("dim").aggregate(agg()),
                },
                Stage::Stream { pipeline: Pipeline::scan("fact").aggregate(agg()) },
            ],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::BuildWithAggregate { stage: "d".into() });
    }

    #[test]
    fn multiple_streams_rejected() {
        let err = QueryPlan::try_new(
            "bad",
            vec![
                Stage::Stream { pipeline: Pipeline::scan("a").aggregate(agg()) },
                Stage::Stream { pipeline: Pipeline::scan("b").aggregate(agg()) },
            ],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::NotExactlyOneStream { plan: "bad".into(), streams: 2 });
    }

    #[test]
    fn last_probe_finds_the_final_join_and_probe_exec_displays() {
        let p = Pipeline::scan("fact")
            .filter(Expr::lt(Expr::col(0), Expr::LitI32(5)))
            .join("a", 0, vec![], JoinAlgo::NonPartitioned)
            .join("b", 0, vec![], JoinAlgo::NonPartitioned);
        assert_eq!(p.last_probe(), Some((2, "b")));
        assert_eq!(Pipeline::scan("t").last_probe(), None);
        assert_eq!(ProbeExec::Broadcast.to_string(), "broadcast");
        assert_eq!(ProbeExec::CoProcess { ht: "b".into() }.to_string(), "co-process \"b\"");
    }

    #[test]
    fn stateful_only_after_filters() {
        use hape_ops::StatefulAgg;
        let sess = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 100 };
        let ok = QueryPlan::try_new(
            "b",
            vec![Stage::Stream {
                pipeline: Pipeline::scan("ev")
                    .filter(Expr::lt(Expr::col(1), Expr::LitI32(50)))
                    .stateful(sess.clone())
                    .aggregate(agg()),
            }],
        )
        .unwrap();
        let Stage::Stream { pipeline } = &ok.stages[0] else { unreachable!() };
        assert_eq!(pipeline.stateful_agg(), Some(&sess));

        let err = QueryPlan::try_new(
            "bad",
            vec![Stage::Stream {
                pipeline: Pipeline::scan("ev")
                    .project(vec![Expr::col(0)])
                    .stateful(sess)
                    .aggregate(agg()),
            }],
        )
        .unwrap_err();
        assert_eq!(err, PlanError::StatefulAfterReshape { name: "bad".into() });
    }

    #[test]
    fn join_table_probe() {
        let batch = Batch::new(vec![
            Column::from_i32(vec![10, 20, 10]),
            Column::from_f64(vec![1.0, 2.0, 3.0]),
        ]);
        let jt = JoinTable::build(batch, 0);
        let mut hits = Vec::new();
        jt.probe(10, |e| hits.push(e));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
        assert_eq!(jt.rows(), 3);
        assert!(jt.bytes() > 0);
    }
}
