//! The session: the engine's front door.
//!
//! A [`Session`] owns an [`Engine`] over a simulated server, a [`Catalog`]
//! of registered tables, and a default [`ExecConfig`]. Queries are
//! described logically with [`Session::query`] and flow through three
//! explicit layers:
//!
//! 1. **lower** ([`Session::lower`]) — resolve names against the catalog,
//!    push projections down, produce the physical [`crate::plan::QueryPlan`];
//! 2. **place** ([`Session::place`]) — annotate every pipeline with
//!    [`crate::place::Segment`]s and trait-conversion exchanges, producing
//!    the [`PlacedPlan`] IR ([`Session::explain`] renders it);
//! 3. **run** ([`Session::execute`] / [`Session::execute_with`]) — the
//!    engine interprets the placed plan over its device providers.
//!
//! All failures surface as the unified [`HapeError`].

use hape_sim::topology::Server;
use hape_storage::Table;

use crate::catalog::{Catalog, TableRegistration};
use crate::engine::{Engine, ExecConfig, Placement, QueryReport};
use crate::error::HapeError;
use crate::optimize::optimize;
use crate::place::{place, PlacedPlan};
use crate::query::{LoweredQuery, Query};
use crate::trace::TraceRecorder;
use crate::verify;

/// An engine + catalog + default execution config.
#[derive(Debug, Clone)]
pub struct Session {
    engine: Engine,
    catalog: Catalog,
    config: ExecConfig,
}

impl Session {
    /// A session over a server, empty catalog, hybrid placement.
    pub fn new(server: Server) -> Self {
        Session {
            engine: Engine::new(server),
            catalog: Catalog::new(),
            config: ExecConfig::new(Placement::Hybrid),
        }
    }

    /// Replace the default execution config.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the default placement, keeping the other config defaults.
    pub fn with_placement(self, placement: Placement) -> Self {
        self.with_config(ExecConfig::new(placement))
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The default execution config.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Register a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.catalog.register(table);
    }

    /// Register a table under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, table: Table) {
        self.catalog.register_as(name, table);
    }

    /// Register a table under an explicit name, reporting whether the
    /// registration was [`TableRegistration::Fresh`] or
    /// [`TableRegistration::Replaced`] — the typed invalidation path. Every
    /// registration (typed or not) bumps the catalog version, which the
    /// serving layer's cross-query build cache
    /// ([`crate::serve::SessionServer`]) keys its entries on: replacing a
    /// table mid-session invalidates any cached hash tables built over the
    /// old contents instead of silently serving stale rows.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        table: Table,
    ) -> TableRegistration {
        self.catalog.register_table(name, table)
    }

    /// Start describing a named query.
    pub fn query(&self, name: impl Into<String>) -> Query {
        Query::new(name)
    }

    /// Lower a logical query against this session's catalog.
    pub fn lower(&self, query: &Query) -> Result<LoweredQuery, HapeError> {
        Ok(query.lower(&self.catalog)?)
    }

    /// Lower and place a logical query under the session's default config:
    /// the explicit [`PlacedPlan`] IR with per-segment [`crate::traits::HetTraits`]
    /// and the inserted exchange operators.
    pub fn place(&self, query: &Query) -> Result<PlacedPlan, HapeError> {
        self.place_with(query, &self.config)
    }

    /// Lower and place under an explicit config.
    pub fn place_with(
        &self,
        query: &Query,
        config: &ExecConfig,
    ) -> Result<PlacedPlan, HapeError> {
        let lowered = self.lower(query)?;
        self.place_lowered(&lowered, config)
    }

    /// Place an already-lowered query: [`Placement::Auto`] goes through
    /// the cost-based optimizer (which reads the lowered catalog's scan
    /// statistics); the manual placements go through the trait-driven
    /// placement pass directly.
    pub(crate) fn place_lowered(
        &self,
        lowered: &LoweredQuery,
        config: &ExecConfig,
    ) -> Result<PlacedPlan, HapeError> {
        let placed = match config.placement {
            Placement::Auto => {
                optimize(&lowered.plan, &lowered.catalog, config, &self.engine.server)?
            }
            _ => place(&lowered.plan, config, &self.engine.server)?,
        };
        Ok(placed)
    }

    /// Render the placed plan for a query under the session's default
    /// config: segments, traits, every inserted Router / MemMove /
    /// DeviceCrossing operator, and a `verified: N stages, M diagnostics`
    /// footer from the static verifier (diagnostics render one per line
    /// below it).
    pub fn explain(&self, query: &Query) -> Result<String, HapeError> {
        self.explain_with(query, &self.config)
    }

    /// Render the placed plan under an explicit config.
    pub fn explain_with(
        &self,
        query: &Query,
        config: &ExecConfig,
    ) -> Result<String, HapeError> {
        let lowered = self.lower(query)?;
        let placed = self.place_lowered(&lowered, config)?;
        let mut text = placed.render();
        text.push_str(&verify::explain_footer(&placed, &lowered.catalog, &self.engine.server));
        Ok(text)
    }

    /// Statically verify a query under the session's default config: all
    /// four verifier passes ([`mod@crate::verify`]) over the placed plan.
    /// `Err(HapeError::Verify(..))` carries every diagnostic.
    pub fn verify(&self, query: &Query) -> Result<(), HapeError> {
        self.verify_with(query, &self.config)
    }

    /// Statically verify under an explicit config.
    pub fn verify_with(&self, query: &Query, config: &ExecConfig) -> Result<(), HapeError> {
        let lowered = self.lower(query)?;
        let placed = self.place_lowered(&lowered, config)?;
        self.verify_placed(&lowered.catalog, &placed)
    }

    /// Statically verify an already-placed plan against an explicit
    /// catalog (for lowered queries, the derived
    /// [`LoweredQuery::catalog`] the plan's scans resolve against) and
    /// this session's server.
    pub fn verify_placed(
        &self,
        catalog: &Catalog,
        placed: &PlacedPlan,
    ) -> Result<(), HapeError> {
        Ok(verify::verify_placed(placed, catalog, &self.engine.server)?)
    }

    /// Lower, place and execute under the session's default config.
    ///
    /// Lowering and placement run per call; to execute one query many
    /// times (e.g. sweeping placements), [`Session::lower`] once and hand
    /// the [`LoweredQuery`] to [`Engine::run`] directly.
    pub fn execute(&self, query: &Query) -> Result<QueryReport, HapeError> {
        self.execute_with(query, &self.config)
    }

    /// Lower, place and execute under an explicit config. Under
    /// [`Placement::Auto`] the full four-layer flow runs: lower →
    /// optimize → place → run.
    pub fn execute_with(
        &self,
        query: &Query,
        config: &ExecConfig,
    ) -> Result<QueryReport, HapeError> {
        let lowered = self.lower(query)?;
        let placed = self.place_lowered(&lowered, config)?;
        let mut exec = self
            .engine
            .begin(&lowered.catalog, &placed)?
            .with_trace(&config.trace)
            .with_faults(&config.faults);
        while !exec.is_done() {
            exec.step()?;
        }
        Ok(exec.finish())
    }

    /// Execute a query with tracing enabled and render the plain-text
    /// profile: per-stage predicted-vs-observed cost rows (the estimate
    /// side requires [`Placement::Auto`]), per-query totals, and the
    /// engine's counters. Runs under [`Placement::Auto`] so every stage
    /// carries the optimizer's estimate.
    pub fn profile(&self, query: &Query) -> Result<String, HapeError> {
        self.profile_with(query, &ExecConfig::new(Placement::Auto))
    }

    /// Execute under an explicit config (a fresh recorder is layered on
    /// top — any recorder already in `config` is replaced for this run)
    /// and render the profile table.
    pub fn profile_with(
        &self,
        query: &Query,
        config: &ExecConfig,
    ) -> Result<String, HapeError> {
        let recorder = TraceRecorder::new();
        let cfg = config.clone().with_trace(recorder.clone());
        self.execute_with(query, &cfg)?;
        Ok(recorder.snapshot().render_profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PlanError;
    use crate::plan::JoinAlgo;
    use crate::query::Query;
    use hape_ops::{col, lit, AggFunc};
    use hape_storage::datagen::gen_key_fk_table;

    fn session() -> Session {
        let mut s = Session::new(Server::paper_testbed());
        s.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 1));
        s.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 2));
        s
    }

    #[test]
    fn session_runs_a_join_query_on_all_placements() {
        let s = session();
        let q = s
            .query("smoke")
            .from_table("fact")
            .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
        let mut rows = Vec::new();
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = s.execute_with(&q, &ExecConfig::new(placement)).unwrap();
            // Unique fact keys over 2^16, dim keys over 2^12: the join
            // keeps exactly the dim-sized key range.
            assert_eq!(rep.rows[0].1[0], (1 << 12) as f64, "{placement:?}");
            rows.push(rep.rows);
        }
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[1], rows[2]);
    }

    #[test]
    fn place_and_explain_surface_the_ir() {
        let s = session();
        let q = s
            .query("placed")
            .from_table("fact")
            .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k"))]);
        let placed = s.place(&q).unwrap();
        assert_eq!(placed.name, "placed");
        assert_eq!(placed.stages.len(), 2);
        // Default hybrid placement: the stream fans out over CPUs + GPUs.
        let stream = placed.stages.last().unwrap();
        assert_eq!(stream.segments().len(), 4);
        let text = s.explain(&q).unwrap();
        assert!(text.contains("Router("), "{text}");
        assert!(text.contains("DeviceCrossing(Cpu -> Gpu)"), "{text}");
        assert!(text.contains("broadcast \"placed.dim\""), "{text}");
        // The placed plan is directly executable.
        let lowered = s.lower(&q).unwrap();
        let rep = s.engine().run_placed(&lowered.catalog, &placed).unwrap();
        assert_eq!(rep.rows[0].1[0], (1 << 12) as f64);
    }

    #[test]
    fn execute_surfaces_plan_errors() {
        let s = session();
        let q = s
            .query("bad")
            .from_table("fact")
            .filter(col("missing").lt(lit(1)))
            .agg(vec![(AggFunc::Count, col("k"))]);
        match s.execute(&q).unwrap_err() {
            HapeError::Plan(PlanError::UnknownColumn { column, .. }) => {
                assert_eq!(column, "missing");
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn execute_surfaces_engine_errors() {
        // GPU memory scaled down so the dim hash table cannot fit.
        let mut s = Session::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0))
            .with_placement(Placement::GpuOnly);
        s.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 1));
        s.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 2));
        let q = s
            .query("oom")
            .from_table("fact")
            .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k"))]);
        match s.execute(&q).unwrap_err() {
            HapeError::Engine(e) => assert!(e.to_string().contains("GPU memory")),
            e => panic!("unexpected error {e}"),
        }
    }
}
