//! Deterministic fault injection and the recovery contract it proves.
//!
//! The paper's placement argument (§3–§5) treats the device topology as an
//! *input* to the optimize → place passes. This module makes a degraded
//! topology just another such input: a seeded [`FaultPlan`] fires typed
//! faults at **simulated-time / packet-count triggers** — never wall-clock —
//! so a fixed plan produces bit-identical behaviour at any data-plane thread
//! count (the determinism contract of `tests/runtime_determinism.rs`).
//!
//! Fault taxonomy ([`FaultKind`]):
//!
//! - `GpuFailed` — permanent device loss. The engine invalidates that GPU's
//!   resident hash tables, re-places the remaining stages on the surviving
//!   fleet (through the ordinary `optimize`/`place_on` passes) and resumes
//!   from the last completed stage barrier.
//! - `TransferError` — a transient PCIe fault. Retried under a
//!   [`RetryPolicy`]; every retry's backoff plus the re-transfer time is
//!   charged to the simulated clock, so recovery is *priced, not hidden*.
//! - `BroadcastOom` — a broadcast install exceeds device DRAM at runtime.
//!   The device is quarantined for the rest of the query and the stage is
//!   re-placed without it.
//! - `DeviceSlow` — bandwidth degradation: the device's PCIe link runs at
//!   `1/factor` of its nominal bandwidth from the trigger onward.
//!
//! The plane is **off by default and zero-cost when disabled** (one `Option`
//! check, the same discipline as the tracer): [`FaultPlan::off`] carries no
//! allocation and [`FaultSession::disabled`] short-circuits every hook.
//!
//! Fleet-wide state lives in a [`HealthRegistry`]: `SessionServer` shares one
//! registry across concurrent queries so a device lost under one query is
//! quarantined for all, and bumps a *health epoch* used to invalidate
//! broadcast-resident build-cache entries.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use hape_sim::time::SimTime;

/// What breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanent device loss: the GPU drops out of the fleet for good.
    GpuFailed,
    /// A transient PCIe transfer fault: the next `failures` transfer
    /// attempts on this device fail and are retried under the
    /// [`RetryPolicy`].
    TransferError {
        /// Consecutive failed attempts before the transfer succeeds.
        failures: u32,
    },
    /// A broadcast install exceeds device DRAM at runtime; the device is
    /// quarantined for the remainder of the query.
    BroadcastOom,
    /// Bandwidth degradation: the device's link drops to `1/factor` of its
    /// nominal bandwidth.
    DeviceSlow {
        /// Slow-down factor (`2.0` halves the link bandwidth).
        factor: f64,
    },
}

/// When a fault fires. Triggers are simulated-time or packet-ordinal
/// conditions — both fully determined by the sequential control plane — so
/// injection is invariant under the data-plane thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire at the barrier before stage `n` (0-based) runs.
    AtStage(usize),
    /// Fire when the query-wide count of packets committed to GPU workers
    /// reaches `n`. Meaningful for `GpuFailed` and `TransferError` (the
    /// packet-granular faults); barrier-granular kinds should use
    /// [`Trigger::AtStage`] / [`Trigger::AtSimTime`].
    AtGpuPacket(usize),
    /// Fire at the first stage barrier whose simulated clock is ≥ `t`.
    AtSimTime(SimTime),
}

/// One injected fault: a device, a kind, and a trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Target GPU index (into `Server::gpus`).
    pub gpu: usize,
    /// What breaks.
    pub kind: FaultKind,
    /// When it breaks.
    pub trigger: Trigger,
}

/// Bounded-retry policy for transient faults and re-placement.
///
/// Backoff is charged to the **simulated clock** of the affected device, so
/// degraded runs report honestly longer makespans (see the formula table in
/// `cost.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transfer retry attempts before the query fails with
    /// `EngineError::TransferRetriesExhausted`.
    pub max_retries: u32,
    /// First-retry backoff; attempt `k` waits `base_backoff · 2^(k-1)`.
    pub base_backoff: SimTime,
    /// Maximum mid-query re-placements before the query fails with
    /// `EngineError::RecoveryFailed`.
    pub max_replans: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_backoff: SimTime::from_us(100.0), max_replans: 2 }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry attempt `attempt` (1-based):
    /// `base_backoff · 2^(attempt-1)`, exponent capped to keep the term
    /// finite for adversarial policies.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let exp = attempt.saturating_sub(1).min(16);
        SimTime::from_secs(self.base_backoff.as_secs() * (1u64 << exp) as f64)
    }
}

#[derive(Debug)]
struct PlanInner {
    faults: Vec<FaultSpec>,
    retry: RetryPolicy,
}

/// A seeded, deterministic fault schedule.
///
/// `FaultPlan::off()` (the default) is free: no allocation, and every
/// injection hook reduces to one branch. Attach a plan with
/// `ExecConfig::with_faults` (solo runs) or `SessionServer::with_faults`
/// (serving, with a shared [`HealthRegistry`]).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl FaultPlan {
    /// The disabled plan: injects nothing, costs one branch per hook.
    pub fn off() -> Self {
        FaultPlan { inner: None }
    }

    /// A plan firing `faults` under `retry`.
    pub fn new(faults: Vec<FaultSpec>, retry: RetryPolicy) -> Self {
        FaultPlan { inner: Some(Arc::new(PlanInner { faults, retry })) }
    }

    /// The canonical chaos schedule used by the chaos suites and
    /// `figures --chaos`: every recoverable fault kind, with trigger
    /// offsets varied pseudo-randomly by `seed` (pure arithmetic — no
    /// wall-clock, no OS randomness).
    ///
    /// The schedule is recoverable by construction: permanent loss and OOM
    /// target only GPU 1 (GPU 0 and the CPUs survive), and transfer faults
    /// stay within the default retry budget.
    pub fn canonical(seed: u64) -> Self {
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15 | 1;
        let mut next = |m: u64| -> u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % m.max(1)
        };
        let slow = 1.5 + next(100) as f64 / 100.0;
        let transfer_at = 1 + next(6) as usize;
        let failures = 1 + next(2) as u32;
        let fail_at = 4 + next(8) as usize;
        let oom_stage = 1 + next(3) as usize;
        FaultPlan::new(
            vec![
                FaultSpec {
                    gpu: 0,
                    kind: FaultKind::DeviceSlow { factor: slow },
                    trigger: Trigger::AtStage(0),
                },
                FaultSpec {
                    gpu: 0,
                    kind: FaultKind::TransferError { failures },
                    trigger: Trigger::AtGpuPacket(transfer_at),
                },
                FaultSpec {
                    gpu: 1,
                    kind: FaultKind::GpuFailed,
                    trigger: Trigger::AtGpuPacket(fail_at),
                },
                FaultSpec {
                    gpu: 1,
                    kind: FaultKind::BroadcastOom,
                    trigger: Trigger::AtStage(oom_stage),
                },
            ],
            RetryPolicy::default(),
        )
    }

    /// True when the plan carries faults.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The scheduled faults (empty when disabled).
    pub fn faults(&self) -> &[FaultSpec] {
        self.inner.as_deref().map_or(&[], |p| &p.faults)
    }

    /// The retry policy (defaults when disabled).
    pub fn retry(&self) -> RetryPolicy {
        self.inner.as_deref().map_or_else(RetryPolicy::default, |p| p.retry)
    }
}

#[derive(Debug, Default)]
struct HealthState {
    failed: BTreeSet<usize>,
    slow: BTreeMap<usize, u32>,
    epoch: u64,
}

/// Fleet-wide device health, shared across concurrent queries.
///
/// Cloning shares the registry (it is an `Arc`); `SessionServer` hands one
/// clone to every query so a permanent loss under one query quarantines the
/// device for the whole fleet. Every failure bumps the **health epoch**;
/// broadcast-resident build-cache entries are keyed by the epoch observed at
/// insert time and downgraded to host-resident when it moves.
#[derive(Debug, Clone, Default)]
pub struct HealthRegistry {
    inner: Arc<Mutex<HealthState>>,
}

impl HealthRegistry {
    /// A pristine registry: every device healthy, epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record permanent loss of `gpu`. Returns `true` (and bumps the
    /// epoch) only on the first report.
    pub fn fail(&self, gpu: usize) -> bool {
        let mut st = self.inner.lock().expect("health registry lock");
        let fresh = st.failed.insert(gpu);
        if fresh {
            st.epoch += 1;
        }
        fresh
    }

    /// Record bandwidth degradation of `gpu`. Slow-down factors are stored
    /// in centi-units so the registry stays `Eq`-friendly.
    pub fn mark_slow(&self, gpu: usize, factor: f64) {
        let mut st = self.inner.lock().expect("health registry lock");
        st.slow.insert(gpu, (factor.max(1.0) * 100.0) as u32);
    }

    /// True when `gpu` has been permanently lost.
    pub fn is_failed(&self, gpu: usize) -> bool {
        self.inner.lock().expect("health registry lock").failed.contains(&gpu)
    }

    /// The slow-down factor for `gpu`, if degraded.
    pub fn slow_factor(&self, gpu: usize) -> Option<f64> {
        let st = self.inner.lock().expect("health registry lock");
        st.slow.get(&gpu).map(|c| f64::from(*c) / 100.0)
    }

    /// The set of permanently failed GPUs.
    pub fn failed(&self) -> BTreeSet<usize> {
        self.inner.lock().expect("health registry lock").failed.clone()
    }

    /// The current health epoch (bumped once per fresh failure).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("health registry lock").epoch
    }
}

/// A packet-granular fault fired by [`FaultSession::on_gpu_packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFault {
    /// The device died mid-stage (permanent).
    Fail,
    /// The transfer failed transiently `failures` times before succeeding.
    Transfer {
        /// Consecutive failed attempts.
        failures: u32,
    },
}

/// Per-query injection state, owned by `QueryExec` and consulted only on the
/// sequential control plane (stage barriers, broadcast installs, and the
/// packet-commit loop) — never from data-plane worker threads, which keeps a
/// fixed plan bit-identical across thread counts.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    health: HealthRegistry,
    fired: RefCell<Vec<bool>>,
    gpu_packets: Cell<usize>,
    retries: Cell<usize>,
    replans: Cell<usize>,
    /// Query-local quarantine (BroadcastOom): the device is healthy for
    /// other queries but excluded from this one's re-placements.
    quarantine: RefCell<BTreeSet<usize>>,
    /// Devices whose DRAM exhaustion is armed and will fire at their next
    /// broadcast install under this query.
    oom_pending: RefCell<BTreeSet<usize>>,
}

impl FaultSession {
    /// The inert session: nothing fires, every hook is one branch.
    pub fn disabled() -> Self {
        Self::new(FaultPlan::off(), HealthRegistry::new())
    }

    /// A session for `plan` against (possibly shared) `health`.
    pub fn new(plan: FaultPlan, health: HealthRegistry) -> Self {
        let fired = vec![false; plan.faults().len()];
        FaultSession {
            plan,
            health,
            fired: RefCell::new(fired),
            gpu_packets: Cell::new(0),
            retries: Cell::new(0),
            replans: Cell::new(0),
            quarantine: RefCell::new(BTreeSet::new()),
            oom_pending: RefCell::new(BTreeSet::new()),
        }
    }

    /// True when the plan can fire faults.
    pub fn is_active(&self) -> bool {
        self.plan.is_enabled()
    }

    /// The retry policy governing this query's recovery.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.plan.retry()
    }

    /// The fleet health registry this session reports into.
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// Fire every stage/sim-time-triggered fault due at the barrier before
    /// `stage` runs at simulated time `clock`. Returns the specs that fired
    /// (for trace spans).
    pub fn begin_stage(&self, stage: usize, clock: SimTime) -> Vec<FaultSpec> {
        if !self.is_active() {
            return Vec::new();
        }
        let mut fired_now = Vec::new();
        let mut fired = self.fired.borrow_mut();
        for (i, f) in self.plan.faults().iter().enumerate() {
            if fired[i] {
                continue;
            }
            let due = match f.trigger {
                Trigger::AtStage(k) => stage >= k,
                Trigger::AtSimTime(t) => clock >= t,
                Trigger::AtGpuPacket(_) => false,
            };
            if !due {
                continue;
            }
            fired[i] = true;
            match f.kind {
                FaultKind::GpuFailed => {
                    self.health.fail(f.gpu);
                }
                FaultKind::DeviceSlow { factor } => self.health.mark_slow(f.gpu, factor),
                FaultKind::BroadcastOom => {
                    self.oom_pending.borrow_mut().insert(f.gpu);
                }
                // Transfer faults are packet-granular; a barrier trigger
                // arms nothing (documented on `Trigger::AtGpuPacket`).
                FaultKind::TransferError { .. } => {}
            }
            fired_now.push(*f);
        }
        fired_now
    }

    /// Control-plane hook: a packet is about to be committed to `gpu`.
    /// Advances the query-wide GPU packet ordinal and returns the fault
    /// firing at this ordinal, if any.
    pub fn on_gpu_packet(&self, gpu: usize) -> Option<PacketFault> {
        if !self.is_active() {
            return None;
        }
        let ord = self.gpu_packets.get();
        self.gpu_packets.set(ord + 1);
        let mut fired = self.fired.borrow_mut();
        for (i, f) in self.plan.faults().iter().enumerate() {
            if fired[i] || f.gpu != gpu {
                continue;
            }
            let Trigger::AtGpuPacket(n) = f.trigger else { continue };
            if ord < n {
                continue;
            }
            match f.kind {
                FaultKind::GpuFailed => {
                    fired[i] = true;
                    self.health.fail(gpu);
                    return Some(PacketFault::Fail);
                }
                FaultKind::TransferError { failures } => {
                    fired[i] = true;
                    return Some(PacketFault::Transfer { failures });
                }
                // Barrier-granular kinds don't fire on the packet path.
                FaultKind::BroadcastOom | FaultKind::DeviceSlow { .. } => {}
            }
        }
        None
    }

    /// Install hook: true when `gpu`'s armed DRAM exhaustion fires at this
    /// broadcast install. Consumes the arming and quarantines the device
    /// for the rest of the query.
    pub fn oom_at_install(&self, gpu: usize) -> bool {
        if !self.is_active() {
            return false;
        }
        if self.oom_pending.borrow_mut().remove(&gpu) {
            self.quarantine.borrow_mut().insert(gpu);
            return true;
        }
        false
    }

    /// Devices this query must avoid: fleet-failed ∪ query-quarantined.
    pub fn excluded(&self) -> BTreeSet<usize> {
        let mut out = self.health.failed();
        out.extend(self.quarantine.borrow().iter().copied());
        out
    }

    /// True when `gpu` is failed fleet-wide or quarantined by this query.
    pub fn is_excluded(&self, gpu: usize) -> bool {
        self.health.is_failed(gpu) || self.quarantine.borrow().contains(&gpu)
    }

    /// Record `n` priced transfer retries.
    pub fn add_retries(&self, n: usize) {
        self.retries.set(self.retries.get() + n);
    }

    /// Record one mid-query re-placement.
    pub fn note_replan(&self) {
        self.replans.set(self.replans.get() + 1);
    }

    /// Transfer retries priced into this query so far.
    pub fn retries(&self) -> usize {
        self.retries.get()
    }

    /// Mid-query re-placements performed so far.
    pub fn replans(&self) -> usize {
        self.replans.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_inert() {
        let plan = FaultPlan::off();
        assert!(!plan.is_enabled());
        assert!(plan.faults().is_empty());
        let s = FaultSession::disabled();
        assert!(!s.is_active());
        assert!(s.begin_stage(0, SimTime::ZERO).is_empty());
        assert_eq!(s.on_gpu_packet(0), None);
        assert!(!s.oom_at_install(0));
    }

    #[test]
    fn canonical_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::canonical(7);
        let b = FaultPlan::canonical(7);
        assert_eq!(a.faults(), b.faults());
        let c = FaultPlan::canonical(8);
        assert_ne!(a.faults(), c.faults(), "seeds should vary the schedule");
        // Recoverability invariants: permanent loss / OOM never target
        // GPU 0, and transfer faults stay within the retry budget.
        for f in a.faults() {
            match f.kind {
                FaultKind::GpuFailed | FaultKind::BroadcastOom => assert_ne!(f.gpu, 0),
                FaultKind::TransferError { failures } => {
                    assert!(failures <= a.retry().max_retries);
                }
                FaultKind::DeviceSlow { factor } => assert!(factor > 1.0),
            }
        }
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), p.base_backoff);
        assert_eq!(p.backoff(2), p.base_backoff + p.base_backoff);
        assert!(p.backoff(3) > p.backoff(2));
        // The exponent cap keeps adversarial attempts finite.
        assert!(p.backoff(10_000).as_secs().is_finite());
    }

    #[test]
    fn registry_epoch_bumps_once_per_fresh_failure() {
        let h = HealthRegistry::new();
        assert_eq!(h.epoch(), 0);
        assert!(h.fail(1));
        assert!(!h.fail(1), "repeat failure is not fresh");
        assert_eq!(h.epoch(), 1);
        assert!(h.is_failed(1));
        assert!(!h.is_failed(0));
        assert!(h.fail(0));
        assert_eq!(h.epoch(), 2);
        assert_eq!(h.failed().len(), 2);
        // Clones share state.
        let h2 = h.clone();
        assert!(h2.is_failed(0));
        h.mark_slow(2, 2.0);
        assert_eq!(h2.slow_factor(2), Some(2.0));
        assert_eq!(h2.slow_factor(3), None);
    }

    #[test]
    fn stage_barrier_fires_stage_and_time_triggers() {
        let plan = FaultPlan::new(
            vec![
                FaultSpec { gpu: 1, kind: FaultKind::GpuFailed, trigger: Trigger::AtStage(1) },
                FaultSpec {
                    gpu: 0,
                    kind: FaultKind::DeviceSlow { factor: 2.0 },
                    trigger: Trigger::AtSimTime(SimTime::from_ms(1.0)),
                },
                FaultSpec {
                    gpu: 1,
                    kind: FaultKind::BroadcastOom,
                    trigger: Trigger::AtStage(0),
                },
            ],
            RetryPolicy::default(),
        );
        let s = FaultSession::new(plan, HealthRegistry::new());
        let fired = s.begin_stage(0, SimTime::ZERO);
        assert_eq!(fired.len(), 1, "only the OOM arming is due at stage 0");
        assert!(s.oom_at_install(1), "armed OOM fires at install");
        assert!(!s.oom_at_install(1), "and is consumed");
        assert!(s.is_excluded(1), "OOM quarantines the device query-locally");
        assert!(!s.health().is_failed(1), "but does not fail it fleet-wide");
        let fired = s.begin_stage(1, SimTime::from_ms(2.0));
        assert_eq!(fired.len(), 2, "stage-1 loss and the sim-time slow fire");
        assert!(s.health().is_failed(1));
        assert_eq!(s.health().slow_factor(0), Some(2.0));
        assert!(s.begin_stage(2, SimTime::from_ms(9.0)).is_empty(), "one-shot");
    }

    #[test]
    fn packet_ordinal_fires_transfer_then_loss() {
        let plan = FaultPlan::new(
            vec![
                FaultSpec {
                    gpu: 0,
                    kind: FaultKind::TransferError { failures: 2 },
                    trigger: Trigger::AtGpuPacket(1),
                },
                FaultSpec {
                    gpu: 1,
                    kind: FaultKind::GpuFailed,
                    trigger: Trigger::AtGpuPacket(3),
                },
            ],
            RetryPolicy::default(),
        );
        let s = FaultSession::new(plan, HealthRegistry::new());
        assert_eq!(s.on_gpu_packet(0), None, "ordinal 0: not yet due");
        assert_eq!(
            s.on_gpu_packet(0),
            Some(PacketFault::Transfer { failures: 2 }),
            "ordinal 1 on gpu0 fires the transfer fault"
        );
        assert_eq!(s.on_gpu_packet(0), None, "one-shot");
        assert_eq!(s.on_gpu_packet(0), None, "ordinal 3, wrong device");
        assert_eq!(
            s.on_gpu_packet(1),
            Some(PacketFault::Fail),
            "first gpu1 packet at/after ordinal 3 kills the device"
        );
        assert!(s.health().is_failed(1));
        s.add_retries(2);
        s.note_replan();
        assert_eq!(s.retries(), 2);
        assert_eq!(s.replans(), 1);
    }
}
