//! The analytic cost model behind [`Placement::Auto`](crate::Placement).
//!
//! The paper's thesis is that placement must follow from the *hardware
//! model*, not from a user-chosen enum: which devices run a pipeline is a
//! function of compute throughput, memory bandwidth, interconnect cost and
//! device memory capacity (§2.1, §6). This module derives per-stage cost
//! estimates from exactly the specs the simulator executes against — the
//! same [`CpuSpec`](hape_sim::CpuSpec)/[`GpuSpec`](hape_sim::GpuSpec)
//! numbers, the same [`Link`](hape_sim::interconnect::Link) bandwidths —
//! so the optimizer ([`crate::optimize::optimize`]) and the engine agree about the
//! hardware by construction.
//!
//! ## Cost formulas ↔ paper hardware parameters
//!
//! | formula term | hardware parameter (paper §) | spec accessor |
//! |---|---|---|
//! | CPU scan ns/byte = `1e9 / socket_scan_bw` | socket DRAM bandwidth, per-core issue limit (§2.1) | [`CpuSpec::socket_scan_bw`](hape_sim::CpuSpec::socket_scan_bw) |
//! | CPU probe ns/access (cache blend, MLP, TLB) | cache hierarchy + memory-level parallelism (§2.1, §4.1) | [`CpuCostModel::random_access_ns`] |
//! | GPU stream ns/byte = `max(link, kernel)` | PCIe 3 x16 ≈ 12 GB/s vs GDDR5X 280 GB/s (§2.1) | [`Link::bw`](hape_sim::interconnect::Link), [`GpuSpec::dram_bw`](hape_sim::GpuSpec) |
//! | GPU probe ns/access (L2 vs device memory line) | fat cache hierarchy, line over-fetch (§2.1, §4.1) | [`GpuSpec::random_access_ns`](hape_sim::GpuSpec::random_access_ns) |
//! | per-packet fixed ns = `link latency + launch overhead` | DMA setup, kernel launch (§2.2) | [`Link::latency`](hape_sim::interconnect::Link), [`GpuSpec::launch_overhead_ns`](hape_sim::GpuSpec) |
//! | broadcast s = `Σ ht bytes / link bw` per GPU | hash-table mem-move over PCIe (§4.2) | [`Link::bw`](hape_sim::interconnect::Link) |
//! | capacity bound = `Σ ht bytes × working factor ≤ DRAM` | GPU device memory, Q9's §6.4 failure | [`GpuSpec::dram_capacity`](hape_sim::GpuSpec), [`GPU_HT_WORKING_FACTOR`] |
//! | co-partition fanout: `2(R+S) >> bits ≤ 0.9 × DRAM` | §5 "just small enough to fit in GPU-memory" | [`hape_join::plan_cpu_bits`], [`hape_join::gpu_budget`] |
//! | co-partition s = `Σ passes partition_pass(n, 8, 2^bits) / workers` | TLB-bounded multi-pass CPU partitioning (§4.1, §5) | [`CpuCostModel::partition_pass`], [`CpuSpec::max_partition_fanout`](hape_sim::CpuSpec::max_partition_fanout) |
//! | co-process single pass s = `max((R+S)/Σ link bw, 4(R+S)/Σ gpu bw)` | each co-partition pair crosses PCIe once, joined at device bandwidth (§5) | [`Link::bw`](hape_sim::interconnect::Link), [`GpuSpec::dram_bw`](hape_sim::GpuSpec) |
//! | CPU stateful s = `compute_simd(rows, ops) + users × random_access` | per-user state machines scan sorted runs; state stays cache-resident (§2.1) | [`CpuCostModel::compute_simd`], [`CpuCostModel::random_accesses`] |
//! | GPU stateful ns/row = `random_access_ns × seq-chain factor` | serial per-user dependency chain defeats the GPU's latency hiding — the paper's random-access term, unamortised (§2.1, §4.1) | [`GpuSpec::random_access_ns`](hape_sim::GpuSpec::random_access_ns), [`hape_ops::stateful::GPU_SEQ_CHAIN_FACTOR`] |
//! | stateful packet floor s = `max over devices of packet_bytes × ns/B` | a participating worker processes at least one user-aligned packet — a slow device bounds the stage even when summed rates look fast | [`CostModel::stage_cost`] |
//! | retry delay s = `Σ_{a=1..n} base·2^(a−1) + transfer replay` | transient transfer failure: each attempt pays exponential backoff plus the re-sent packet crossing PCIe, charged to the GPU's sim clock before commit (fault plane, PR 10) | [`RetryPolicy::backoff`](crate::fault::RetryPolicy::backoff), [`Link::bw`](hape_sim::interconnect::Link) |
//! | replan penalty s = `base·2^(replan)` + degraded placement | permanent device loss mid-query: the control plane pays one backoff per re-placement, then runs the remaining stages on the surviving fleet's (slower) plan (fault plane, PR 10) | [`RetryPolicy::backoff`](crate::fault::RetryPolicy::backoff), [`optimize_on`](crate::optimize::optimize_on) |
//!
//! Cardinalities are estimated from the catalog's *actual* table sizes
//! (the scan views lowering pushes down), with classic default
//! selectivities for filters and foreign-key match rates for joins; the
//! estimated hash-table footprint mirrors the executor's
//! [`JoinTable`](crate::plan::JoinTable) layout (batch payload plus
//! chained-table heads/next arrays). Estimates are deliberately mildly
//! conservative — an over-estimated broadcast footprint refuses a GPU that
//! might have fit, never the reverse, which is the safe direction for the
//! paper's Q9 capacity cliff.

use std::collections::HashMap;

use hape_sim::topology::{DeviceId, Server};
use hape_sim::CpuCostModel;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::plan::{PipeOp, Pipeline};
use crate::provider::{GPU_HT_WORKING_FACTOR, GPU_PACKET_SHARE};

/// Default selectivity charged per filter operator (no per-column
/// statistics yet; the classic textbook third-to-half compromise).
pub const FILTER_SELECTIVITY: f64 = 0.4;

/// Default join match rate: TPC-H joins are foreign-key joins, so each
/// probe row is assumed to survive with one match.
pub const JOIN_MATCH_RATE: f64 = 1.0;

/// Estimated bytes per payload/projection column when the physical plan no
/// longer carries type information (conservative: the widest column kind).
pub const EST_COLUMN_BYTES: f64 = 8.0;

/// Estimated chain accesses per hash-table probe (head + one entry).
const PROBE_ACCESSES: f64 = 2.0;

/// Scalar ops per probed row (hash + compare), charged on CPU cores.
const PROBE_OPS: f64 = 8.0;

/// Estimated events per user run for stateful aggregates (no per-column
/// statistics yet; matches the behavioral generator's average run length).
pub const STATEFUL_EVENTS_PER_USER: f64 = 32.0;

/// Estimated size of a built hash table: the executor's
/// [`JoinTable`](crate::plan::JoinTable) footprint for an estimated build
/// output.
#[derive(Debug, Clone, Copy)]
pub struct HtEstimate {
    /// Estimated build rows.
    pub rows: f64,
    /// Estimated total footprint (batch payload + chained table).
    pub bytes: u64,
}

/// Estimated hash-table footprints, by build-stage name — accumulated in
/// stage order as the optimizer walks the plan.
pub type HtEstimates = HashMap<String, HtEstimate>;

/// One hash-table probe inside a pipeline, with its estimated load.
#[derive(Debug, Clone)]
pub struct ProbeEstimate {
    /// Name of the probed hash table.
    pub ht: String,
    /// Estimated rows reaching this probe.
    pub rows: f64,
    /// Estimated footprint of the probed table (the probe's working set).
    pub ht_bytes: u64,
    /// Estimated build rows of the probed table (the co-processing arm
    /// co-partitions these against the stream).
    pub ht_rows: f64,
}

/// Cardinality walk over one pipeline.
#[derive(Debug, Clone)]
pub struct PipelineEstimate {
    /// Rows the scan produces (exact, from the catalog).
    pub in_rows: f64,
    /// Bytes the scan reads (exact, post-pushdown).
    pub in_bytes: f64,
    /// Estimated output rows.
    pub out_rows: f64,
    /// Estimated output bytes.
    pub out_bytes: f64,
    /// The probes, in pipeline order.
    pub probes: Vec<ProbeEstimate>,
    /// Rows entering a stateful per-user aggregate (0 when the pipeline
    /// has none).
    pub stateful_rows: f64,
    /// Estimated distinct users those rows cover.
    pub stateful_users: f64,
    /// Estimated per-user state working set, summed over users.
    pub stateful_state_bytes: f64,
    /// State-machine operations per input row.
    pub stateful_ops_per_row: f64,
}

impl PipelineEstimate {
    /// Estimated [`JoinTable`](crate::plan::JoinTable) footprint of a hash
    /// table built over this pipeline's output: the batch payload plus the
    /// chained table's heads (next power of two of the row count) and next
    /// pointers, 4 bytes each — mirroring
    /// [`ChainedTable::build`](hape_join::common::ChainedTable::build).
    pub fn table_estimate(&self) -> HtEstimate {
        let rows = self.out_rows.max(1.0);
        let heads = (rows as u64).max(2).next_power_of_two();
        let chained = (heads + rows as u64) * 4;
        HtEstimate { rows, bytes: chained + self.out_bytes as u64 }
    }
}

/// The co-processing components of a [`StageCost`], present when the
/// stage is priced under [`ProbeExec::CoProcess`](crate::plan::ProbeExec::CoProcess) (§5): the CPU-side
/// co-partitioning and the per-GPU single-pass transfer/join — the same
/// decomposition `hape_join::coprocess_join` executes.
#[derive(Debug, Clone)]
pub struct CoprocessCost {
    /// The oversized hash table executed as the co-processing join.
    pub ht: String,
    /// CPU co-partitioning time: all partition passes of both sides,
    /// spread over the subset's workers.
    pub cpu_partition_seconds: f64,
    /// Single PCIe pass + in-GPU join time, load-balanced over the
    /// subset's GPUs.
    pub gpu_pass_seconds: f64,
    /// Planned CPU-side radix bits.
    pub cpu_bits: u32,
    /// Estimated bytes of one co-partition pair with the join's working
    /// space (what must fit one GPU).
    pub per_partition_bytes: u64,
}

/// Per-stage cost estimate for one candidate device subset. This is what
/// the optimizer minimises and what
/// [`Session::explain`](crate::session::Session::explain) renders for
/// [`Placement::Auto`](crate::Placement) plans.
#[derive(Debug, Clone)]
pub struct StageCost {
    /// The candidate devices.
    pub devices: Vec<DeviceId>,
    /// Estimated streaming makespan: input bytes over the subset's summed
    /// effective rates (the load-aware router balances by rate). Under
    /// [`ProbeExec::CoProcess`](crate::plan::ProbeExec::CoProcess) this is the CPU-side prefix (everything up
    /// to the co-processed probe) plus the final aggregation.
    pub stream_seconds: f64,
    /// Upfront hash-table broadcast time (max over the subset's GPUs;
    /// dedicated links broadcast in parallel).
    pub broadcast_seconds: f64,
    /// Device-to-host return of a build stage's output produced on GPUs
    /// (zero for stream stages and CPU-only subsets).
    pub d2h_seconds: f64,
    /// Estimated broadcast footprint per GPU (raw table bytes).
    pub ht_bytes: u64,
    /// The footprint with working space ([`GPU_HT_WORKING_FACTOR`]); for
    /// co-processing stages, one co-partition pair's footprint instead.
    pub gpu_required: u64,
    /// Smallest device-memory capacity among the subset's GPUs (`None`
    /// when the subset has no GPU).
    pub gpu_capacity: Option<u64>,
    /// The co-processing decomposition when the stage is priced under
    /// [`ProbeExec::CoProcess`](crate::plan::ProbeExec::CoProcess); `None` for broadcast stages.
    pub coprocess: Option<CoprocessCost>,
}

impl StageCost {
    /// Total estimated stage makespan.
    pub fn total_seconds(&self) -> f64 {
        let cp = self
            .coprocess
            .as_ref()
            .map_or(0.0, |c| c.cpu_partition_seconds + c.gpu_pass_seconds);
        self.stream_seconds + self.broadcast_seconds + self.d2h_seconds + cp
    }

    /// Whether every GPU in the subset can hold its working set — the
    /// broadcast tables with working space for [`ProbeExec::Broadcast`](crate::plan::ProbeExec::Broadcast)
    /// stages (the §6.4 capacity constraint), one co-partition pair for
    /// [`ProbeExec::CoProcess`](crate::plan::ProbeExec::CoProcess) stages — checked on estimates.
    pub fn fits_gpu_memory(&self) -> bool {
        self.gpu_capacity.is_none_or(|cap| self.gpu_required <= cap)
    }

    /// Compact label of the chosen device subset (`cpu0+gpu1`), in subset
    /// order — what the tracing plane's profile table prints per stage.
    pub fn devices_label(&self) -> String {
        self.devices.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("+")
    }
}

/// Whole-plan cost estimate: one chosen [`StageCost`] per placed stage.
#[derive(Debug, Clone)]
pub struct PlanCost {
    /// Per-stage estimates, in stage order.
    pub stages: Vec<StageCost>,
}

impl PlanCost {
    /// Estimated plan makespan (stages run sequentially).
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(StageCost::total_seconds).sum()
    }
}

/// The analytic cost model: a server topology plus the catalog the plan's
/// scans resolve against.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    server: &'a Server,
    catalog: &'a Catalog,
}

impl<'a> CostModel<'a> {
    /// A model over `server`, with scan statistics from `catalog`.
    pub fn new(server: &'a Server, catalog: &'a Catalog) -> Self {
        CostModel { server, catalog }
    }

    /// Walk a pipeline's cardinalities: exact scan statistics from the
    /// catalog, default selectivities for the operators.
    pub fn estimate_pipeline(
        &self,
        pipeline: &Pipeline,
        hts: &HtEstimates,
    ) -> Result<PipelineEstimate, EngineError> {
        let table = self.catalog.lookup(&pipeline.source)?;
        let in_rows = table.rows().max(1) as f64;
        let in_bytes = (table.bytes().max(1)) as f64;
        let mut rows = in_rows;
        let mut width = in_bytes / in_rows;
        let mut probes = Vec::new();
        let mut stateful_rows = 0.0f64;
        let mut stateful_users = 0.0f64;
        let mut stateful_state_bytes = 0.0f64;
        let mut stateful_ops_per_row = 0.0f64;
        for op in &pipeline.ops {
            match op {
                PipeOp::Filter(_) => rows *= FILTER_SELECTIVITY,
                PipeOp::Project(exprs) => width = exprs.len() as f64 * EST_COLUMN_BYTES,
                PipeOp::JoinProbe { ht, build_payload_cols, .. } => {
                    let est = hts
                        .get(ht)
                        .copied()
                        .ok_or_else(|| EngineError::HashTableNotBuilt { table: ht.clone() })?;
                    probes.push(ProbeEstimate {
                        ht: ht.clone(),
                        rows,
                        ht_bytes: est.bytes,
                        ht_rows: est.rows,
                    });
                    rows *= JOIN_MATCH_RATE;
                    width += build_payload_cols.len() as f64 * EST_COLUMN_BYTES;
                }
                PipeOp::Stateful(agg) => {
                    let users = (rows / STATEFUL_EVENTS_PER_USER).max(1.0);
                    stateful_rows += rows;
                    stateful_users += users;
                    stateful_state_bytes += users * agg.state_bytes_per_user() as f64;
                    stateful_ops_per_row = agg.ops_per_row();
                    rows = users;
                    width = agg.out_width() as f64 * EST_COLUMN_BYTES;
                }
            }
        }
        Ok(PipelineEstimate {
            in_rows,
            in_bytes,
            out_rows: rows,
            out_bytes: rows * width,
            probes,
            stateful_rows,
            stateful_users,
            stateful_state_bytes,
            stateful_ops_per_row,
        })
    }

    /// Estimate one stage's makespan on a candidate device subset, from a
    /// precomputed cardinality walk (the walk is subset-independent, so
    /// callers enumerating subsets run [`CostModel::estimate_pipeline`]
    /// once per stage).
    ///
    /// `returns_output` marks build stages, whose GPU-produced output must
    /// travel back to host memory (the built table ends up host-resident
    /// for broadcasting).
    pub fn stage_cost(
        &self,
        est: &PipelineEstimate,
        devices: &[DeviceId],
        returns_output: bool,
    ) -> Result<StageCost, EngineError> {
        // Packet sizing mirrors the engine's auto rule: ~4 packets per
        // worker share, clamped to [2K, 1M] rows.
        let shares: usize = devices
            .iter()
            .map(|d| match d {
                DeviceId::Cpu(s) => self.cpu_spec(*s).map(|c| c.cores),
                DeviceId::Gpu(_) => Ok(GPU_PACKET_SHARE),
            })
            .sum::<Result<usize, _>>()?;
        let packet_rows =
            ((est.in_rows / (4.0 * shares.max(1) as f64)) as usize).clamp(2 << 10, 1 << 20);
        let packet_bytes = packet_rows as f64 * (est.in_bytes / est.in_rows);

        // A pipeline may probe the same table at several sites (memoised
        // build sides); the broadcast moves — and capacity-counts — each
        // distinct table once.
        let mut seen_hts: Vec<&str> = Vec::new();
        let broadcast_bytes: u64 = est
            .probes
            .iter()
            .filter(|p| {
                let fresh = !seen_hts.contains(&p.ht.as_str());
                if fresh {
                    seen_hts.push(&p.ht);
                }
                fresh
            })
            .map(|p| p.ht_bytes)
            .sum();
        let mut rates = 0.0f64; // bytes per ns, summed over the subset
        let mut gpu_rates: Vec<(usize, f64)> = Vec::new();
        let mut broadcast_seconds = 0.0f64;
        let mut gpu_capacity: Option<u64> = None;
        let mut slowest_packet_seconds = 0.0f64;
        for &device in devices {
            match device {
                DeviceId::Cpu(s) => {
                    let ns = self.cpu_ns_per_byte(s, est)?;
                    rates += 1.0 / ns;
                    slowest_packet_seconds =
                        slowest_packet_seconds.max(packet_bytes * ns / 1e9);
                }
                DeviceId::Gpu(g) => {
                    let ns = self.gpu_ns_per_byte(g, est, packet_bytes)?;
                    let rate = 1.0 / ns;
                    rates += rate;
                    gpu_rates.push((g, rate));
                    slowest_packet_seconds =
                        slowest_packet_seconds.max(packet_bytes * ns / 1e9);
                    let (spec, link) = self.gpu_spec(g)?;
                    gpu_capacity = Some(gpu_capacity.map_or(spec.dram_capacity as u64, |c| {
                        c.min(spec.dram_capacity as u64)
                    }));
                    // Dedicated links broadcast in parallel: the slowest
                    // GPU's copy bounds the setup time.
                    let t =
                        broadcast_bytes as f64 / link.bw + seen_hts.len() as f64 * link.latency;
                    broadcast_seconds = broadcast_seconds.max(t);
                }
            }
        }
        let mut stream_seconds = est.in_bytes / rates / 1e9;
        if est.stateful_rows > 0.0 {
            // Every device in the subset processes at least one user-aligned
            // packet, so a latency-bound device puts a floor under the stage
            // even when the subset's summed rate looks attractive. This is
            // what lets the model *price out* a GPU for sequential-state
            // work instead of hard-pinning it to the CPU.
            stream_seconds = stream_seconds.max(slowest_packet_seconds);
        }
        // A GPU-built table's output rides its link back to the host.
        let mut d2h_seconds = 0.0f64;
        if returns_output {
            for &(g, rate) in &gpu_rates {
                let (_, link) = self.gpu_spec(g)?;
                let share = est.out_bytes * (rate / rates);
                d2h_seconds = d2h_seconds.max(share / link.bw + link.latency);
            }
        }
        Ok(StageCost {
            devices: devices.to_vec(),
            stream_seconds,
            broadcast_seconds,
            d2h_seconds,
            ht_bytes: broadcast_bytes,
            gpu_required: (broadcast_bytes as f64 * GPU_HT_WORKING_FACTOR) as u64,
            gpu_capacity,
            coprocess: None,
        })
    }

    /// Price a stream stage under [`ProbeExec::CoProcess`](crate::plan::ProbeExec::CoProcess) (§5): the CPUs
    /// in `cpus` run the pipeline prefix (every operator before the final
    /// probe) and co-partition the stream against the final probe's
    /// oversized table; the GPUs in `gpus` each receive co-partition
    /// pairs over their own links for single-pass radix joins. The
    /// decomposition mirrors `hape_join::coprocess_join` term by term —
    /// fanout planning included, via the shared
    /// [`hape_join::plan_cpu_bits`] — so the optimizer's estimate and the
    /// engine's execution agree about the hardware by construction.
    ///
    /// Returns `Ok(None)` when the stage has no probe, a subset side is
    /// empty, or no legal co-partitioning fanout exists (the CPU's
    /// multi-pass bound) — the candidate simply does not form.
    pub fn coprocess_cost(
        &self,
        est: &PipelineEstimate,
        cpus: &[DeviceId],
        gpus: &[DeviceId],
    ) -> Result<Option<StageCost>, EngineError> {
        let Some(big) = est.probes.last() else {
            return Ok(None);
        };
        if cpus.is_empty() || gpus.is_empty() {
            return Ok(None);
        }
        // The §5 co-partition inputs are (key, row-index) pairs: 8 bytes
        // per tuple on each side, regardless of payload width.
        let s_rows = big.rows.max(1.0);
        let r_rows = big.ht_rows.max(1.0);
        let s_bytes = (s_rows * 8.0) as u64;
        let r_bytes = (r_rows * 8.0) as u64;

        // Per-GPU budgets, link and device bandwidths from each device's
        // own spec.
        let mut lanes: Vec<(u64, f64, f64, f64)> = Vec::new(); // (budget, link bw, dram bw, fixed s)
        for &d in gpus {
            let DeviceId::Gpu(g) = d else { continue };
            let (spec, link) = self.gpu_spec(g)?;
            lanes.push((
                hape_join::gpu_budget(spec.dram_capacity),
                link.bw,
                spec.dram_bw,
                link.latency + spec.launch_overhead_ns / 1e9,
            ));
        }
        let min_budget = lanes.iter().map(|l| l.0).min().unwrap_or(0);
        let max_budget = lanes.iter().map(|l| l.0).max().unwrap_or(0);
        if max_budget == 0 {
            return Ok(None);
        }
        let first_socket = cpus.iter().find_map(|d| match d {
            DeviceId::Cpu(s) => Some(*s),
            DeviceId::Gpu(_) => None,
        });
        let Some(first_socket) = first_socket else { return Ok(None) };
        let cpu0 = self.cpu_spec(first_socket)?;

        // Fanout planning, shared with the executing join: prefer the
        // fanout at which a pair fits every GPU, fall back to the largest
        // budget within the CPU's multi-pass bound.
        let (bits, planned_budget) =
            match hape_join::plan_cpu_bits(r_bytes, s_bytes, min_budget, cpu0) {
                Ok(b) => (b, min_budget),
                Err(_) => match hape_join::plan_cpu_bits(r_bytes, s_bytes, max_budget, cpu0) {
                    Ok(b) => (b, max_budget),
                    Err(_) => return Ok(None),
                },
            };
        let per_partition_bytes = (2 * (r_bytes + s_bytes)) >> bits;

        // Only GPUs a planned co-partition actually fits receive work —
        // the executing join skips the rest, so the estimate's aggregate
        // bandwidths must too (a tiny second GPU must not halve the
        // estimated pass time it will never serve).
        let mut link_bw = 0.0f64;
        let mut gpu_bw = 0.0f64;
        let mut fixed_seconds = 0.0f64;
        let mut eligible = 0usize;
        for &(budget, lbw, dbw, fixed) in &lanes {
            if per_partition_bytes > budget {
                continue;
            }
            link_bw += lbw;
            gpu_bw += dbw;
            fixed_seconds = fixed_seconds.max(fixed);
            eligible += 1;
        }
        if eligible == 0 {
            return Ok(None);
        }

        // CPU prefix: the stream with every probe but the last, priced on
        // the CPU subset exactly like an ordinary CPU-only stream stage.
        let prefix = PipelineEstimate {
            probes: est.probes[..est.probes.len() - 1].to_vec(),
            ..est.clone()
        };
        let mut rates = 0.0f64;
        let mut workers = 0usize;
        for &d in cpus {
            let DeviceId::Cpu(s) = d else { continue };
            rates += 1.0 / self.cpu_ns_per_byte(s, &prefix)?;
            workers += self.cpu_spec(s)?.cores;
        }
        let prefix_seconds = est.in_bytes / rates / 1e9;

        // Co-partition passes, mirroring coprocess_join: both sides, each
        // pass near DRAM bandwidth, spread over all workers.
        let n_sockets = cpus.iter().filter(|d| !d.is_gpu()).count().max(1);
        let per_socket = (workers / n_sockets).max(1);
        let model = CpuCostModel::new(cpu0.clone(), per_socket.min(cpu0.cores));
        let max_pass_bits = cpu0.max_partition_fanout().trailing_zeros().max(1);
        let mut t_cpu = hape_sim::SimTime::ZERO;
        let mut rem = bits;
        while rem > 0 {
            let b = rem.min(max_pass_bits);
            t_cpu += model.partition_pass(r_rows as u64, 8, 1 << b);
            t_cpu += model.partition_pass(s_rows as u64, 8, 1 << b);
            rem -= b;
        }
        let cpu_partition_seconds = t_cpu.as_secs() / (workers.max(1) as f64 * 0.92);

        // Single pass over PCIe, pipelined against the in-GPU radix joins
        // (partition-continue + build + probe ≈ 4 device-memory trips),
        // plus the per-co-partition fixed costs amortised over the lanes.
        let pass_bytes = (r_bytes + s_bytes) as f64;
        let transfer = pass_bytes / link_bw;
        let kernel = 4.0 * pass_bytes / gpu_bw;
        let co_partitions = (1u64 << bits) as f64;
        let gpu_pass_seconds =
            transfer.max(kernel) + co_partitions * fixed_seconds / eligible as f64;

        // The final aggregation folds the match pairs CPU-side (the pair
        // indices are tiny against the co-partition traffic; the executed
        // path charges their consumption in the post-join packet loop,
        // which this term mirrors).
        let matches = s_rows * JOIN_MATCH_RATE;
        let agg_seconds = model.random_accesses(matches as u64, 1 << 16).as_secs()
            / (workers.max(1) as f64 * 0.9);

        let mut devices = cpus.to_vec();
        devices.extend_from_slice(gpus);
        Ok(Some(StageCost {
            devices,
            stream_seconds: prefix_seconds + agg_seconds,
            broadcast_seconds: 0.0,
            d2h_seconds: 0.0,
            ht_bytes: big.ht_bytes,
            gpu_required: per_partition_bytes,
            gpu_capacity: Some(planned_budget),
            coprocess: Some(CoprocessCost {
                ht: big.ht.clone(),
                cpu_partition_seconds,
                gpu_pass_seconds,
                cpu_bits: bits,
                per_partition_bytes,
            }),
        }))
    }

    /// Effective processing cost of one input byte on a CPU socket, in
    /// nanoseconds, all cores active: sequential scan at the socket's
    /// bandwidth, plus the latency-bound hash probes (cache-blend model,
    /// spread over the cores).
    fn cpu_ns_per_byte(
        &self,
        socket: usize,
        est: &PipelineEstimate,
    ) -> Result<f64, EngineError> {
        let spec = self.cpu_spec(socket)?;
        let model = CpuCostModel::new(spec.clone(), spec.cores);
        let cores = spec.cores as f64;
        let mut ns = 1e9 / spec.socket_scan_bw();
        for probe in &est.probes {
            let per_row = PROBE_ACCESSES * model.random_access_ns(probe.ht_bytes)
                + PROBE_OPS / (spec.clock_hz * spec.ipc) * 1e9;
            ns += (probe.rows / est.in_bytes) * per_row / cores;
        }
        if est.stateful_rows > 0.0 {
            // One worker scans sorted user runs; the socket spreads packets
            // across its cores, so aggregate the single-worker time the same
            // way the probe term does.
            let t = hape_ops::stateful::cpu_cost(
                est.stateful_rows as u64,
                est.stateful_users as u64,
                est.stateful_state_bytes as u64,
                est.stateful_ops_per_row,
                &model,
            );
            ns += t.as_ns() / est.in_bytes / cores;
        }
        Ok(ns)
    }

    /// Effective processing cost of one input byte on a GPU: the maximum
    /// of the PCIe transfer and the kernel-side work (transfers pipeline
    /// against kernels), plus per-packet fixed costs (DMA setup, kernel
    /// launch) amortised over the packet.
    fn gpu_ns_per_byte(
        &self,
        gpu: usize,
        est: &PipelineEstimate,
        packet_bytes: f64,
    ) -> Result<f64, EngineError> {
        let (spec, link) = self.gpu_spec(gpu)?;
        let link_ns = 1e9 / link.bw + link.latency * 1e9 / packet_bytes;
        let mut kernel_ns = 1e9 / spec.dram_bw + spec.launch_overhead_ns / packet_bytes;
        for probe in &est.probes {
            kernel_ns += (probe.rows / est.in_bytes)
                * PROBE_ACCESSES
                * spec.random_access_ns(probe.ht_bytes);
        }
        if est.stateful_rows > 0.0 {
            // The per-user dependency chain serialises the warp: every event
            // pays the uncoalesced random-access latency without the usual
            // thousands-of-threads overlap (§2.1) — the paper's random-access
            // term, unamortised.
            kernel_ns += (est.stateful_rows / est.in_bytes)
                * spec.random_access_ns((est.stateful_state_bytes as u64).max(64))
                * hape_ops::stateful::GPU_SEQ_CHAIN_FACTOR;
        }
        Ok(link_ns.max(kernel_ns))
    }

    fn cpu_spec(&self, socket: usize) -> Result<&hape_sim::CpuSpec, EngineError> {
        self.server
            .cpus
            .get(socket)
            .ok_or_else(|| EngineError::DeviceNotPresent { device: format!("cpu{socket}") })
    }

    fn gpu_spec(
        &self,
        gpu: usize,
    ) -> Result<(&hape_sim::GpuSpec, &hape_sim::interconnect::Link), EngineError> {
        self.server
            .gpus
            .get(gpu)
            .zip(self.server.pcie.get(gpu))
            .ok_or_else(|| EngineError::DeviceNotPresent { device: format!("gpu{gpu}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinAlgo;
    use hape_ops::{AggFunc, AggSpec, Expr};
    use hape_storage::datagen::gen_key_fk_table;

    fn setup() -> (Catalog, Server) {
        let mut catalog = Catalog::new();
        catalog.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 1));
        catalog.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 2));
        (catalog, Server::paper_testbed())
    }

    fn join_pipeline() -> Pipeline {
        Pipeline::scan("fact")
            .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]))
    }

    fn dim_estimates(model: &CostModel) -> HtEstimates {
        let est = model.estimate_pipeline(&Pipeline::scan("dim"), &HtEstimates::new()).unwrap();
        let mut hts = HtEstimates::new();
        hts.insert("dim_ht".into(), est.table_estimate());
        hts
    }

    #[test]
    fn scan_statistics_are_exact_and_filters_reduce() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let p = Pipeline::scan("fact").filter(Expr::lt(Expr::col(0), Expr::LitI32(5)));
        let est = model.estimate_pipeline(&p, &HtEstimates::new()).unwrap();
        assert_eq!(est.in_rows, (1 << 18) as f64);
        assert_eq!(est.in_bytes, catalog.expect("fact").bytes() as f64);
        assert_eq!(est.out_rows, est.in_rows * FILTER_SELECTIVITY);
    }

    #[test]
    fn ht_estimate_mirrors_chained_layout() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let est = model.estimate_pipeline(&Pipeline::scan("dim"), &HtEstimates::new()).unwrap();
        let ht = est.table_estimate();
        assert_eq!(ht.rows, (1 << 12) as f64);
        // heads (2^12) + next (2^12) pointers plus the payload batch.
        let chained = ((1u64 << 12) + (1 << 12)) * 4;
        assert_eq!(ht.bytes, chained + catalog.expect("dim").bytes());
    }

    #[test]
    fn unbuilt_probe_is_a_typed_error() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let err = model.estimate_pipeline(&join_pipeline(), &HtEstimates::new()).unwrap_err();
        assert!(matches!(err, EngineError::HashTableNotBuilt { .. }));
    }

    fn estimate(model: &CostModel, p: &Pipeline, hts: &HtEstimates) -> PipelineEstimate {
        model.estimate_pipeline(p, hts).unwrap()
    }

    #[test]
    fn more_devices_stream_faster() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let hts = dim_estimates(&model);
        let est = estimate(&model, &join_pipeline(), &hts);
        let cpu1 = model.stage_cost(&est, &[DeviceId::Cpu(0)], false).unwrap();
        let cpus =
            model.stage_cost(&est, &[DeviceId::Cpu(0), DeviceId::Cpu(1)], false).unwrap();
        let all = model.stage_cost(&est, &server.devices(), false).unwrap();
        assert!(cpus.stream_seconds < cpu1.stream_seconds);
        assert!(all.stream_seconds < cpus.stream_seconds);
    }

    #[test]
    fn gpu_subsets_charge_broadcast_and_capacity() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let hts = dim_estimates(&model);
        let est = estimate(&model, &join_pipeline(), &hts);
        let cpu = model.stage_cost(&est, &[DeviceId::Cpu(0)], false).unwrap();
        assert_eq!(cpu.broadcast_seconds, 0.0);
        assert!(cpu.gpu_capacity.is_none());
        assert!(cpu.fits_gpu_memory());
        let gpu = model.stage_cost(&est, &[DeviceId::Gpu(0)], false).unwrap();
        assert!(gpu.broadcast_seconds > 0.0);
        assert_eq!(gpu.ht_bytes, hts["dim_ht"].bytes);
        assert_eq!(
            gpu.gpu_required,
            (hts["dim_ht"].bytes as f64 * GPU_HT_WORKING_FACTOR) as u64
        );
        assert!(gpu.fits_gpu_memory(), "8 GiB fits a 4K-row table");
    }

    #[test]
    fn duplicate_probes_of_one_table_broadcast_it_once() {
        // Memoised build sides let a pipeline probe the same table at two
        // sites; the broadcast footprint and capacity requirement must
        // count the table once (it lives in device memory once).
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let hts = dim_estimates(&model);
        let twice = Pipeline::scan("fact")
            .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
            .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
            .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))]));
        let est = estimate(&model, &twice, &hts);
        assert_eq!(est.probes.len(), 2, "probe work is charged per site");
        let gpu = model.stage_cost(&est, &[DeviceId::Gpu(0)], false).unwrap();
        assert_eq!(gpu.ht_bytes, hts["dim_ht"].bytes, "broadcast counted once");
        assert_eq!(
            gpu.gpu_required,
            (hts["dim_ht"].bytes as f64 * GPU_HT_WORKING_FACTOR) as u64
        );
    }

    #[test]
    fn capacity_check_fails_on_scaled_down_gpu() {
        let (catalog, _) = setup();
        let server = Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0);
        let model = CostModel::new(&server, &catalog);
        let hts = dim_estimates(&model);
        let est = estimate(&model, &join_pipeline(), &hts);
        let cost = model.stage_cost(&est, &[DeviceId::Gpu(0)], false).unwrap();
        assert!(!cost.fits_gpu_memory(), "{cost:?}");
    }

    #[test]
    fn build_output_on_gpu_pays_the_return_trip() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let est = estimate(&model, &Pipeline::scan("dim"), &HtEstimates::new());
        let on_cpu = model.stage_cost(&est, &[DeviceId::Cpu(0)], true).unwrap();
        let on_gpu = model.stage_cost(&est, &[DeviceId::Gpu(0)], true).unwrap();
        assert_eq!(on_cpu.d2h_seconds, 0.0);
        assert!(on_gpu.d2h_seconds > 0.0);
    }

    #[test]
    fn absent_device_is_typed() {
        let (catalog, server) = setup();
        let model = CostModel::new(&server, &catalog);
        let est = estimate(&model, &Pipeline::scan("dim"), &HtEstimates::new());
        let err = model.stage_cost(&est, &[DeviceId::Gpu(7)], false).unwrap_err();
        assert!(matches!(err, EngineError::DeviceNotPresent { .. }));
    }
}
