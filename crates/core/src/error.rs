//! Typed errors for plan construction, placement and execution.
//!
//! Everything that can go wrong while *describing* a query surfaces as a
//! [`PlanError`] from the logical front-end ([`crate::query`]) or from
//! [`crate::plan::QueryPlan::try_new`]; everything that goes wrong while
//! *placing* or *running* one surfaces as an [`EngineError`] from the
//! placement pass ([`mod@crate::place`]) or the engine interpreter. The
//! crate-level [`HapeError`] unifies the two for callers (the
//! [`crate::session::Session`] front door returns it), so `?` works across
//! the whole build→lower→place→execute path without `unwrap`s or panics.

/// Why a logical query could not be built or lowered, or why a physical
/// plan failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A scanned or joined table is not in the catalog.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// A logical query was lowered before `.scan(..)` gave it a source.
    MissingScan {
        /// The query name.
        query: String,
    },
    /// A column reference did not resolve against the visible schema.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
        /// Where resolution was attempted (table or pipeline position).
        context: String,
    },
    /// An expression or column has the wrong type for its position.
    TypeMismatch {
        /// Where the mismatch was found.
        context: String,
        /// What the position requires.
        expected: &'static str,
        /// What the expression/column actually is.
        found: String,
    },
    /// A string literal was compared against a non-dictionary column.
    StringComparedToNonString {
        /// The literal.
        literal: String,
        /// Where the comparison appears.
        context: String,
    },
    /// A pipeline probes a hash table no earlier stage built.
    ProbeBeforeBuild {
        /// The unbuilt table name.
        table: String,
    },
    /// A build stage's pipeline ends in an aggregation.
    BuildWithAggregate {
        /// The offending build stage.
        stage: String,
    },
    /// A stream stage's pipeline (or a logical query being lowered for
    /// execution) has no terminal aggregation.
    StreamWithoutAggregate {
        /// The plan or query name.
        name: String,
    },
    /// A plan must have exactly one stream stage.
    NotExactlyOneStream {
        /// The plan name.
        plan: String,
        /// How many stream stages it has.
        streams: usize,
    },
    /// More group-by columns than the execution layer supports.
    TooManyGroupColumns {
        /// Requested group-by arity.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A `select` projection produced no output columns.
    EmptySelect {
        /// The query whose select is empty.
        query: String,
    },
    /// A stateful per-user aggregate appears after an operator that
    /// reshapes rows (projection, join probe, or another stateful
    /// aggregate). The engine aligns packet boundaries on the aggregate's
    /// user column in *source* order; only filters preserve that contract.
    StatefulAfterReshape {
        /// The plan or query name.
        name: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable { table } => {
                write!(f, "unknown table {table:?}")
            }
            PlanError::MissingScan { query } => {
                write!(f, "query {query:?} has no scan source")
            }
            PlanError::UnknownColumn { column, context } => {
                write!(f, "unknown column {column:?} in {context}")
            }
            PlanError::TypeMismatch { context, expected, found } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            PlanError::StringComparedToNonString { literal, context } => {
                write!(
                    f,
                    "string literal {literal:?} compared to a non-string column in {context}"
                )
            }
            PlanError::ProbeBeforeBuild { table } => {
                write!(f, "hash table {table:?} probed before built")
            }
            PlanError::BuildWithAggregate { stage } => {
                write!(f, "build stage {stage:?} must not aggregate")
            }
            PlanError::StreamWithoutAggregate { name } => {
                write!(f, "stream pipeline of {name:?} must end in an aggregation")
            }
            PlanError::NotExactlyOneStream { plan, streams } => {
                write!(f, "plan {plan:?} needs exactly one stream stage (got {streams})")
            }
            PlanError::TooManyGroupColumns { got, max } => {
                write!(f, "{got} group-by columns requested, at most {max} supported")
            }
            PlanError::EmptySelect { query } => {
                write!(f, "select in query {query:?} projects no columns")
            }
            PlanError::StatefulAfterReshape { name } => {
                write!(
                    f,
                    "stateful aggregate in {name:?} must come before any projection, \
                     join or other stateful aggregate (only filters may precede it)"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Why a (structurally valid) plan could not be placed or executed.
#[derive(Debug)]
pub enum EngineError {
    /// The plan's hash tables exceed a device's memory (with working
    /// space) — the paper's Q9 GPU-only failure (§6.4).
    GpuMemoryExceeded {
        /// Bytes the tables (plus working space) require.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A table referenced by the plan is missing from the catalog.
    MissingTable(String),
    /// The plan failed structural validation before execution started.
    InvalidPlan(PlanError),
    /// The placement selects a device class the server does not have.
    NoWorkers {
        /// The placement description.
        placement: String,
    },
    /// A pipeline probes a hash table that no earlier placed stage built —
    /// only reachable through hand-assembled [`crate::place::PlacedPlan`]s
    /// that bypass plan validation.
    HashTableNotBuilt {
        /// The missing hash-table name.
        table: String,
    },
    /// A placed segment targets a device the engine's server does not
    /// have (e.g. a plan placed against a larger topology).
    DeviceNotPresent {
        /// The absent device (`cpu<n>` / `gpu<n>`).
        device: String,
    },
    /// `Placement::Auto` was handed to the trait-driven placement pass
    /// directly. Auto placement needs catalog statistics and must go
    /// through the cost-based optimizer
    /// ([`crate::optimize::optimize`]) — the `Session` and `Engine`
    /// front doors do this automatically.
    AutoWithoutOptimizer,
    /// [`crate::place::place_on`] was handed a device-subset list whose
    /// length does not match the plan's stage count.
    SubsetCountMismatch {
        /// Stages in the plan.
        stages: usize,
        /// Subsets supplied.
        subsets: usize,
    },
    /// A co-processing stage found a co-partition too large for every
    /// selected GPU even at maximum fanout — the skew case the paper's §5
    /// single-pass guarantee excludes.
    OversizedCoPartition {
        /// The offending co-partition index.
        partition: usize,
        /// Its size in bytes (both sides + working space).
        bytes: u64,
        /// The largest GPU budget it had to fit in.
        budget: u64,
    },
    /// A co-processing stage needs a higher CPU co-partitioning fanout
    /// than the CPU spec can produce
    /// ([`hape_join::coprocess::COPROCESS_MAX_PASSES`] passes of
    /// `CpuSpec::max_partition_fanout` each).
    CoPartitionFanoutExceeded {
        /// Radix bits the GPU budget demands.
        required_bits: u32,
        /// Radix bits the CPU can produce.
        max_bits: u32,
    },
    /// A placed co-processing stage does not end in a probe of its named
    /// hash table — only reachable through hand-assembled
    /// [`crate::place::PlacedPlan`]s.
    InvalidCoProcessStage {
        /// The hash table the stage was supposed to co-process.
        table: String,
    },
    /// A runtime configuration knob (e.g. the `HAPE_THREADS` environment
    /// variable) holds a value the engine refuses to guess around.
    InvalidConfig {
        /// What is wrong, and with which knob.
        what: String,
    },
    /// A device the plan depends on was lost permanently (injected
    /// `GpuFailed` or quarantined by the fleet health registry) and the
    /// stage cannot run on it.
    DeviceFailed {
        /// The lost device (`gpu<n>`).
        device: String,
    },
    /// A transient transfer fault outlived the
    /// [`crate::fault::RetryPolicy`]'s bounded retry budget.
    TransferRetriesExhausted {
        /// The device whose link kept faulting.
        device: String,
        /// Retry attempts the policy allowed (all priced and spent).
        attempts: u32,
    },
    /// Mid-query re-placement on the surviving fleet failed: no valid
    /// degraded plan exists (or the replan budget ran out).
    RecoveryFailed {
        /// Why the degraded topology admits no plan.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::GpuMemoryExceeded { required, capacity } => {
                write!(f, "hash tables require {required} bytes but GPU memory is {capacity}")
            }
            EngineError::MissingTable(t) => write!(f, "missing table {t:?}"),
            EngineError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            EngineError::NoWorkers { placement } => {
                write!(f, "placement {placement} selects no available workers")
            }
            EngineError::HashTableNotBuilt { table } => {
                write!(f, "hash table {table:?} was never built by an earlier stage")
            }
            EngineError::DeviceNotPresent { device } => {
                write!(f, "placed segment targets device {device} absent from the server")
            }
            EngineError::AutoWithoutOptimizer => {
                write!(
                    f,
                    "Placement::Auto requires the cost-based optimizer \
                     (optimize::optimize), not the bare placement pass"
                )
            }
            EngineError::SubsetCountMismatch { stages, subsets } => {
                write!(f, "plan has {stages} stages but {subsets} device subsets were supplied")
            }
            EngineError::OversizedCoPartition { partition, bytes, budget } => write!(
                f,
                "co-partition {partition} needs {bytes} bytes > GPU budget {budget} \
                 (skewed key?)"
            ),
            EngineError::CoPartitionFanoutExceeded { required_bits, max_bits } => write!(
                f,
                "co-partitioning needs 2^{required_bits} fanout but the CPU tops out \
                 at 2^{max_bits}"
            ),
            EngineError::InvalidCoProcessStage { table } => {
                write!(f, "co-processing stage must end in a probe of hash table {table:?}")
            }
            EngineError::InvalidConfig { what } => {
                write!(f, "invalid runtime configuration: {what}")
            }
            EngineError::DeviceFailed { device } => {
                write!(f, "device {device} failed permanently and was quarantined")
            }
            EngineError::TransferRetriesExhausted { device, attempts } => {
                write!(f, "transfer to {device} still failing after {attempts} priced retries")
            }
            EngineError::RecoveryFailed { reason } => {
                write!(f, "degraded re-placement failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hape_join::coprocess::CoprocessError> for EngineError {
    /// Surface a co-processing join failure as the engine's typed
    /// vocabulary: capacity/skew failures keep their detail, device-shape
    /// failures map onto the existing worker/device variants.
    fn from(e: hape_join::coprocess::CoprocessError) -> Self {
        use hape_join::coprocess::CoprocessError as CE;
        match e {
            CE::OversizedCoPartition { partition, bytes, budget } => {
                EngineError::OversizedCoPartition { partition, bytes, budget }
            }
            CE::NoGpus => {
                EngineError::NoWorkers { placement: "co-process (no GPUs)".to_string() }
            }
            CE::NoCpus => {
                EngineError::NoWorkers { placement: "co-process (no CPUs)".to_string() }
            }
            CE::UnknownGpu { gpu } => {
                EngineError::DeviceNotPresent { device: format!("gpu{gpu}") }
            }
            CE::MissingLink { gpu } => {
                EngineError::DeviceNotPresent { device: format!("pcie{gpu}") }
            }
            CE::FanoutExceeded { required_bits, max_bits } => {
                EngineError::CoPartitionFanoutExceeded { required_bits, max_bits }
            }
        }
    }
}

/// The crate-level error: a plan-time, verification-time or
/// execution-time failure.
#[derive(Debug)]
pub enum HapeError {
    /// The query could not be built or lowered.
    Plan(PlanError),
    /// The engine could not place or execute the (valid) plan.
    Engine(EngineError),
    /// The static plan verifier ([`mod@crate::verify`]) found diagnostics.
    Verify(crate::verify::VerifyError),
}

impl std::fmt::Display for HapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HapeError::Plan(e) => write!(f, "plan error: {e}"),
            HapeError::Engine(e) => write!(f, "engine error: {e}"),
            HapeError::Verify(e) => write!(f, "verify error: {e}"),
        }
    }
}

impl std::error::Error for HapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HapeError::Plan(e) => Some(e),
            HapeError::Engine(e) => Some(e),
            HapeError::Verify(e) => Some(e),
        }
    }
}

impl From<PlanError> for HapeError {
    fn from(e: PlanError) -> Self {
        HapeError::Plan(e)
    }
}

impl From<EngineError> for HapeError {
    fn from(e: EngineError) -> Self {
        HapeError::Engine(e)
    }
}

impl From<crate::verify::VerifyError> for HapeError {
    fn from(e: crate::verify::VerifyError) -> Self {
        HapeError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PlanError::UnknownColumn { column: "l_foo".into(), context: "lineitem".into() };
        assert!(e.to_string().contains("l_foo"));
        assert!(e.to_string().contains("lineitem"));
        let e = PlanError::ProbeBeforeBuild { table: "ghost".into() };
        assert!(e.to_string().contains("probed before built"));
        let h: HapeError = e.into();
        assert!(h.to_string().contains("plan error"));
        let h: HapeError = EngineError::MissingTable("fact".into()).into();
        assert!(h.to_string().contains("engine error"));
        assert!(std::error::Error::source(&h).is_some());
        let e = EngineError::HashTableNotBuilt { table: "ht".into() };
        assert!(e.to_string().contains("never built"));
        let e = EngineError::DeviceNotPresent { device: "gpu7".into() };
        assert!(e.to_string().contains("gpu7"));
        let e = EngineError::InvalidConfig { what: "HAPE_THREADS=0".into() };
        assert!(e.to_string().contains("HAPE_THREADS=0"));
        let e = EngineError::DeviceFailed { device: "gpu1".into() };
        assert!(e.to_string().contains("gpu1"));
        assert!(e.to_string().contains("quarantined"));
        let e = EngineError::TransferRetriesExhausted { device: "gpu0".into(), attempts: 3 };
        assert!(e.to_string().contains("3 priced retries"));
        let e = EngineError::RecoveryFailed { reason: "no surviving workers".into() };
        assert!(e.to_string().contains("no surviving workers"));
    }
}
