//! Typed errors for plan construction, lowering and execution.
//!
//! Everything that can go wrong while *describing* a query surfaces as a
//! [`PlanError`] from the logical front-end ([`crate::query`]) or from
//! [`crate::plan::QueryPlan::try_new`]; everything that goes wrong while
//! *running* one surfaces as an [`crate::engine::EngineError`]. The
//! crate-level [`HapeError`] unifies the two for callers (the
//! [`crate::session::Session`] front door returns it), so `?` works across
//! the whole build→lower→execute path without `unwrap`s or panics.

use crate::engine::EngineError;

/// Why a logical query could not be built or lowered, or why a physical
/// plan failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A scanned or joined table is not in the catalog.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// A logical query was lowered before `.scan(..)` gave it a source.
    MissingScan {
        /// The query name.
        query: String,
    },
    /// A column reference did not resolve against the visible schema.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
        /// Where resolution was attempted (table or pipeline position).
        context: String,
    },
    /// An expression or column has the wrong type for its position.
    TypeMismatch {
        /// Where the mismatch was found.
        context: String,
        /// What the position requires.
        expected: &'static str,
        /// What the expression/column actually is.
        found: String,
    },
    /// A string literal was compared against a non-dictionary column.
    StringComparedToNonString {
        /// The literal.
        literal: String,
        /// Where the comparison appears.
        context: String,
    },
    /// A pipeline probes a hash table no earlier stage built.
    ProbeBeforeBuild {
        /// The unbuilt table name.
        table: String,
    },
    /// A build stage's pipeline ends in an aggregation.
    BuildWithAggregate {
        /// The offending build stage.
        stage: String,
    },
    /// A stream stage's pipeline (or a logical query being lowered for
    /// execution) has no terminal aggregation.
    StreamWithoutAggregate {
        /// The plan or query name.
        name: String,
    },
    /// A plan must have exactly one stream stage.
    NotExactlyOneStream {
        /// The plan name.
        plan: String,
        /// How many stream stages it has.
        streams: usize,
    },
    /// More group-by columns than the execution layer supports.
    TooManyGroupColumns {
        /// Requested group-by arity.
        got: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownTable { table } => {
                write!(f, "unknown table {table:?}")
            }
            PlanError::MissingScan { query } => {
                write!(f, "query {query:?} has no scan source")
            }
            PlanError::UnknownColumn { column, context } => {
                write!(f, "unknown column {column:?} in {context}")
            }
            PlanError::TypeMismatch { context, expected, found } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            PlanError::StringComparedToNonString { literal, context } => {
                write!(
                    f,
                    "string literal {literal:?} compared to a non-string column in {context}"
                )
            }
            PlanError::ProbeBeforeBuild { table } => {
                write!(f, "hash table {table:?} probed before built")
            }
            PlanError::BuildWithAggregate { stage } => {
                write!(f, "build stage {stage:?} must not aggregate")
            }
            PlanError::StreamWithoutAggregate { name } => {
                write!(f, "stream pipeline of {name:?} must end in an aggregation")
            }
            PlanError::NotExactlyOneStream { plan, streams } => {
                write!(f, "plan {plan:?} needs exactly one stream stage (got {streams})")
            }
            PlanError::TooManyGroupColumns { got, max } => {
                write!(f, "{got} group-by columns requested, at most {max} supported")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The crate-level error: a plan-time or an execution-time failure.
#[derive(Debug)]
pub enum HapeError {
    /// The query could not be built or lowered.
    Plan(PlanError),
    /// The engine could not execute the (valid) plan.
    Engine(EngineError),
}

impl std::fmt::Display for HapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HapeError::Plan(e) => write!(f, "plan error: {e}"),
            HapeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for HapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HapeError::Plan(e) => Some(e),
            HapeError::Engine(e) => Some(e),
        }
    }
}

impl From<PlanError> for HapeError {
    fn from(e: PlanError) -> Self {
        HapeError::Plan(e)
    }
}

impl From<EngineError> for HapeError {
    fn from(e: EngineError) -> Self {
        HapeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PlanError::UnknownColumn { column: "l_foo".into(), context: "lineitem".into() };
        assert!(e.to_string().contains("l_foo"));
        assert!(e.to_string().contains("lineitem"));
        let e = PlanError::ProbeBeforeBuild { table: "ghost".into() };
        assert!(e.to_string().contains("probed before built"));
        let h: HapeError = e.into();
        assert!(h.to_string().contains("plan error"));
        let h: HapeError = EngineError::MissingTable("fact".into()).into();
        assert!(h.to_string().contains("engine error"));
        assert!(std::error::Error::source(&h).is_some());
    }
}
