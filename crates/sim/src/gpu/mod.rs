//! GPU simulation: SIMT kernel framework + memory-hierarchy model.
//!
//! Kernels are written in a *warp-synchronous* style against [`BlockCtx`]:
//! the kernel body runs once per thread block, performs its real work on
//! host-resident Rust slices, and reports every memory operation it performs
//! (global gathers/scatters with explicit addresses, scratchpad accesses with
//! bank words, streaming reads/writes, atomics, compute). The simulator turns
//! those reports into time:
//!
//! * [`Fidelity::Exact`] — per-warp address traces replayed through
//!   tag-array L1 (per SM, shared by co-resident blocks) and a device L2;
//!   reproduces over-fetch, pollution and capacity effects exactly.
//! * [`Fidelity::Analytic`] — closed-form residency blends by region size;
//!   used for bulk kernels over 100M+ tuples.
//!
//! Throughput model: within a block, compute / scratchpad / memory-issue
//! lanes overlap (block cost = max of the three); blocks on the same SM share
//! its issue throughput (per-SM cost = sum over blocks); the device-wide DRAM
//! bandwidth bound applies across SMs (kernel cost = max(per-SM max, DRAM
//! bytes / bandwidth)). This is the standard analytical GPU roofline and is
//! what makes scan kernels bandwidth-bound and probe kernels issue- or
//! latency-bound, as in the paper's Figures 5 and 6.

mod coalesce;
mod kernel;
mod scratchpad;

pub use coalesce::{distinct_chunks, DistinctChunks};
pub use kernel::{BlockCtx, GpuSim, KernelReport, KernelStats, LaunchConfig};
pub use scratchpad::{atomic_cycles, conflict_cycles};

use crate::spec::GpuSpec;

/// Memory-model fidelity for a [`GpuSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Closed-form residency/bandwidth formulas (fast, for bulk kernels).
    Analytic,
    /// Tag-array cache simulation over per-warp address traces.
    Exact,
}

/// A contiguous region of simulated GPU device memory.
///
/// Regions carry a virtual base address (so traces from different buffers do
/// not alias in the cache simulators) and a size (used by the analytic model
/// to derive residency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Virtual base address, line-aligned.
    pub base: u64,
    /// Region size in bytes.
    pub bytes: u64,
}

impl Region {
    /// A region at an explicit address (mostly for tests).
    pub fn at(base: u64, bytes: u64) -> Self {
        Region { base, bytes }
    }
}

/// Error returned when a GPU allocation does not fit device memory.
///
/// This is a *load-bearing* error in the reproduction: the paper's Figure 6
/// ends where tables stop fitting GPU memory, and Q9 cannot run GPU-only
/// because its hash tables exceed it (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGpuMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were still free.
    pub available: u64,
}

impl std::fmt::Display for OutOfGpuMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfGpuMemory {}

/// A buffer handed out by [`GpuMemPool::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuBuffer {
    /// The device-memory region backing the buffer.
    pub region: Region,
    id: u64,
}

impl GpuBuffer {
    /// The region backing this buffer.
    pub fn region(&self) -> Region {
        self.region
    }
}

/// Capacity-tracking device-memory allocator.
///
/// A simple bump allocator over a virtual address space; `free` returns
/// capacity but never reuses addresses, which keeps traces unambiguous.
#[derive(Debug)]
pub struct GpuMemPool {
    capacity: u64,
    used: u64,
    next_base: u64,
    next_id: u64,
}

impl GpuMemPool {
    /// Pool over `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        // Start away from zero so that a zero address is never valid.
        GpuMemPool { capacity, used: 0, next_base: 1 << 20, next_id: 0 }
    }

    /// Pool sized from a spec.
    pub fn for_spec(spec: &GpuSpec) -> Self {
        Self::new(spec.dram_capacity as u64)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocate `bytes`, line-aligned; fails if the pool is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Result<GpuBuffer, OutOfGpuMemory> {
        if bytes > self.available() {
            return Err(OutOfGpuMemory { requested: bytes, available: self.available() });
        }
        let aligned = bytes.div_ceil(128) * 128;
        let buf =
            GpuBuffer { region: Region { base: self.next_base, bytes }, id: self.next_id };
        self.next_base += aligned + 128;
        self.next_id += 1;
        self.used += bytes;
        Ok(buf)
    }

    /// Return a buffer's capacity to the pool.
    pub fn free(&mut self, buf: GpuBuffer) {
        debug_assert!(self.used >= buf.region.bytes);
        self.used = self.used.saturating_sub(buf.region.bytes);
    }

    /// Check whether `bytes` would fit without allocating.
    pub fn would_fit(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_capacity() {
        let mut pool = GpuMemPool::new(1 << 20);
        let a = pool.alloc(512 << 10).unwrap();
        assert_eq!(pool.used(), 512 << 10);
        assert!(pool.alloc(600 << 10).is_err());
        pool.free(a);
        assert_eq!(pool.used(), 0);
        assert!(pool.alloc(600 << 10).is_ok());
    }

    #[test]
    fn buffers_do_not_alias() {
        let mut pool = GpuMemPool::new(1 << 20);
        let a = pool.alloc(1000).unwrap();
        let b = pool.alloc(1000).unwrap();
        let a_end = a.region.base + a.region.bytes;
        assert!(b.region.base >= a_end, "regions alias");
        // Distinct cache lines.
        assert_ne!(a.region.base / 128, b.region.base / 128);
    }

    #[test]
    fn oom_error_reports_sizes() {
        let mut pool = GpuMemPool::new(100);
        let err = pool.alloc(200).unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.available, 100);
        assert!(err.to_string().contains("out of GPU memory"));
    }
}
