//! Warp-level memory coalescing analysis.
//!
//! A warp's 32 lanes issue one memory instruction together; the memory
//! system services one transaction per *distinct* line (or sector) touched.
//! Fully coalesced access (consecutive 4-byte lanes) touches one 128-byte
//! line; a random gather touches up to 32 — the over-fetch the paper's
//! partitioned algorithms are designed to avoid (§4.1).

/// Iterator over the distinct `chunk`-aligned addresses within one warp's
/// worth of byte addresses (at most 32), preserving first-touch order.
pub struct DistinctChunks<'a> {
    addrs: &'a [u64],
    chunk: u64,
    /// Chunk ids already seen (warp is ≤ 32 lanes, stack buffer suffices).
    seen: [u64; 32],
    n_seen: usize,
    i: usize,
}

impl<'a> Iterator for DistinctChunks<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.i < self.addrs.len() {
            let c = self.addrs[self.i] / self.chunk;
            self.i += 1;
            if !self.seen[..self.n_seen].contains(&c) {
                if self.n_seen < self.seen.len() {
                    self.seen[self.n_seen] = c;
                    self.n_seen += 1;
                }
                return Some(c);
            }
        }
        None
    }
}

/// Distinct `chunk`-sized units touched by up to one warp of byte addresses.
///
/// `addrs.len()` must be ≤ 32 (one warp); callers chunk longer slices.
pub fn distinct_chunks(addrs: &[u64], chunk: u64) -> DistinctChunks<'_> {
    debug_assert!(addrs.len() <= 32, "coalescing operates on one warp at a time");
    debug_assert!(chunk.is_power_of_two());
    DistinctChunks { addrs, chunk, seen: [u64::MAX; 32], n_seen: 0, i: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_is_one_line() {
        let addrs: Vec<u64> = (0..32u64).map(|i| 4096 + i * 4).collect();
        assert_eq!(distinct_chunks(&addrs, 128).count(), 1);
    }

    #[test]
    fn strided_8byte_access_spans_two_lines() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 8).collect();
        assert_eq!(distinct_chunks(&addrs, 128).count(), 2);
    }

    #[test]
    fn fully_random_is_32_lines() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
        assert_eq!(distinct_chunks(&addrs, 128).count(), 32);
    }

    #[test]
    fn duplicates_deduplicated_in_order() {
        let addrs = [0u64, 130, 4, 260, 129];
        let lines: Vec<u64> = distinct_chunks(&addrs, 128).collect();
        assert_eq!(lines, vec![0, 1, 2]);
    }

    #[test]
    fn partial_warp_ok() {
        let addrs = [1000u64];
        assert_eq!(distinct_chunks(&addrs, 128).count(), 1);
    }

    #[test]
    fn sector_granularity() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 8).collect();
        // 32 lanes x 8B = 256B = 8 sectors of 32B.
        assert_eq!(distinct_chunks(&addrs, 32).count(), 8);
    }
}
