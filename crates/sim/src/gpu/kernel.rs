//! SIMT kernel launch framework and cost accounting.

use crate::cache::SetAssocCache;
use crate::spec::GpuSpec;
use crate::time::SimTime;

use super::coalesce::distinct_chunks;
use super::scratchpad::{atomic_cycles, conflict_cycles};
use super::{Fidelity, Region};

/// Sector size for scattered global writes (GDDR write granularity).
const SECTOR: u64 = 32;

/// Kernel launch geometry.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Scratchpad bytes per block.
    pub smem_per_block: usize,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(grid: usize, block_threads: usize, smem_per_block: usize) -> Self {
        LaunchConfig { grid, block_threads, smem_per_block }
    }
}

/// Aggregate statistics of one kernel execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Bytes moved to/from device DRAM.
    pub dram_bytes: f64,
    /// L1 hits (exact mode only).
    pub l1_hits: u64,
    /// L1 misses (exact mode only).
    pub l1_misses: u64,
    /// L2 hits (exact mode only).
    pub l2_hits: u64,
    /// L2 misses (exact mode only).
    pub l2_misses: u64,
    /// Warp-level scratchpad operations issued.
    pub smem_ops: u64,
    /// Scratchpad cycles spent, including conflicts.
    pub smem_cycles: u64,
    /// Global memory transactions (lines/sectors) issued.
    pub global_transactions: u64,
    /// Warp instructions of compute issued.
    pub warp_instructions: u64,
    /// Thread blocks executed.
    pub blocks: u64,
}

/// Result of a kernel launch: the simulated time plus its statistics.
#[derive(Debug, Clone, Copy)]
pub struct KernelReport {
    /// Simulated kernel duration (including launch overhead).
    pub time: SimTime,
    /// The busiest SM's accumulated time.
    pub sm_time: SimTime,
    /// Device-level DRAM-bandwidth time.
    pub dram_time: SimTime,
    /// Execution statistics.
    pub stats: KernelStats,
}

/// What one warp memory operation recorded, for exact-mode replay.
#[derive(Debug, Clone, Copy)]
enum TraceOp {
    /// A read of one 128-byte line (probes L1 then L2).
    ReadLine(u64),
    /// A write of one 32-byte sector (probes L2 only; write-through L1).
    WriteSector(u64),
}

/// Per-block record produced by running the kernel body.
struct BlockRecord {
    compute_ns: f64,
    smem_ns: f64,
    /// Memory-issue time already settled (analytic mode).
    mem_ns: f64,
    dram_bytes: f64,
    trace: Vec<TraceOp>,
    stats: KernelStats,
}

/// Execution context handed to the kernel body, once per thread block.
///
/// The body performs its real work on host data and mirrors every memory
/// operation through these methods so the simulator can charge time. Slices
/// passed to the gather/scatter methods may be longer than a warp — they are
/// chunked into warps internally.
pub struct BlockCtx<'a> {
    /// Index of this block within the grid.
    pub block_idx: usize,
    /// Number of blocks in the grid.
    pub grid: usize,
    /// Threads per block.
    pub threads: usize,
    spec: &'a GpuSpec,
    fidelity: Fidelity,
    /// Concurrently resident blocks per SM for this launch.
    occupancy: usize,
    rec: BlockRecord,
}

impl<'a> BlockCtx<'a> {
    fn new(
        spec: &'a GpuSpec,
        fidelity: Fidelity,
        occupancy: usize,
        block_idx: usize,
        cfg: &LaunchConfig,
    ) -> Self {
        BlockCtx {
            block_idx,
            grid: cfg.grid,
            threads: cfg.block_threads,
            spec,
            fidelity,
            occupancy,
            rec: BlockRecord {
                compute_ns: 0.0,
                smem_ns: 0.0,
                mem_ns: 0.0,
                dram_bytes: 0.0,
                trace: Vec::new(),
                stats: KernelStats { blocks: 1, ..KernelStats::default() },
            },
        }
    }

    /// Number of warps in this block.
    pub fn warps(&self) -> usize {
        self.spec.warps_per_block(self.threads)
    }

    /// The device spec this block runs on.
    pub fn spec(&self) -> &GpuSpec {
        self.spec
    }

    /// Charge `n_items` of per-thread work at `ops` instructions each.
    ///
    /// The SM issues warp instructions at `lanes_per_sm / warp` per cycle.
    pub fn compute(&mut self, n_items: u64, ops: f64) {
        let warp_instrs = (n_items as f64 / self.spec.warp as f64) * ops;
        let issue_per_cycle = (self.spec.lanes_per_sm / self.spec.warp) as f64;
        self.rec.compute_ns += warp_instrs / issue_per_cycle * self.spec.cycle_ns();
        self.rec.stats.warp_instructions += warp_instrs as u64;
    }

    /// Warp-chunked scratchpad read/write at the given bank-word indices.
    pub fn smem_access(&mut self, words: &[u32]) {
        for warp in words.chunks(self.spec.warp) {
            let cycles = conflict_cycles(warp, self.spec.smem_banks);
            self.rec.smem_ns += cycles as f64 * self.spec.smem_cycle_ns;
            self.rec.stats.smem_ops += 1;
            self.rec.stats.smem_cycles += cycles as u64;
        }
    }

    /// Warp-chunked scratchpad atomic at the given bank-word indices.
    pub fn smem_atomic(&mut self, words: &[u32]) {
        for warp in words.chunks(self.spec.warp) {
            let cycles = atomic_cycles(warp, self.spec.smem_banks);
            self.rec.smem_ns += cycles as f64 * self.spec.atomic_ns;
            self.rec.stats.smem_ops += 1;
            self.rec.stats.smem_cycles += cycles as u64;
        }
    }

    /// Warp-chunked gather: each element reads `access_bytes` at
    /// `region.base + offset`. Charges one transaction per distinct line.
    pub fn global_read(&mut self, region: &Region, byte_offsets: &[u64], access_bytes: u32) {
        let line = self.spec.l1.line as u64;
        let mut scratch = [0u64; 32];
        for warp in byte_offsets.chunks(self.spec.warp) {
            let mut n = 0;
            for (slot, off) in scratch.iter_mut().zip(warp.iter()) {
                // An access may straddle a line; charge the first line (the
                // straddle fraction is negligible at 4–16B accesses).
                *slot = region.base + *off;
                n += 1;
            }
            self.read_lines(region, &scratch[..n], line, access_bytes);
        }
    }

    fn read_lines(&mut self, region: &Region, addrs: &[u64], line: u64, _access_bytes: u32) {
        match self.fidelity {
            Fidelity::Exact => {
                for l in distinct_chunks(addrs, line) {
                    self.rec.trace.push(TraceOp::ReadLine(l));
                    self.rec.stats.global_transactions += 1;
                }
            }
            Fidelity::Analytic => {
                let lines = distinct_chunks(addrs, line).count() as f64;
                self.rec.stats.global_transactions += lines as u64;
                let (f_l1, f_l2, f_dram) = self.residency(region.bytes);
                self.rec.mem_ns += lines * self.spec.l1_access_ns;
                self.rec.mem_ns += lines * (f_l2 + f_dram) * self.spec.l2_access_ns;
                self.rec.dram_bytes += lines * f_dram * line as f64;
                // Account approximate hit statistics for observability.
                self.rec.stats.l1_hits += (lines * f_l1) as u64;
                self.rec.stats.l1_misses += (lines * (f_l2 + f_dram)) as u64;
                self.rec.stats.l2_hits += (lines * f_l2) as u64;
                self.rec.stats.l2_misses += (lines * f_dram) as u64;
            }
        }
    }

    /// Warp-chunked scatter: each element writes `access_bytes` at
    /// `region.base + offset`. GPU L1 is write-through: sectors go to L2.
    pub fn global_write(&mut self, region: &Region, byte_offsets: &[u64], access_bytes: u32) {
        let mut scratch = [0u64; 32];
        for warp in byte_offsets.chunks(self.spec.warp) {
            let mut n = 0;
            for (slot, off) in scratch.iter_mut().zip(warp.iter()) {
                *slot = region.base + *off;
                n += 1;
            }
            let addrs = &scratch[..n];
            match self.fidelity {
                Fidelity::Exact => {
                    for s in distinct_chunks(addrs, SECTOR) {
                        self.rec.trace.push(TraceOp::WriteSector(s));
                        self.rec.stats.global_transactions += 1;
                    }
                }
                Fidelity::Analytic => {
                    let sectors = distinct_chunks(addrs, SECTOR).count() as f64;
                    self.rec.stats.global_transactions += sectors as u64;
                    let f_l2 = (self.spec.l2.size as f64 / region.bytes.max(1) as f64).min(1.0);
                    self.rec.mem_ns += sectors * self.spec.l1_access_ns;
                    self.rec.dram_bytes += sectors * (1.0 - f_l2) * SECTOR as f64;
                    let _ = access_bytes;
                }
            }
        }
    }

    /// Warp-chunked global atomic (e.g. linked-list tail bumps). Charged as
    /// an L2 transaction plus serialisation for same-address conflicts.
    pub fn global_atomic(&mut self, region: &Region, byte_offsets: &[u64]) {
        let mut scratch = [0u64; 32];
        for warp in byte_offsets.chunks(self.spec.warp) {
            let mut n = 0;
            let mut max_same = 1u32;
            for (slot, off) in scratch.iter_mut().zip(warp.iter()) {
                *slot = region.base + *off;
                n += 1;
            }
            // Same-address multiplicity within the warp.
            for i in 0..n {
                let mut c = 0u32;
                for j in 0..n {
                    if scratch[j] == scratch[i] {
                        c += 1;
                    }
                }
                max_same = max_same.max(c);
            }
            let lines = distinct_chunks(&scratch[..n], self.spec.l2.line as u64).count() as f64;
            self.rec.mem_ns +=
                lines * self.spec.l2_access_ns + max_same as f64 * self.spec.atomic_ns;
            self.rec.stats.global_transactions += lines as u64;
        }
    }

    /// Streaming (fully coalesced) read of `bytes` starting at `offset`
    /// within `region`. In exact mode the stream flows through L1, modelling
    /// the cache pollution the paper attributes to scanning co-partitions.
    pub fn global_read_stream(&mut self, region: &Region, offset: u64, bytes: u64) {
        let line = self.spec.l1.line as u64;
        let first = (region.base + offset) / line;
        let last = (region.base + offset + bytes.max(1) - 1) / line;
        let n_lines = last - first + 1;
        match self.fidelity {
            Fidelity::Exact => {
                for l in first..=last {
                    self.rec.trace.push(TraceOp::ReadLine(l));
                }
                self.rec.stats.global_transactions += n_lines;
            }
            Fidelity::Analytic => {
                self.rec.mem_ns += n_lines as f64 * self.spec.l1_access_ns;
                self.rec.dram_bytes += bytes as f64;
                self.rec.stats.global_transactions += n_lines;
                self.rec.stats.l1_misses += n_lines;
                self.rec.stats.l2_misses += n_lines;
            }
        }
    }

    /// Streaming (fully coalesced) write of `bytes`; bypasses caches.
    pub fn global_write_stream(&mut self, bytes: u64) {
        let line = self.spec.l1.line as u64;
        let n_lines = bytes.div_ceil(line);
        self.rec.mem_ns += n_lines as f64 * self.spec.l1_access_ns;
        self.rec.dram_bytes += bytes as f64;
        self.rec.stats.global_transactions += n_lines;
    }

    /// Analytic residency blend for a random access into `region_bytes`.
    ///
    /// L1 is shared by co-resident blocks, so its effective per-block size
    /// shrinks with occupancy; a pollution factor accounts for streaming
    /// traffic flowing through it.
    fn residency(&self, region_bytes: u64) -> (f64, f64, f64) {
        let ws = region_bytes.max(1) as f64;
        let l1_eff = self.spec.l1.size as f64 / self.occupancy as f64 * 0.5;
        let f_l1 = (l1_eff / ws).min(1.0);
        let l2_resident = (self.spec.l2.size as f64 / ws).min(1.0);
        let f_l2 = (l2_resident - f_l1).max(0.0);
        let f_dram = (1.0 - f_l1 - f_l2).max(0.0);
        (f_l1, f_l2, f_dram)
    }
}

/// The GPU simulator: executes kernels and reports simulated time.
#[derive(Debug, Clone)]
pub struct GpuSim {
    spec: GpuSpec,
    fidelity: Fidelity,
}

impl GpuSim {
    /// Simulator over `spec` at the given fidelity.
    pub fn new(spec: GpuSpec, fidelity: Fidelity) -> Self {
        GpuSim { spec, fidelity }
    }

    /// The device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The memory-model fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Launch a kernel: run `body` for every block in the grid, then account
    /// time per the throughput model described in the module docs.
    pub fn launch(
        &self,
        cfg: &LaunchConfig,
        mut body: impl FnMut(&mut BlockCtx<'_>),
    ) -> KernelReport {
        assert!(cfg.grid > 0, "empty grid");
        assert!(cfg.block_threads > 0 && cfg.block_threads <= 1024);
        assert!(
            cfg.smem_per_block <= self.spec.smem_per_block,
            "smem request {} exceeds per-block limit {}",
            cfg.smem_per_block,
            self.spec.smem_per_block
        );
        let occ = self.spec.occupancy(cfg.block_threads, cfg.smem_per_block);
        let sms = self.spec.sms;
        let mut l1s: Vec<SetAssocCache> = match self.fidelity {
            Fidelity::Exact => (0..sms).map(|_| SetAssocCache::new(self.spec.l1)).collect(),
            Fidelity::Analytic => Vec::new(),
        };
        let mut l2 = SetAssocCache::new(self.spec.l2);

        let mut sm_ns = vec![0.0f64; sms];
        let mut stats = KernelStats::default();
        let mut total_dram = 0.0f64;
        // Pending (unreplayed) blocks per SM, grouped into occupancy waves.
        let mut pending: Vec<Vec<BlockRecord>> = (0..sms).map(|_| Vec::new()).collect();

        let flush_wave = |sm: usize,
                          wave: &mut Vec<BlockRecord>,
                          l1s: &mut Vec<SetAssocCache>,
                          l2: &mut SetAssocCache,
                          sm_ns: &mut Vec<f64>,
                          stats: &mut KernelStats,
                          total_dram: &mut f64| {
            if wave.is_empty() {
                return;
            }
            if self.fidelity == Fidelity::Exact {
                Self::replay_wave(&self.spec, &mut l1s[sm], l2, wave, stats);
            }
            for rec in wave.drain(..) {
                let block_ns = rec.compute_ns.max(rec.smem_ns).max(rec.mem_ns)
                    + self.spec.block_overhead_ns / occ as f64;
                sm_ns[sm] += block_ns;
                *total_dram += rec.dram_bytes;
                stats.dram_bytes += rec.dram_bytes;
                stats.smem_ops += rec.stats.smem_ops;
                stats.smem_cycles += rec.stats.smem_cycles;
                stats.global_transactions += rec.stats.global_transactions;
                stats.warp_instructions += rec.stats.warp_instructions;
                stats.blocks += rec.stats.blocks;
                if self.fidelity == Fidelity::Analytic {
                    stats.l1_hits += rec.stats.l1_hits;
                    stats.l1_misses += rec.stats.l1_misses;
                    stats.l2_hits += rec.stats.l2_hits;
                    stats.l2_misses += rec.stats.l2_misses;
                }
            }
        };

        for b in 0..cfg.grid {
            let mut ctx = BlockCtx::new(&self.spec, self.fidelity, occ, b, cfg);
            body(&mut ctx);
            let sm = b % sms;
            pending[sm].push(ctx.rec);
            if pending[sm].len() == occ {
                let mut wave = std::mem::take(&mut pending[sm]);
                flush_wave(
                    sm,
                    &mut wave,
                    &mut l1s,
                    &mut l2,
                    &mut sm_ns,
                    &mut stats,
                    &mut total_dram,
                );
            }
        }
        #[allow(clippy::needless_range_loop)] // flush_wave needs the SM index too
        for sm in 0..sms {
            let mut wave = std::mem::take(&mut pending[sm]);
            flush_wave(
                sm,
                &mut wave,
                &mut l1s,
                &mut l2,
                &mut sm_ns,
                &mut stats,
                &mut total_dram,
            );
        }

        let sm_time = SimTime::from_ns(sm_ns.iter().copied().fold(0.0, f64::max));
        let dram_time = SimTime::from_secs(total_dram / self.spec.dram_bw);
        let time = sm_time.max(dram_time) + SimTime::from_ns(self.spec.launch_overhead_ns);
        KernelReport { time, sm_time, dram_time, stats }
    }

    /// Replay one wave of co-resident blocks through the SM's L1 and the
    /// shared L2, interleaving their access streams round-robin — this is
    /// what makes co-resident blocks pollute each other's L1 (Fig. 5).
    fn replay_wave(
        spec: &GpuSpec,
        l1: &mut SetAssocCache,
        l2: &mut SetAssocCache,
        wave: &mut [BlockRecord],
        stats: &mut KernelStats,
    ) {
        let max_len = wave.iter().map(|r| r.trace.len()).max().unwrap_or(0);
        for i in 0..max_len {
            for rec in wave.iter_mut() {
                let Some(&op) = rec.trace.get(i) else { continue };
                match op {
                    TraceOp::ReadLine(line) => {
                        if l1.access_line(line) == crate::cache::AccessOutcome::Hit {
                            rec.mem_ns += spec.l1_access_ns;
                            stats.l1_hits += 1;
                        } else {
                            stats.l1_misses += 1;
                            rec.mem_ns += spec.l1_access_ns + spec.l2_access_ns;
                            if l2.access_line(line) == crate::cache::AccessOutcome::Hit {
                                stats.l2_hits += 1;
                            } else {
                                stats.l2_misses += 1;
                                rec.dram_bytes += spec.l1.line as f64;
                            }
                        }
                    }
                    TraceOp::WriteSector(sector) => {
                        rec.mem_ns += spec.l1_access_ns;
                        // Sectors map onto L2 lines (line = 4 sectors).
                        let line = sector * SECTOR / spec.l2.line as u64;
                        if l2.access_line(line) == crate::cache::AccessOutcome::Hit {
                            stats.l2_hits += 1;
                        } else {
                            stats.l2_misses += 1;
                            rec.dram_bytes += SECTOR as f64;
                        }
                    }
                }
            }
        }
        for rec in wave.iter_mut() {
            rec.trace.clear();
            rec.trace.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn sim(fidelity: Fidelity) -> GpuSim {
        GpuSim::new(GpuSpec::gtx_1080(), fidelity)
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        let s = sim(Fidelity::Analytic);
        let bytes_per_block = 1u64 << 20;
        let cfg = LaunchConfig::new(400, 256, 0);
        let region = Region::at(1 << 20, 400 * bytes_per_block);
        let report = s.launch(&cfg, |blk| {
            blk.global_read_stream(
                &region,
                blk.block_idx as u64 * bytes_per_block,
                bytes_per_block,
            );
            blk.compute(bytes_per_block / 4, 1.0);
        });
        let total = 400.0 * bytes_per_block as f64;
        let ideal = total / s.spec().dram_bw;
        let t = report.time.as_secs();
        assert!(t >= ideal, "faster than DRAM: {t} < {ideal}");
        assert!(t < ideal * 2.0, "streaming far off roofline: {t} vs {ideal}");
    }

    #[test]
    fn random_gather_costs_more_than_streaming_same_bytes() {
        let s = sim(Fidelity::Analytic);
        let n: usize = 1 << 16;
        let region = Region::at(1 << 20, 1 << 30); // 1 GiB working set
        let cfg = LaunchConfig::new(64, 256, 0);
        let per_block = n / 64;
        // Random 8-byte gathers.
        let random = s.launch(&cfg, |blk| {
            let offs: Vec<u64> = (0..per_block)
                .map(|i| ((blk.block_idx * per_block + i) as u64 * 7919 * 4096) % (1 << 30))
                .collect();
            blk.global_read(&region, &offs, 8);
        });
        // Streaming the same number of payload bytes.
        let streaming = s.launch(&cfg, |blk| {
            blk.global_read_stream(
                &region,
                (blk.block_idx * per_block * 8) as u64,
                (per_block * 8) as u64,
            );
        });
        assert!(
            random.time.as_secs() > 4.0 * streaming.time.as_secs(),
            "over-fetch not captured: random={} streaming={}",
            random.time,
            streaming.time
        );
    }

    #[test]
    fn exact_mode_repeated_access_hits_l1() {
        let s = sim(Fidelity::Exact);
        let region = Region::at(1 << 20, 16 << 10); // 16 KiB: fits L1
        let cfg = LaunchConfig::new(20, 256, 0); // one block per SM
        let report = s.launch(&cfg, |blk| {
            let offs: Vec<u64> = (0..2048u64).map(|i| (i * 8) % (16 << 10)).collect();
            for _ in 0..4 {
                blk.global_read(&region, &offs, 8);
            }
        });
        let hits = report.stats.l1_hits as f64;
        let total = (report.stats.l1_hits + report.stats.l1_misses) as f64;
        assert!(hits / total > 0.7, "expected warm L1, hit rate {}", hits / total);
    }

    #[test]
    fn exact_mode_large_working_set_misses() {
        let s = sim(Fidelity::Exact);
        let region = Region::at(1 << 20, 64 << 20); // 64 MiB >> L2
        let cfg = LaunchConfig::new(20, 256, 0);
        let report = s.launch(&cfg, |blk| {
            let offs: Vec<u64> = (0..4096u64)
                .map(|i| (i * 7919 + blk.block_idx as u64 * 104729) * 128 % (64 << 20))
                .collect();
            blk.global_read(&region, &offs, 8);
        });
        let misses = report.stats.l1_misses as f64;
        let total = (report.stats.l1_hits + report.stats.l1_misses) as f64;
        assert!(misses / total > 0.9, "expected cold caches, miss rate {}", misses / total);
        assert!(report.stats.dram_bytes > 0.0);
    }

    #[test]
    fn smem_conflicts_charged() {
        let s = sim(Fidelity::Analytic);
        let cfg = LaunchConfig::new(20, 256, 16 << 10);
        let conflict_free: Vec<u32> = (0..256u32).collect();
        let conflicted: Vec<u32> = (0..256u32).map(|i| i * 32).collect();
        let fast = s.launch(&cfg, |blk| {
            for _ in 0..64 {
                blk.smem_access(&conflict_free);
            }
        });
        let slow = s.launch(&cfg, |blk| {
            for _ in 0..64 {
                blk.smem_access(&conflicted);
            }
        });
        assert!(slow.time.as_secs() > 2.0 * fast.time.as_secs());
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let s = sim(Fidelity::Analytic);
        let cfg = LaunchConfig::new(1, 32, 0);
        let report = s.launch(&cfg, |blk| blk.compute(32, 1.0));
        assert!(report.time.as_ns() >= s.spec().launch_overhead_ns);
    }

    #[test]
    fn grid_size_scales_time() {
        let s = sim(Fidelity::Analytic);
        let region = Region::at(1 << 20, 1 << 30);
        let small = s.launch(&LaunchConfig::new(40, 256, 0), |blk| {
            blk.global_read_stream(&region, blk.block_idx as u64 * (1 << 20), 1 << 20);
        });
        let large = s.launch(&LaunchConfig::new(400, 256, 0), |blk| {
            blk.global_read_stream(&region, blk.block_idx as u64 * (1 << 20), 1 << 20);
        });
        assert!(large.time.as_secs() > 5.0 * small.time.as_secs());
    }
}
