//! Scratchpad (shared-memory) bank-conflict model.
//!
//! The scratchpad is organised into banks and serves one word per bank per
//! cycle *independently of the word's location in the bank* (§4.1) — which is
//! why the paper's GPU join builds its per-partition hash tables there: random
//! accesses cost bank conflicts at worst, never over-fetch.

/// Cycles needed for one warp's scratchpad read/write given the word indices
/// accessed by each lane.
///
/// Lanes that read the *same* word are broadcast (cost one access); lanes
/// hitting distinct words in the same bank serialise.
pub fn conflict_cycles(words: &[u32], banks: usize) -> u32 {
    debug_assert!(words.len() <= 32);
    debug_assert!(banks <= 64 && banks.is_power_of_two());
    if words.is_empty() {
        return 0;
    }
    let mut seen = [u32::MAX; 32];
    let mut n_seen = 0usize;
    let mut per_bank = [0u8; 64];
    for &w in words {
        if seen[..n_seen].contains(&w) {
            continue; // broadcast
        }
        seen[n_seen] = w;
        n_seen += 1;
        per_bank[(w as usize) & (banks - 1)] += 1;
    }
    per_bank[..banks].iter().copied().max().unwrap_or(0).max(1) as u32
}

/// Cycles for one warp's scratchpad *atomic* operation.
///
/// Unlike plain reads, atomics to the same word cannot be broadcast — they
/// serialise. The cost is the maximum number of lane operations landing on
/// any single bank (same-word operations necessarily share a bank).
pub fn atomic_cycles(words: &[u32], banks: usize) -> u32 {
    debug_assert!(words.len() <= 32);
    debug_assert!(banks <= 64 && banks.is_power_of_two());
    if words.is_empty() {
        return 0;
    }
    let mut per_bank = [0u8; 64];
    for &w in words {
        per_bank[(w as usize) & (banks - 1)] += 1;
    }
    per_bank[..banks].iter().copied().max().unwrap_or(0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_access_is_one_cycle() {
        let words: Vec<u32> = (0..32).collect();
        assert_eq!(conflict_cycles(&words, 32), 1);
    }

    #[test]
    fn same_word_broadcasts() {
        let words = [7u32; 32];
        assert_eq!(conflict_cycles(&words, 32), 1);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes 0..16 hit bank i, lanes 16..32 hit bank i again (words +32).
        let words: Vec<u32> = (0..32).map(|i| (i % 16) + 32 * (i / 16)).collect();
        assert_eq!(conflict_cycles(&words, 32), 2);
    }

    #[test]
    fn worst_case_32_way() {
        let words: Vec<u32> = (0..32).map(|i| i * 32).collect(); // all bank 0
        assert_eq!(conflict_cycles(&words, 32), 32);
    }

    #[test]
    fn atomics_to_same_word_serialise() {
        let words = [7u32; 32];
        assert_eq!(atomic_cycles(&words, 32), 32);
        assert_eq!(conflict_cycles(&words, 32), 1); // contrast with reads
    }

    #[test]
    fn atomics_conflict_free_when_spread() {
        let words: Vec<u32> = (0..32).collect();
        assert_eq!(atomic_cycles(&words, 32), 1);
    }

    #[test]
    fn empty_access_is_free() {
        assert_eq!(conflict_cycles(&[], 32), 0);
        assert_eq!(atomic_cycles(&[], 32), 0);
    }
}
