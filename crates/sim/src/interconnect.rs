//! Interconnect (PCIe / inter-socket) modelling.
//!
//! The paper's central co-processing argument is bandwidth accounting over
//! "the scarcest resource, the interconnect" (§2.1): a PCIe 3 x16 link moves
//! ~12 GB/s while GPU memory moves 280 GB/s. Links are discrete-event
//! resources, so concurrent transfers queue and two GPUs on dedicated links
//! genuinely double aggregate transfer bandwidth (Fig. 7's 1.7×).

use crate::des::Resource;
use crate::time::SimTime;

/// A point-to-point interconnect link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Effective bandwidth, bytes/s.
    pub bw: f64,
    /// Per-transfer latency (DMA setup + propagation), seconds.
    pub latency: f64,
    res: Resource,
}

impl Link {
    /// PCIe 3.0 x16: ~12 GB/s effective, ~10 µs per DMA.
    pub fn pcie3_x16(name: impl Into<String>) -> Self {
        Link { bw: 12.0e9, latency: 10e-6, res: Resource::new(name) }
    }

    /// Inter-socket link (QPI 9.6 GT/s ≈ 38.4 GB/s aggregate).
    pub fn qpi(name: impl Into<String>) -> Self {
        Link { bw: 38.4e9, latency: 1e-6, res: Resource::new(name) }
    }

    /// Custom link.
    pub fn new(name: impl Into<String>, bw: f64, latency: f64) -> Self {
        Link { bw, latency, res: Resource::new(name) }
    }

    /// The link's name.
    pub fn name(&self) -> &str {
        self.res.name()
    }

    /// Pure transfer duration for `bytes` (no queueing).
    pub fn duration(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.latency + bytes as f64 / self.bw)
    }

    /// Schedule a transfer of `bytes`, ready at `ready`. Returns
    /// `(start, end)` after queueing behind earlier transfers.
    pub fn transfer(&mut self, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.res.acquire(ready, self.duration(bytes))
    }

    /// When the link next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.res.free_at()
    }

    /// Total busy time (for utilisation reports).
    pub fn busy_time(&self) -> SimTime {
        self.res.busy_time()
    }

    /// Reset for a new query.
    pub fn reset(&mut self) {
        self.res.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let link = Link::pcie3_x16("pcie0");
        let t = link.duration(12_000_000_000);
        assert!((t.as_secs() - 1.0).abs() < 0.01, "expected ~1s, got {t}");
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let link = Link::pcie3_x16("pcie0");
        let t = link.duration(128);
        assert!(t.as_us() >= 10.0);
        assert!(t.as_us() < 11.0);
    }

    #[test]
    fn concurrent_transfers_queue() {
        let mut link = Link::pcie3_x16("pcie0");
        let gb = 12_000_000_000u64; // 1 second each
        let (_, e1) = link.transfer(SimTime::ZERO, gb);
        let (s2, e2) = link.transfer(SimTime::ZERO, gb);
        assert_eq!(s2, e1);
        assert!(e2.as_secs() > 1.9);
    }

    #[test]
    fn two_links_run_in_parallel() {
        let mut a = Link::pcie3_x16("pcie0");
        let mut b = Link::pcie3_x16("pcie1");
        let gb = 12_000_000_000u64;
        let (_, ea) = a.transfer(SimTime::ZERO, gb);
        let (_, eb) = b.transfer(SimTime::ZERO, gb);
        // Independent links: both finish around 1s, not 2s.
        assert!(ea.as_secs() < 1.1 && eb.as_secs() < 1.1);
    }
}
