//! Device specifications.
//!
//! The specs below describe the paper's testbed (§6.1): two 12-core Intel
//! Xeon E5-2650L v3 sockets and two NVIDIA GeForce GTX 1080 GPUs, each on a
//! dedicated PCIe 3 x16 link. Every hardware-conscious decision in the
//! workspace (partitioning fanout, scratchpad sizing, co-partition sizing) is
//! *computed from these specs*, never hard-coded, mirroring the paper's
//! "hardware-specific finer-grained building blocks" (§4.1).

/// One level of a data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevelSpec {
    /// Total capacity in bytes.
    pub size: usize,
    /// Cache-line size in bytes (the over-fetch granularity).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Latency of a hit at this level, in nanoseconds.
    pub hit_ns: f64,
}

impl CacheLevelSpec {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / self.line / self.assoc).max(1)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.size / self.line
    }
}

/// A translation-lookaside buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbSpec {
    /// Number of entries.
    pub entries: usize,
    /// Page size covered by one entry, in bytes.
    pub page_size: usize,
    /// Penalty of a TLB miss (page-walk), in nanoseconds.
    pub miss_ns: f64,
}

impl TlbSpec {
    /// Bytes of address space covered without misses.
    pub fn reach(&self) -> usize {
        self.entries * self.page_size
    }
}

/// A CPU socket specification.
///
/// Models the characteristics the paper's CPU-side algorithms are tuned
/// against: the cache hierarchy, the TLB, DRAM bandwidth/latency, SIMD width
/// and memory-level parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Sustained scalar instructions per cycle per core.
    pub ipc: f64,
    /// SIMD lanes for 32-bit elements (AVX2 = 8).
    pub simd_lanes_32: usize,
    /// L1 data cache (per core).
    pub l1d: CacheLevelSpec,
    /// L2 cache (per core).
    pub l2: CacheLevelSpec,
    /// L3 cache (shared per socket).
    pub l3: CacheLevelSpec,
    /// First-level data TLB (4 KiB pages).
    pub dtlb: TlbSpec,
    /// Second-level (shared) TLB.
    pub stlb: TlbSpec,
    /// Effective DRAM bandwidth per socket, bytes/s.
    pub dram_bw: f64,
    /// DRAM random-access latency (local node), ns.
    pub dram_latency_ns: f64,
    /// Memory-level parallelism: outstanding misses a core can sustain.
    pub mlp: f64,
    /// Per-core peak sequential bandwidth (a single core cannot saturate the
    /// socket), bytes/s.
    pub per_core_bw: f64,
    /// DRAM capacity per socket, bytes.
    pub dram_capacity: usize,
}

impl CpuSpec {
    /// The paper's CPU: Intel Xeon E5-2650L v3 (Haswell-EP), 12 cores @
    /// 1.8 GHz, 64 KiB L1 (32 KiB data), 256 KiB L2, 30 MiB shared L3.
    pub fn xeon_e5_2650l_v3() -> Self {
        CpuSpec {
            name: "Intel Xeon E5-2650L v3",
            cores: 12,
            clock_hz: 1.8e9,
            ipc: 2.0,
            simd_lanes_32: 8,
            l1d: CacheLevelSpec { size: 32 << 10, line: 64, assoc: 8, hit_ns: 2.2 },
            l2: CacheLevelSpec { size: 256 << 10, line: 64, assoc: 8, hit_ns: 6.7 },
            l3: CacheLevelSpec { size: 30 << 20, line: 64, assoc: 20, hit_ns: 24.0 },
            dtlb: TlbSpec { entries: 64, page_size: 4 << 10, miss_ns: 22.0 },
            stlb: TlbSpec { entries: 1024, page_size: 4 << 10, miss_ns: 35.0 },
            dram_bw: 52.0e9,
            dram_latency_ns: 87.0,
            mlp: 10.0,
            per_core_bw: 9.0e9,
            dram_capacity: 128 << 30,
        }
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Maximum software-managed partitioning fanout for one pass, following
    /// Boncz et al. \[6\]: one output buffer per partition must stay TLB- and
    /// cache-resident, so fanout is bounded by TLB entries and by the number
    /// of cache lines L1 can dedicate to write buffers.
    ///
    /// With 64 dTLB entries backed by a 1024-entry STLB and a 32 KiB L1
    /// (512 lines), the classic compromise is on the order of 2^7 per pass.
    pub fn max_partition_fanout(&self) -> usize {
        let tlb_bound = self.dtlb.entries * 2; // dTLB backed by STLB
        let cache_bound = self.l1d.lines() / 4; // leave room for input stream
        tlb_bound.min(cache_bound).next_power_of_two()
    }

    /// Size at which a per-partition hash table stops being cache-resident:
    /// the Shatdal et al. criterion targets tables that fit in cache; we
    /// target half the L2 + L1 to leave room for the probe stream.
    pub fn cache_resident_bytes(&self) -> usize {
        self.l1d.size / 2 + self.l2.size / 2
    }

    /// Aggregate streaming bandwidth the socket sustains with all cores
    /// scanning, bytes/s: the socket's DRAM bandwidth, capped by what the
    /// cores can collectively issue. This is the sequential-scan throughput
    /// term cost models charge for CPU-side pipeline segments.
    pub fn socket_scan_bw(&self) -> f64 {
        self.dram_bw.min(self.cores as f64 * self.per_core_bw)
    }
}

/// A GPU specification.
///
/// Models the GPU characteristics from §2.1/§4.1: the *fatter* cache
/// hierarchy with a banked software-managed scratchpad (shared memory),
/// an L1 that over-fetches whole lines, a device-wide L2, high-bandwidth
/// device memory, large TLB pages, and warp-wide (SIMT) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// SIMT lanes ("CUDA cores") per SM.
    pub lanes_per_sm: usize,
    /// Warp width.
    pub warp: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Max resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Max resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Scratchpad (shared memory) bytes per SM.
    pub smem_per_sm: usize,
    /// Scratchpad bytes usable by a single block.
    pub smem_per_block: usize,
    /// Scratchpad banks.
    pub smem_banks: usize,
    /// Scratchpad bank word in bytes.
    pub smem_word: usize,
    /// L1 cache per SM.
    pub l1: CacheLevelSpec,
    /// Device-wide L2.
    pub l2: CacheLevelSpec,
    /// TLB with big pages (Karnagel et al. \[18\] measured 2 MiB GPU pages).
    pub tlb: TlbSpec,
    /// Effective device-memory bandwidth, bytes/s (paper quotes 280 GB/s).
    pub dram_bw: f64,
    /// Device memory capacity in bytes.
    pub dram_capacity: usize,
    /// Kernel launch overhead, ns.
    pub launch_overhead_ns: f64,
    /// Per-block scheduling overhead, ns.
    pub block_overhead_ns: f64,
    /// Throughput cost of one warp-wide L1/L2 access, ns (tag check + data).
    pub l1_access_ns: f64,
    /// Extra cost of an L2 access (line fill from L2), ns.
    pub l2_access_ns: f64,
    /// Cost of one warp-wide scratchpad cycle, ns.
    pub smem_cycle_ns: f64,
    /// Serialised atomic operation cost (same-address conflict), ns.
    pub atomic_ns: f64,
}

impl GpuSpec {
    /// The paper's GPU: NVIDIA GeForce GTX 1080 (Pascal GP104), 20 SMs,
    /// 8 GiB GDDR5X, 96 KiB scratchpad + 48 KiB L1 per SM, 2 MiB L2.
    pub fn gtx_1080() -> Self {
        GpuSpec {
            name: "NVIDIA GeForce GTX 1080",
            sms: 20,
            lanes_per_sm: 128,
            warp: 32,
            clock_hz: 1.607e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            smem_per_sm: 96 << 10,
            smem_per_block: 48 << 10,
            smem_banks: 32,
            smem_word: 4,
            l1: CacheLevelSpec { size: 48 << 10, line: 128, assoc: 4, hit_ns: 18.0 },
            l2: CacheLevelSpec { size: 2 << 20, line: 128, assoc: 16, hit_ns: 140.0 },
            tlb: TlbSpec { entries: 544, page_size: 2 << 20, miss_ns: 300.0 },
            dram_bw: 280.0e9,
            dram_capacity: 8 << 30,
            launch_overhead_ns: 5_000.0,
            block_overhead_ns: 600.0,
            l1_access_ns: 0.7,
            l2_access_ns: 2.2,
            smem_cycle_ns: 0.65,
            atomic_ns: 2.4,
        }
    }

    /// A GTX 1080 with capacity scaled by `factor` (used to run the paper's
    /// SF-100 capacity arguments at reduced data scale; see DESIGN.md §2).
    pub fn gtx_1080_scaled(factor: f64) -> Self {
        let mut s = Self::gtx_1080();
        s.dram_capacity = ((s.dram_capacity as f64) * factor) as usize;
        s
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Warps per block of `threads` threads.
    pub fn warps_per_block(&self, threads: usize) -> usize {
        threads.div_ceil(self.warp)
    }

    /// How many blocks can be resident on one SM simultaneously, given the
    /// per-block thread count and scratchpad usage. This drives both the
    /// under-utilisation effect at tiny partition sizes (Fig. 5) and the
    /// L1-sharing pollution between co-resident blocks.
    pub fn occupancy(&self, threads_per_block: usize, smem_per_block: usize) -> usize {
        let by_threads = self.max_threads_per_sm / threads_per_block.max(1);
        let by_smem =
            self.smem_per_sm.checked_div(smem_per_block).unwrap_or(self.max_blocks_per_sm);
        by_threads.min(by_smem).min(self.max_blocks_per_sm).max(1)
    }

    /// The largest per-partition footprint (bytes) for which a build-side
    /// hash table plus bookkeeping fits the scratchpad of one block — the
    /// GPU-side analogue of the CPU's cache-residency criterion (§4.1:
    /// "fanout based on TLB versus scratchpad capacity").
    pub fn scratchpad_resident_bytes(&self) -> usize {
        // Reserve 1/8 of the block scratchpad for histograms/offsets.
        self.smem_per_block - self.smem_per_block / 8
    }

    /// Maximum partitioning fanout of one GPU pass: bounded by the memory
    /// available for consolidating stores (§4.1 — the scratchpad staging
    /// buffer must hold a run per output partition).
    pub fn max_partition_fanout(&self) -> usize {
        // Staging chunk in scratchpad: one line-sized run per partition.
        (self.smem_per_block / self.l2.line).next_power_of_two() / 2
    }

    /// Expected cost of one random access into a device-memory structure of
    /// `working_set` bytes, in nanoseconds *of device throughput* (the
    /// massively-threaded analogue of the CPU's latency-bound probe: SMs
    /// hide latency, so a random access costs the bandwidth of the cache
    /// line it drags — L2-resident structures pay the cheaper L2 line).
    ///
    /// This is an aggregate-throughput figure for analytic cost models; the
    /// kernel simulator charges the exact per-warp accesses instead.
    pub fn random_access_ns(&self, working_set: u64) -> f64 {
        let ws = working_set.max(1) as f64;
        let f_l2 = (self.l2.size as f64 / ws).min(1.0);
        // An L2 hit streams a line through the SM interconnect; a miss
        // drags a whole line from device memory.
        let l2_ns = self.l2.line as f64 / (self.dram_bw * 4.0) * 1e9;
        let mem_ns = self.l2.line as f64 / self.dram_bw * 1e9;
        f_l2 * l2_ns + (1.0 - f_l2) * mem_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry() {
        let l1 = CacheLevelSpec { size: 32 << 10, line: 64, assoc: 8, hit_ns: 2.0 };
        assert_eq!(l1.lines(), 512);
        assert_eq!(l1.sets(), 64);
    }

    #[test]
    fn tlb_reach() {
        let tlb = TlbSpec { entries: 64, page_size: 4096, miss_ns: 20.0 };
        assert_eq!(tlb.reach(), 256 << 10);
    }

    #[test]
    fn cpu_fanout_is_tlb_bounded_power_of_two() {
        let cpu = CpuSpec::xeon_e5_2650l_v3();
        let fanout = cpu.max_partition_fanout();
        assert!(fanout.is_power_of_two());
        assert!(fanout <= cpu.dtlb.entries * 2);
        assert!(fanout >= 64, "fanout {fanout} suspiciously small");
    }

    #[test]
    fn gpu_occupancy_limits() {
        let gpu = GpuSpec::gtx_1080();
        // Thread-limited: 2048/256 = 8 blocks.
        assert_eq!(gpu.occupancy(256, 0), 8);
        // Scratchpad-limited: 96K/48K = 2 blocks.
        assert_eq!(gpu.occupancy(64, 48 << 10), 2);
        // Block-count-limited.
        assert_eq!(gpu.occupancy(32, 0), 32);
    }

    #[test]
    fn gpu_scratchpad_budget_below_block_limit() {
        let gpu = GpuSpec::gtx_1080();
        assert!(gpu.scratchpad_resident_bytes() < gpu.smem_per_block);
        assert!(gpu.scratchpad_resident_bytes() > gpu.smem_per_block / 2);
    }

    #[test]
    fn gpu_fanout_is_power_of_two() {
        let gpu = GpuSpec::gtx_1080();
        assert!(gpu.max_partition_fanout().is_power_of_two());
        assert!(gpu.max_partition_fanout() >= 32);
    }

    #[test]
    fn socket_scan_bw_is_core_capped_dram_bw() {
        let cpu = CpuSpec::xeon_e5_2650l_v3();
        assert!(cpu.socket_scan_bw() <= cpu.dram_bw);
        assert!(cpu.socket_scan_bw() <= cpu.cores as f64 * cpu.per_core_bw);
        assert!(cpu.socket_scan_bw() > 0.0);
    }

    #[test]
    fn gpu_random_access_cheaper_when_l2_resident() {
        let gpu = GpuSpec::gtx_1080();
        let in_l2 = gpu.random_access_ns(256 << 10);
        let in_dram = gpu.random_access_ns(1 << 30);
        assert!(in_l2 < in_dram, "{in_l2} !< {in_dram}");
        // DRAM-resident probes cost about one line of bandwidth.
        let line_ns = gpu.l2.line as f64 / gpu.dram_bw * 1e9;
        assert!((in_dram - line_ns).abs() / line_ns < 0.05);
    }

    #[test]
    fn scaled_gpu_shrinks_capacity_only() {
        let full = GpuSpec::gtx_1080();
        let scaled = GpuSpec::gtx_1080_scaled(0.01);
        assert_eq!(scaled.sms, full.sms);
        assert!(scaled.dram_capacity < full.dram_capacity / 50);
    }
}
