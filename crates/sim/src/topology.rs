//! Server topology: sockets, GPUs, memory nodes and the links between them.
//!
//! Mirrors the paper's testbed (§6.1): two 12-core Xeon sockets with local
//! DRAM, two GTX 1080s each on a dedicated PCIe 3 x16 link attached to
//! socket 0, and an inter-socket link. HetExchange's `mem-move` operator
//! consults this topology to route transfers and to perform broadcasts with
//! a minimal number of copies (§4.2).

use crate::interconnect::Link;
use crate::spec::{CpuSpec, GpuSpec};

/// A compute device in the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceId {
    /// CPU socket `n`.
    Cpu(usize),
    /// GPU `n`.
    Gpu(usize),
}

impl DeviceId {
    /// True for GPU devices.
    pub fn is_gpu(&self) -> bool {
        matches!(self, DeviceId::Gpu(_))
    }

    /// The memory node local to this device.
    pub fn local_mem(&self) -> MemNode {
        match *self {
            DeviceId::Cpu(s) => MemNode::CpuDram(s),
            DeviceId::Gpu(g) => MemNode::GpuDram(g),
        }
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceId::Cpu(s) => write!(f, "cpu{s}"),
            DeviceId::Gpu(g) => write!(f, "gpu{g}"),
        }
    }
}

/// A memory node (a distinct physical memory in the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemNode {
    /// DRAM attached to CPU socket `n`.
    CpuDram(usize),
    /// Device memory of GPU `n`.
    GpuDram(usize),
}

impl std::fmt::Display for MemNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemNode::CpuDram(s) => write!(f, "dram{s}"),
            MemNode::GpuDram(g) => write!(f, "gmem{g}"),
        }
    }
}

/// The simulated server.
#[derive(Debug, Clone)]
pub struct Server {
    /// CPU sockets.
    pub cpus: Vec<CpuSpec>,
    /// GPUs.
    pub gpus: Vec<GpuSpec>,
    /// PCIe links, one per GPU (`pcie[i]` connects GPU `i` to its socket).
    pub pcie: Vec<Link>,
    /// Socket the i-th GPU hangs off.
    pub gpu_socket: Vec<usize>,
    /// Inter-socket link.
    pub xbus: Link,
}

impl Server {
    /// The paper's testbed: 2× Xeon E5-2650L v3, 2× GTX 1080 on dedicated
    /// PCIe 3 x16 links off socket 0.
    pub fn paper_testbed() -> Self {
        Server {
            cpus: vec![CpuSpec::xeon_e5_2650l_v3(), CpuSpec::xeon_e5_2650l_v3()],
            gpus: vec![GpuSpec::gtx_1080(), GpuSpec::gtx_1080()],
            pcie: vec![Link::pcie3_x16("pcie0"), Link::pcie3_x16("pcie1")],
            gpu_socket: vec![0, 0],
            xbus: Link::qpi("qpi"),
        }
    }

    /// The paper testbed with GPU memory capacity scaled by `factor` —
    /// used to run SF-100 capacity arguments at reduced data scale
    /// (DESIGN.md §2).
    pub fn paper_testbed_gpu_mem_scaled(factor: f64) -> Self {
        let mut s = Self::paper_testbed();
        for g in &mut s.gpus {
            *g = GpuSpec::gtx_1080_scaled(factor);
        }
        s
    }

    /// The paper testbed scaled for running TPC-H SF-100 experiments at a
    /// reduced scale factor `sf` (see DESIGN.md §2): data shrinks by
    /// `sf/100`, so every *capacity* the evaluation's effects depend on
    /// shrinks with it — GPU device memory (Q9's failure, Figure 6's
    /// cut-off) and the CPU's L2/L3 (at SF 100 the join hash tables dwarf
    /// the caches; without this, scaled-down tables would become
    /// cache-resident and flip the paper's Q5 CPU/GPU regime).
    ///
    /// L1, TLBs and all bandwidths/latencies stay at hardware scale: they
    /// parameterise per-access behaviour and fanout planning, not capacity
    /// ratios.
    /// Fixed per-operation overheads (PCIe DMA latency, kernel launch) also
    /// scale: at SF 100 they are negligible against seconds-long queries,
    /// and the scaled experiment must keep them negligible, or they would
    /// dominate and mask the bandwidth/capacity effects under study.
    pub fn tpch_scaled(sf: f64) -> Self {
        let factor = (sf / 100.0).min(1.0);
        let mut s = Self::paper_testbed();
        for g in &mut s.gpus {
            *g = GpuSpec::gtx_1080_scaled(factor);
            let floor_l1 = g.l1.line * g.l1.assoc;
            let floor_l2 = g.l2.line * g.l2.assoc;
            g.l1.size = ((g.l1.size as f64 * factor) as usize).max(floor_l1);
            g.l2.size = ((g.l2.size as f64 * factor) as usize).max(floor_l2);
            g.launch_overhead_ns *= factor;
            g.block_overhead_ns *= factor;
        }
        for c in &mut s.cpus {
            let floor_l2 = c.l2.line * c.l2.assoc;
            let floor_l3 = c.l3.line * c.l3.assoc;
            c.l2.size = ((c.l2.size as f64 * factor) as usize).max(floor_l2);
            c.l3.size = ((c.l3.size as f64 * factor) as usize).max(floor_l3);
        }
        for l in &mut s.pcie {
            l.latency *= factor;
        }
        s
    }

    /// A server with a single GPU (for 1-GPU vs 2-GPU studies).
    pub fn single_gpu() -> Self {
        let mut s = Self::paper_testbed();
        s.gpus.truncate(1);
        s.pcie.truncate(1);
        s.gpu_socket.truncate(1);
        s
    }

    /// A CPU-only server.
    pub fn cpu_only() -> Self {
        let mut s = Self::paper_testbed();
        s.gpus.clear();
        s.pcie.clear();
        s.gpu_socket.clear();
        s
    }

    /// Total CPU cores across sockets.
    pub fn total_cpu_cores(&self) -> usize {
        self.cpus.iter().map(|c| c.cores).sum()
    }

    /// The transfer link a device's packets arrive over: the PCIe link for
    /// a GPU, `None` for CPU sockets (host-resident packets are streamed in
    /// place — NUMA is not modelled on the packet path).
    pub fn link_of(&self, device: DeviceId) -> Option<&Link> {
        match device {
            DeviceId::Cpu(_) => None,
            DeviceId::Gpu(g) => self.pcie.get(g),
        }
    }

    /// All compute devices.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut d: Vec<DeviceId> = (0..self.cpus.len()).map(DeviceId::Cpu).collect();
        d.extend((0..self.gpus.len()).map(DeviceId::Gpu));
        d
    }

    /// Whether moving data between two memory nodes crosses an interconnect,
    /// and which links it uses (in hop order). Same-node moves are free.
    pub fn route(&self, from: MemNode, to: MemNode) -> Vec<RouteHop> {
        if from == to {
            return Vec::new();
        }
        match (from, to) {
            (MemNode::CpuDram(a), MemNode::CpuDram(b)) if a != b => vec![RouteHop::XBus],
            (MemNode::CpuDram(s), MemNode::GpuDram(g))
            | (MemNode::GpuDram(g), MemNode::CpuDram(s)) => {
                let mut hops = Vec::new();
                if self.gpu_socket[g] != s {
                    hops.push(RouteHop::XBus);
                }
                hops.push(RouteHop::Pcie(g));
                hops
            }
            (MemNode::GpuDram(a), MemNode::GpuDram(b)) => {
                // GPU↔GPU goes through host memory: two PCIe hops (and the
                // xbus if on different sockets — not the case on the paper
                // testbed).
                let mut hops = vec![RouteHop::Pcie(a)];
                if self.gpu_socket[a] != self.gpu_socket[b] {
                    hops.push(RouteHop::XBus);
                }
                hops.push(RouteHop::Pcie(b));
                hops
            }
            _ => Vec::new(),
        }
    }

    /// The bottleneck bandwidth along a route (bytes/s); `f64::INFINITY`
    /// for local moves.
    pub fn route_bandwidth(&self, from: MemNode, to: MemNode) -> f64 {
        self.route(from, to)
            .iter()
            .map(|h| match h {
                RouteHop::Pcie(g) => self.pcie[*g].bw,
                RouteHop::XBus => self.xbus.bw,
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// One hop of a memory-to-memory route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteHop {
    /// The PCIe link of GPU `n`.
    Pcie(usize),
    /// The inter-socket link.
    XBus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let s = Server::paper_testbed();
        assert_eq!(s.cpus.len(), 2);
        assert_eq!(s.gpus.len(), 2);
        assert_eq!(s.pcie.len(), 2);
        assert_eq!(s.total_cpu_cores(), 24);
        assert_eq!(s.devices().len(), 4);
    }

    #[test]
    fn local_route_is_free() {
        let s = Server::paper_testbed();
        assert!(s.route(MemNode::CpuDram(0), MemNode::CpuDram(0)).is_empty());
        assert_eq!(s.route_bandwidth(MemNode::CpuDram(0), MemNode::CpuDram(0)), f64::INFINITY);
    }

    #[test]
    fn cpu_to_gpu_uses_pcie() {
        let s = Server::paper_testbed();
        let hops = s.route(MemNode::CpuDram(0), MemNode::GpuDram(1));
        assert_eq!(hops, vec![RouteHop::Pcie(1)]);
        // From the remote socket the route crosses the xbus first.
        let hops = s.route(MemNode::CpuDram(1), MemNode::GpuDram(0));
        assert_eq!(hops, vec![RouteHop::XBus, RouteHop::Pcie(0)]);
    }

    #[test]
    fn gpu_to_gpu_double_hop() {
        let s = Server::paper_testbed();
        let hops = s.route(MemNode::GpuDram(0), MemNode::GpuDram(1));
        assert_eq!(hops, vec![RouteHop::Pcie(0), RouteHop::Pcie(1)]);
    }

    #[test]
    fn bottleneck_bandwidth_is_pcie() {
        let s = Server::paper_testbed();
        let bw = s.route_bandwidth(MemNode::CpuDram(1), MemNode::GpuDram(0));
        assert_eq!(bw, s.pcie[0].bw);
    }

    #[test]
    fn device_local_mem() {
        assert_eq!(DeviceId::Cpu(1).local_mem(), MemNode::CpuDram(1));
        assert_eq!(DeviceId::Gpu(0).local_mem(), MemNode::GpuDram(0));
        assert!(DeviceId::Gpu(0).is_gpu());
        assert!(!DeviceId::Cpu(0).is_gpu());
    }
}
