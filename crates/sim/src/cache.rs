//! Exact (tag-array) set-associative cache simulation.
//!
//! Used by the `Exact` fidelity of the GPU memory model to reproduce the
//! Figure 5 mechanisms: random probes over-fetch whole lines through L1, and
//! streaming scans pollute the L1 shared by co-resident blocks.

use crate::spec::CacheLevelSpec;

/// Result of probing the cache with one line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been filled (possibly evicting).
    Miss,
}

/// Aggregate hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with LRU replacement, tracked at line granularity.
///
/// Only tags are stored — the simulated program operates on real Rust data,
/// the cache just decides *where* each access would have been served from.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    spec: CacheLevelSpec,
    sets: usize,
    /// `tags[set * assoc + way]`: line address or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (larger = more recent).
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache from a level spec.
    pub fn new(spec: CacheLevelSpec) -> Self {
        let sets = spec.sets();
        SetAssocCache {
            spec,
            sets,
            tags: vec![u64::MAX; sets * spec.assoc],
            stamps: vec![0; sets * spec.assoc],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The spec this cache was built from.
    pub fn spec(&self) -> &CacheLevelSpec {
        &self.spec
    }

    /// Convert a byte address to a line address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr / self.spec.line as u64
    }

    /// Probe with a *line* address; fills on miss (LRU eviction).
    pub fn access_line(&mut self, line_addr: u64) -> AccessOutcome {
        self.tick += 1;
        let set = (line_addr % self.sets as u64) as usize;
        let base = set * self.spec.assoc;
        let ways = &mut self.tags[base..base + self.spec.assoc];
        // Hit path.
        for (w, tag) in ways.iter().enumerate() {
            if *tag == line_addr {
                self.stamps[base + w] = self.tick;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        // Miss: fill into invalid or LRU way.
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.spec.assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < victim_stamp {
                victim_stamp = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.tick;
        self.stats.misses += 1;
        AccessOutcome::Miss
    }

    /// Probe with a byte address (convenience).
    pub fn access(&mut self, byte_addr: u64) -> AccessOutcome {
        self.access_line(self.line_of(byte_addr))
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters but keep contents (useful between measurement phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate all contents and counters.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheLevelSpec { size: 512, line: 64, assoc: 2, hit_ns: 1.0 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(8), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64), AccessOutcome::Miss); // next line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addrs 0, 4, 8 mod 4 == 0).
        let l0 = 0u64;
        let l1 = 4u64;
        let l2 = 8u64;
        assert_eq!(c.access_line(l0), AccessOutcome::Miss);
        assert_eq!(c.access_line(l1), AccessOutcome::Miss);
        assert_eq!(c.access_line(l0), AccessOutcome::Hit); // l0 now MRU
        assert_eq!(c.access_line(l2), AccessOutcome::Miss); // evicts l1
        assert_eq!(c.access_line(l0), AccessOutcome::Hit);
        assert_eq!(c.access_line(l1), AccessOutcome::Miss); // was evicted
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).collect(); // exactly capacity (8 lines)
        for &l in &lines {
            c.access_line(l);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &l in &lines {
                assert_eq!(c.access_line(l), AccessOutcome::Hit);
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn streaming_scan_pollutes() {
        let mut c = tiny();
        // Warm a small working set.
        for l in 0..4u64 {
            c.access_line(l * 4); // spread over sets... line addr l*4 -> set 0
        }
        // Stream a large range through the cache.
        for l in 100..200u64 {
            c.access_line(l);
        }
        c.reset_stats();
        // Original set-0 lines were evicted by the stream.
        let mut misses = 0;
        for l in 0..4u64 {
            if c.access_line(l * 4) == AccessOutcome::Miss {
                misses += 1;
            }
        }
        assert!(misses >= 2, "stream failed to pollute: {misses}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny();
        c.access(0);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }
}
