//! Analytic CPU cost model.
//!
//! CPU-side operators in this workspace execute for real on the host; this
//! model charges them *simulated* time on the paper's Xeon E5-2650L v3 from
//! their measured access counts and working-set sizes. The formulas encode
//! the mechanisms the paper's CPU discussion rests on (§2.1):
//!
//! * sequential scans are DRAM-bandwidth-bound, shared across active cores;
//! * random accesses pay latency, partially hidden by memory-level
//!   parallelism, with a cache-level blend chosen by working-set size
//!   (Shatdal et al. cache-consciousness);
//! * partitioning passes pay TLB penalties once the fanout exceeds TLB reach
//!   (Boncz et al.), which is why the radix join is multi-pass.

use crate::spec::CpuSpec;
use crate::time::SimTime;

/// Cost model for one CPU worker (one core) under a given degree of
/// parallelism.
///
/// Bandwidth shared resources (socket DRAM) are folded in per-worker: with
/// `workers` active on a socket, each sees `socket_bw / workers` (capped by
/// the single-core peak). This keeps the discrete-event executor simple —
/// every worker charges only its own clock.
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    spec: CpuSpec,
    /// Workers concurrently active on this worker's socket.
    workers_on_socket: usize,
}

impl CpuCostModel {
    /// Build a model for a worker on `spec`, with `workers_on_socket`
    /// concurrently active workers sharing the socket's DRAM bandwidth.
    pub fn new(spec: CpuSpec, workers_on_socket: usize) -> Self {
        CpuCostModel { spec, workers_on_socket: workers_on_socket.max(1) }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Effective sequential bandwidth available to this worker, bytes/s.
    pub fn worker_bw(&self) -> f64 {
        (self.spec.dram_bw / self.workers_on_socket as f64).min(self.spec.per_core_bw)
    }

    /// Time to stream-read `bytes` from DRAM.
    pub fn seq_read(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.worker_bw())
    }

    /// Time to stream-write `bytes` to DRAM (write-allocate costs ~1.5×:
    /// the line is read before being overwritten unless non-temporal stores
    /// are used; we assume regular stores for portability).
    pub fn seq_write(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(1.5 * bytes as f64 / self.worker_bw())
    }

    /// Time to stream-write `bytes` with non-temporal (streaming) stores.
    pub fn seq_write_nt(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.worker_bw())
    }

    /// Time for `n` scalar operations.
    pub fn compute(&self, n_ops: u64) -> SimTime {
        SimTime::from_secs(n_ops as f64 / (self.spec.clock_hz * self.spec.ipc))
    }

    /// Time for an element-wise SIMD pass over `n` 32-bit elements applying
    /// `ops_per_elem` vector operations.
    pub fn compute_simd(&self, n: u64, ops_per_elem: f64) -> SimTime {
        let lanes = self.spec.simd_lanes_32 as f64;
        SimTime::from_secs(
            n as f64 * ops_per_elem / lanes / (self.spec.clock_hz * self.spec.ipc),
        )
    }

    /// Expected cost of one random access into a structure of
    /// `working_set` bytes, in nanoseconds.
    ///
    /// The access distribution over cache levels follows the classic
    /// capacity blend: a uniformly random access hits level L with the
    /// probability that its line is resident there. DRAM-bound fractions are
    /// divided by the memory-level parallelism the core sustains; TLB misses
    /// are added once the working set exceeds TLB reach.
    pub fn random_access_ns(&self, working_set: u64) -> f64 {
        let ws = working_set.max(1) as f64;
        let s = &self.spec;
        let f_l1 = (s.l1d.size as f64 / ws).min(1.0);
        let f_l2 = ((s.l2.size as f64 / ws).min(1.0) - f_l1).max(0.0);
        // L3 is socket-shared; a worker competes with its peers for it.
        let l3_share = s.l3.size as f64 / self.workers_on_socket as f64;
        let f_l3 = ((l3_share / ws).min(1.0) - f_l1 - f_l2).max(0.0);
        let f_mem = (1.0 - f_l1 - f_l2 - f_l3).max(0.0);
        // Out-of-order execution overlaps independent probes; the exposed
        // cost at each level is its latency divided by the overlap the core
        // sustains there. DRAM-bound probes additionally move a whole cache
        // line each — the socket's random-access bandwidth floor (the CPU
        // flavour of the over-fetch the paper discusses for GPU L1).
        let l1_ns = s.l1d.hit_ns;
        let l2_ns = s.l2.hit_ns / 2.0;
        let l3_ns = s.l3.hit_ns / 3.0;
        let lat_ns = s.dram_latency_ns / s.mlp;
        let bw_floor_ns = s.l1d.line as f64 * self.workers_on_socket as f64 / s.dram_bw * 1e9;
        let mem_ns = lat_ns.max(bw_floor_ns);
        let mut ns = f_l1 * l1_ns + f_l2 * l2_ns + f_l3 * l3_ns + f_mem * mem_ns;
        // TLB: fraction of accesses missing the STLB (4 KiB pages).
        let tlb_reach = s.stlb.reach() as f64;
        if ws > tlb_reach {
            let miss_frac = 1.0 - tlb_reach / ws;
            ns += miss_frac * s.stlb.miss_ns / s.mlp;
        }
        ns
    }

    /// Time for `n` independent random accesses into `working_set` bytes.
    pub fn random_accesses(&self, n: u64, working_set: u64) -> SimTime {
        SimTime::from_ns(n as f64 * self.random_access_ns(working_set))
    }

    /// Time for one software-managed partitioning pass over `n` tuples of
    /// `tuple_bytes` with the given `fanout`.
    ///
    /// Reads are sequential; writes go to `fanout` open output buffers. While
    /// the fanout stays within TLB/cache reach the writes behave like
    /// buffered sequential stores. Beyond it every write risks a TLB miss and
    /// a cache conflict — exactly the effect that motivates multi-pass radix
    /// partitioning (Boncz et al. \[6\]).
    pub fn partition_pass(&self, n: u64, tuple_bytes: u64, fanout: usize) -> SimTime {
        let bytes = n * tuple_bytes;
        let read = self.seq_read(bytes);
        let hash = self.compute_simd(n, 3.0);
        let max_fanout = self.spec.max_partition_fanout();
        let write = if fanout <= max_fanout {
            // Buffered scatter: near-sequential stores plus buffer flushes.
            self.seq_write(bytes) * 1.15
        } else {
            // TLB-thrashing scatter: every tuple write pays a TLB penalty
            // fraction and loses store coalescing.
            let miss_frac = (1.0 - max_fanout as f64 / fanout as f64).clamp(0.0, 1.0);
            let tlb_ns = n as f64 * miss_frac * self.spec.stlb.miss_ns / self.spec.mlp;
            let latency_ns = n as f64 * miss_frac * (self.spec.dram_latency_ns / self.spec.mlp);
            self.seq_write(bytes) * 1.15 + SimTime::from_ns(tlb_ns + latency_ns)
        };
        read + hash + write
    }

    /// Time to build a chained hash table over `n` tuples whose table
    /// occupies `table_bytes`.
    pub fn ht_build(&self, n: u64, table_bytes: u64) -> SimTime {
        // Insert: hash + one random write (read-modify-write of bucket head).
        self.compute(n * 6) + self.random_accesses(n * 2, table_bytes)
    }

    /// Time to probe a chained hash table `n` times; `chain` is the average
    /// number of entries touched per probe; `table_bytes` its footprint.
    pub fn ht_probe(&self, n: u64, chain: f64, table_bytes: u64) -> SimTime {
        let accesses = (n as f64 * (1.0 + chain)).ceil() as u64;
        self.compute(n * 8) + self.random_accesses(accesses, table_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(workers: usize) -> CpuCostModel {
        CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), workers)
    }

    #[test]
    fn bandwidth_shared_across_workers() {
        let solo = model(1);
        let crowded = model(12);
        // One core cannot saturate the socket.
        assert!(solo.worker_bw() <= solo.spec().per_core_bw);
        // Twelve cores share the socket bandwidth.
        assert!(crowded.worker_bw() < solo.worker_bw());
        let t1 = solo.seq_read(1 << 30);
        let t12 = crowded.seq_read(1 << 30);
        assert!(t12 > t1);
    }

    #[test]
    fn random_access_cost_grows_with_working_set() {
        let m = model(12);
        let in_l1 = m.random_access_ns(16 << 10);
        let in_l2 = m.random_access_ns(128 << 10);
        let in_l3 = m.random_access_ns(1 << 20);
        let in_dram = m.random_access_ns(1 << 30);
        assert!(in_l1 < in_l2, "{in_l1} !< {in_l2}");
        assert!(in_l2 < in_l3, "{in_l2} !< {in_l3}");
        assert!(in_l3 < in_dram, "{in_l3} !< {in_dram}");
        // DRAM-resident probes should hide latency via MLP but still pay
        // more than any cache hit.
        assert!(in_dram > m.spec().l3.hit_ns * 0.3);
    }

    #[test]
    fn huge_working_set_pays_tlb() {
        let m = model(1);
        let no_tlb = m.random_access_ns(m.spec().stlb.reach() as u64);
        let tlb = m.random_access_ns(64 << 30);
        assert!(tlb > no_tlb * 1.2, "TLB penalty missing: {no_tlb} vs {tlb}");
    }

    #[test]
    fn partition_pass_cheap_within_fanout_budget() {
        let m = model(12);
        let n = 1 << 20;
        let ok = m.partition_pass(n, 8, m.spec().max_partition_fanout());
        let thrash = m.partition_pass(n, 8, 16 * m.spec().max_partition_fanout());
        assert!(thrash > ok * 1.5, "TLB thrash should dominate: ok={ok} thrash={thrash}");
    }

    #[test]
    fn probe_scales_with_chain_length() {
        let m = model(12);
        let short = m.ht_probe(1 << 20, 1.0, 1 << 30);
        let long = m.ht_probe(1 << 20, 4.0, 1 << 30);
        assert!(long > short * 1.5);
    }

    #[test]
    fn simd_beats_scalar() {
        let m = model(1);
        assert!(m.compute_simd(1 << 20, 1.0) < m.compute(1 << 20));
    }
}
