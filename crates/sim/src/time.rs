//! Simulated time.
//!
//! All experiment timing in this workspace is virtual: devices and links carry
//! clocks measured in [`SimTime`], and the discrete-event executor advances
//! them as operators charge cost-model-derived durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, stored as seconds.
///
/// `SimTime` is used both as an instant on a device clock and as a duration;
/// the arithmetic is identical and keeping one type avoids a zoo of
/// conversions in the cost models.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s.is_finite(), "non-finite SimTime: {s}");
        SimTime(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds as `f64`.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Microseconds as `f64`.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Nanoseconds as `f64`.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0.total_cmp(&other.0).is_ge() {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0.total_cmp(&other.0).is_le() {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// True if this is exactly time zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert!((t.as_secs() - 0.0015).abs() < 1e-12);
        assert!((t.as_us() - 1500.0).abs() < 1e-9);
        assert!((t.as_ns() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert!(((a + b).as_secs() - 2.5).abs() < 1e-12);
        assert!(((a - b).as_secs() - 1.5).abs() < 1e-12);
        assert!(((a * 2.0).as_secs() - 4.0).abs() < 1e-12);
        assert!(((a / 2.0).as_secs() - 1.0).abs() < 1e-12);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_saturating() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (0..4).map(|_| SimTime::from_ms(1.0)).sum();
        assert!((total.as_ms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_ms(2.0)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_us(2.0)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_ns(2.0)), "2.0ns");
    }
}
