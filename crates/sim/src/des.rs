//! Discrete-event primitives.
//!
//! The executor models every compute unit (CPU worker, GPU) and every
//! interconnect link as a [`Resource`] with a clock. Operators *acquire* a
//! resource for a cost-model-derived duration; query latency is the maximum
//! completion time over all resources. The simulation is deterministic —
//! a property the integration tests rely on.

use crate::time::SimTime;

/// A serially-used resource with an availability clock.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    free_at: SimTime,
    busy: SimTime,
}

impl Resource {
    /// New resource, free at time zero.
    pub fn new(name: impl Into<String>) -> Self {
        Resource { name: name.into(), free_at: SimTime::ZERO, busy: SimTime::ZERO }
    }

    /// The resource's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time the resource has been busy.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Occupy the resource for `dur`, starting no earlier than `ready`.
    /// Returns the `(start, end)` instants.
    pub fn acquire(&mut self, ready: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(ready);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        (start, end)
    }

    /// Advance the availability clock to at least `t` without accruing busy
    /// time (e.g. a worker blocked on an upstream dependency).
    pub fn wait_until(&mut self, t: SimTime) {
        self.free_at = self.free_at.max(t);
    }

    /// Reset the clock (new query).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.busy = SimTime::ZERO;
    }

    /// Utilisation relative to a makespan.
    pub fn utilisation(&self, makespan: SimTime) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy / makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_serialises() {
        let mut r = Resource::new("cpu0");
        let (s1, e1) = r.acquire(SimTime::ZERO, SimTime::from_ms(5.0));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1, SimTime::from_ms(5.0));
        // Second acquisition must wait for the first even if ready earlier.
        let (s2, e2) = r.acquire(SimTime::from_ms(1.0), SimTime::from_ms(2.0));
        assert_eq!(s2, SimTime::from_ms(5.0));
        assert_eq!(e2, SimTime::from_ms(7.0));
    }

    #[test]
    fn ready_after_free_starts_at_ready() {
        let mut r = Resource::new("gpu0");
        r.acquire(SimTime::ZERO, SimTime::from_ms(1.0));
        let (s, _) = r.acquire(SimTime::from_ms(10.0), SimTime::from_ms(1.0));
        assert_eq!(s, SimTime::from_ms(10.0));
    }

    #[test]
    fn busy_time_and_utilisation() {
        let mut r = Resource::new("link");
        r.acquire(SimTime::ZERO, SimTime::from_ms(2.0));
        r.acquire(SimTime::from_ms(6.0), SimTime::from_ms(2.0));
        assert_eq!(r.busy_time(), SimTime::from_ms(4.0));
        let u = r.utilisation(SimTime::from_ms(8.0));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wait_until_does_not_accrue_busy() {
        let mut r = Resource::new("w");
        r.wait_until(SimTime::from_ms(3.0));
        assert_eq!(r.free_at(), SimTime::from_ms(3.0));
        assert_eq!(r.busy_time(), SimTime::ZERO);
    }

    #[test]
    fn reset_clears() {
        let mut r = Resource::new("w");
        r.acquire(SimTime::ZERO, SimTime::from_ms(1.0));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.busy_time(), SimTime::ZERO);
    }
}
