//! # hape-sim — hardware simulation substrate
//!
//! The paper evaluates HAPE on a 2-socket Xeon + 2× GTX 1080 server. That
//! hardware is not available here, so this crate provides the substitution
//! substrate described in `DESIGN.md` §2: calibrated performance models of
//! the CPUs, GPUs and PCIe interconnects that the rest of the workspace
//! executes against.
//!
//! The models are *mechanistic*, not curve-fits: algorithms run for real over
//! real data, and time is charged from the actual memory-access behaviour
//! (coalescing, bank conflicts, cache capacity, TLB reach, link bandwidth).
//! The crate offers two fidelities:
//!
//! * [`Fidelity::Exact`] — tag-array set-associative cache simulation fed by
//!   per-warp address traces (used for the Figure 5 scratchpad-vs-L1 study);
//! * [`Fidelity::Analytic`] — closed-form hit-rate/bandwidth formulas over
//!   measured access counts (used for bulk operators so that 100M-tuple
//!   sweeps stay tractable).
//!
//! All times are **simulated** ([`SimTime`]); wall-clock never enters any
//! reported number.

#![forbid(unsafe_code)]

pub mod cache;
pub mod cpu;
pub mod des;
pub mod gpu;
pub mod interconnect;
pub mod spec;
pub mod time;
pub mod topology;

pub use cache::{AccessOutcome, CacheStats, SetAssocCache};
pub use cpu::CpuCostModel;
pub use des::Resource;
pub use gpu::{
    BlockCtx, Fidelity, GpuBuffer, GpuMemPool, GpuSim, KernelReport, LaunchConfig, Region,
};
pub use interconnect::Link;
pub use spec::{CacheLevelSpec, CpuSpec, GpuSpec, TlbSpec};
pub use time::SimTime;
pub use topology::{DeviceId, MemNode, Server};

/// Commonly used items.
pub mod prelude {
    pub use crate::cpu::CpuCostModel;
    pub use crate::gpu::{Fidelity, GpuSim, LaunchConfig};
    pub use crate::spec::{CpuSpec, GpuSpec};
    pub use crate::time::SimTime;
    pub use crate::topology::{DeviceId, MemNode, Server};
}
