//! String dictionaries.
//!
//! Analytical engines (and both the paper's systems) dictionary-encode
//! strings so that operators work on fixed-width codes; only final result
//! rendering touches the dictionary.

use std::collections::HashMap;

/// An append-only string dictionary mapping codes to strings.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of values (duplicates collapse).
    pub fn from_values<'a>(values: impl IntoIterator<Item = &'a str>) -> (Self, Vec<u32>) {
        let mut d = Self::new();
        let codes = values.into_iter().map(|v| d.intern(v)).collect();
        (d, codes)
    }

    /// Intern a string, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), c);
        c
    }

    /// Look up a code.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.strings.get(code as usize).map(String::as_str)
    }

    /// Look up a string's code without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut d = Dictionary::new();
        let a = d.intern("ASIA");
        let b = d.intern("EUROPE");
        let a2 = d.intern("ASIA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_both_ways() {
        let (d, codes) = Dictionary::from_values(["x", "y", "x"]);
        assert_eq!(codes, vec![0, 1, 0]);
        assert_eq!(d.get(0), Some("x"));
        assert_eq!(d.get(1), Some("y"));
        assert_eq!(d.get(2), None);
        assert_eq!(d.code_of("y"), Some(1));
        assert_eq!(d.code_of("z"), None);
    }

    #[test]
    fn iter_in_code_order() {
        let (d, _) = Dictionary::from_values(["b", "a"]);
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v, vec![(0, "b"), (1, "a")]);
    }
}
