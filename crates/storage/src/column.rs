//! Typed columns with zero-copy slicing.

use std::sync::Arc;

use crate::dict::Dictionary;
use crate::table::DataType;

/// Owned, typed column storage. Shared between [`Column`] views via `Arc`.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 32-bit integers (also dates, stored as days since 1970-01-01).
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The shared dictionary.
        dict: Arc<Dictionary>,
    },
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::I32(_) => DataType::I32,
            ColumnData::I64(_) => DataType::I64,
            ColumnData::F64(_) => DataType::F64,
            ColumnData::Str { .. } => DataType::Str,
        }
    }
}

/// A view over a (possibly shared) [`ColumnData`].
///
/// Slicing is O(1): views share the backing allocation. This is what lets
/// the engine split tables into packets without copying.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    off: usize,
    len: usize,
}

impl Column {
    /// Wrap owned data into a full-length view.
    pub fn new(data: ColumnData) -> Self {
        let len = data.len();
        Column { data: Arc::new(data), off: 0, len }
    }

    /// Build from a vector of `i32`.
    pub fn from_i32(v: Vec<i32>) -> Self {
        Self::new(ColumnData::I32(v))
    }

    /// Build from a vector of `i64`.
    pub fn from_i64(v: Vec<i64>) -> Self {
        Self::new(ColumnData::I64(v))
    }

    /// Build from a vector of `f64`.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Self::new(ColumnData::F64(v))
    }

    /// Build a dictionary-encoded string column.
    pub fn from_strs<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        let (dict, codes) = Dictionary::from_values(values);
        Self::new(ColumnData::Str { codes, dict: Arc::new(dict) })
    }

    /// Build a string column from codes and a shared dictionary.
    pub fn from_codes(codes: Vec<u32>, dict: Arc<Dictionary>) -> Self {
        Self::new(ColumnData::Str { codes, dict })
    }

    /// Number of rows in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Bytes of payload this view covers (what a transfer would move).
    pub fn byte_len(&self) -> u64 {
        (self.len * self.data_type().width()) as u64
    }

    /// O(1) sub-view. Panics if out of range.
    pub fn slice(&self, off: usize, len: usize) -> Column {
        assert!(off + len <= self.len, "slice {off}+{len} out of {}", self.len);
        Column { data: Arc::clone(&self.data), off: self.off + off, len }
    }

    /// The `i32` values of this view. Panics on type mismatch.
    pub fn as_i32(&self) -> &[i32] {
        match &*self.data {
            ColumnData::I32(v) => &v[self.off..self.off + self.len],
            other => panic!("expected I32 column, got {:?}", other.data_type()),
        }
    }

    /// The `i64` values of this view. Panics on type mismatch.
    pub fn as_i64(&self) -> &[i64] {
        match &*self.data {
            ColumnData::I64(v) => &v[self.off..self.off + self.len],
            other => panic!("expected I64 column, got {:?}", other.data_type()),
        }
    }

    /// The `f64` values of this view. Panics on type mismatch.
    pub fn as_f64(&self) -> &[f64] {
        match &*self.data {
            ColumnData::F64(v) => &v[self.off..self.off + self.len],
            other => panic!("expected F64 column, got {:?}", other.data_type()),
        }
    }

    /// The dictionary codes of this view. Panics on type mismatch.
    pub fn as_codes(&self) -> &[u32] {
        match &*self.data {
            ColumnData::Str { codes, .. } => &codes[self.off..self.off + self.len],
            other => panic!("expected Str column, got {:?}", other.data_type()),
        }
    }

    /// The dictionary, for string columns.
    pub fn dict(&self) -> Option<&Arc<Dictionary>> {
        match &*self.data {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Materialise the rows selected by `sel` (indices into this view) into
    /// a new owned column.
    pub fn take(&self, sel: &[u32]) -> Column {
        match &*self.data {
            ColumnData::I32(_) => {
                let src = self.as_i32();
                Column::from_i32(sel.iter().map(|&i| src[i as usize]).collect())
            }
            ColumnData::I64(_) => {
                let src = self.as_i64();
                Column::from_i64(sel.iter().map(|&i| src[i as usize]).collect())
            }
            ColumnData::F64(_) => {
                let src = self.as_f64();
                Column::from_f64(sel.iter().map(|&i| src[i as usize]).collect())
            }
            ColumnData::Str { dict, .. } => {
                let src = self.as_codes();
                Column::from_codes(
                    sel.iter().map(|&i| src[i as usize]).collect(),
                    Arc::clone(dict),
                )
            }
        }
    }

    /// Concatenate a sequence of same-typed columns into one owned column.
    pub fn concat(parts: &[Column]) -> Column {
        assert!(!parts.is_empty(), "concat of zero columns");
        let dt = parts[0].data_type();
        match dt {
            DataType::I32 | DataType::Date => {
                let mut v = Vec::with_capacity(parts.iter().map(Column::len).sum());
                for p in parts {
                    v.extend_from_slice(p.as_i32());
                }
                Column::from_i32(v)
            }
            DataType::I64 => {
                let mut v = Vec::with_capacity(parts.iter().map(Column::len).sum());
                for p in parts {
                    v.extend_from_slice(p.as_i64());
                }
                Column::from_i64(v)
            }
            DataType::F64 => {
                let mut v = Vec::with_capacity(parts.iter().map(Column::len).sum());
                for p in parts {
                    v.extend_from_slice(p.as_f64());
                }
                Column::from_f64(v)
            }
            DataType::Str => {
                let dict = Arc::clone(parts[0].dict().expect("str column without dict"));
                let mut v = Vec::with_capacity(parts.iter().map(Column::len).sum());
                for p in parts {
                    assert!(
                        Arc::ptr_eq(&dict, p.dict().expect("str column without dict")),
                        "concat of string columns with different dictionaries"
                    );
                    v.extend_from_slice(p.as_codes());
                }
                Column::from_codes(v, dict)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let c = Column::from_i32((0..100).collect());
        let s = c.slice(10, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.as_i32()[0], 10);
        assert_eq!(s.as_i32()[19], 29);
        // Nested slicing composes offsets.
        let s2 = s.slice(5, 5);
        assert_eq!(s2.as_i32(), &[15, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn slice_out_of_range_panics() {
        Column::from_i32(vec![1, 2, 3]).slice(2, 2);
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn type_mismatch_panics() {
        Column::from_i32(vec![1]).as_i64();
    }

    #[test]
    fn byte_len_by_type() {
        assert_eq!(Column::from_i32(vec![0; 10]).byte_len(), 40);
        assert_eq!(Column::from_i64(vec![0; 10]).byte_len(), 80);
        assert_eq!(Column::from_f64(vec![0.0; 10]).byte_len(), 80);
        assert_eq!(Column::from_strs(["a", "b"]).byte_len(), 8);
    }

    #[test]
    fn take_gathers() {
        let c = Column::from_i32(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 0, 0]);
        assert_eq!(t.as_i32(), &[40, 10, 10]);
    }

    #[test]
    fn take_respects_view_offset() {
        let c = Column::from_i32((0..10).collect()).slice(5, 5);
        let t = c.take(&[0, 4]);
        assert_eq!(t.as_i32(), &[5, 9]);
    }

    #[test]
    fn concat_round_trips() {
        let c = Column::from_i32((0..10).collect());
        let parts = vec![c.slice(0, 4), c.slice(4, 6)];
        let cc = Column::concat(&parts);
        assert_eq!(cc.as_i32(), c.as_i32());
    }

    #[test]
    fn string_columns_share_dict() {
        let c = Column::from_strs(["ASIA", "EUROPE", "ASIA"]);
        assert_eq!(c.as_codes(), &[0, 1, 0]);
        let s = c.slice(1, 2);
        assert_eq!(s.as_codes(), &[1, 0]);
        assert_eq!(s.dict().unwrap().get(1), Some("EUROPE"));
    }
}
