//! Schemas, batches (packets) and tables.

use hape_sim::topology::MemNode;

use crate::column::Column;

/// Logical column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// Date as days since epoch (physically `i32`).
    Date,
    /// Dictionary-encoded string (physically `u32` codes).
    Str,
}

impl DataType {
    /// Physical width in bytes of one value.
    pub fn width(&self) -> usize {
        match self {
            DataType::I32 | DataType::Date | DataType::Str => 4,
            DataType::I64 | DataType::F64 => 8,
        }
    }
}

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered set of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(fields: impl IntoIterator<Item = (impl Into<String>, DataType)>) -> Self {
        Schema { fields: fields.into_iter().map(|(n, t)| Field::new(n, t)).collect() }
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Type of a field by name.
    pub fn dtype_of(&self, name: &str) -> Option<DataType> {
        self.field(name).map(|f| f.dtype)
    }

    /// True when a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Bytes per row.
    pub fn row_width(&self) -> usize {
        self.fields.iter().map(|f| f.dtype.width()).sum()
    }
}

/// A batch of rows — the engine's unit of data flow (the paper's *packet*).
///
/// Packets may carry metadata (partition/hash tags) set by producers so that
/// HetExchange routers can take routing decisions *without touching the
/// contents* — the data-packing trait of §3.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The columns; all the same length.
    pub columns: Vec<Column>,
    /// Partition tag: every row of this packet belongs to this partition
    /// (set by partitioning producers; consumed by hash-based routing).
    pub partition: Option<u32>,
}

impl Batch {
    /// Build from columns (must agree on length).
    pub fn new(columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            assert!(columns.iter().all(|c| c.len() == n), "ragged batch");
        }
        Batch { columns, partition: None }
    }

    /// An empty batch with no columns.
    pub fn empty() -> Self {
        Batch { columns: Vec::new(), partition: None }
    }

    /// Attach a partition tag (data-packing trait).
    pub fn with_partition(mut self, p: u32) -> Self {
        self.partition = Some(p);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Total payload bytes (what a `mem-move` would transfer).
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(Column::byte_len).sum()
    }

    /// O(1) row-range view.
    pub fn slice(&self, off: usize, len: usize) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.slice(off, len)).collect(),
            partition: self.partition,
        }
    }

    /// Split into packets of at most `rows_per_packet` rows (views).
    pub fn split(&self, rows_per_packet: usize) -> Vec<Batch> {
        assert!(rows_per_packet > 0);
        let n = self.rows();
        let mut out = Vec::with_capacity(n.div_ceil(rows_per_packet));
        let mut off = 0;
        while off < n {
            let len = rows_per_packet.min(n - off);
            out.push(self.slice(off, len));
            off += len;
        }
        out
    }

    /// Column by index.
    pub fn col(&self, i: usize) -> &Column {
        &self.columns[i]
    }
}

/// A named table: a schema, one batch of data, and a placement.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// The schema.
    pub schema: Schema,
    /// The data.
    pub data: Batch,
    /// Which memory node the table resides on.
    pub mem_node: MemNode,
}

impl Table {
    /// Build a CPU-resident table on socket 0.
    pub fn new(name: impl Into<String>, schema: Schema, data: Batch) -> Self {
        assert_eq!(schema.len(), data.columns.len(), "schema/data arity mismatch");
        for (f, c) in schema.fields.iter().zip(&data.columns) {
            let physical_match = match f.dtype {
                DataType::Date => {
                    c.data_type() == DataType::I32 || c.data_type() == DataType::Date
                }
                other => {
                    c.data_type() == other
                        || (other == DataType::I32 && c.data_type() == DataType::Date)
                }
            };
            assert!(
                physical_match,
                "column {} type mismatch: {:?} vs {:?}",
                f.name,
                f.dtype,
                c.data_type()
            );
        }
        Table { name: name.into(), schema, data, mem_node: MemNode::CpuDram(0) }
    }

    /// Set the placement.
    pub fn on(mut self, node: MemNode) -> Self {
        self.mem_node = node;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.data.bytes()
    }

    /// A new table containing only the named columns (zero-copy views) —
    /// what a columnar scan reads when a query references a column subset.
    /// Panics on unknown columns; [`Table::try_project`] is the fallible
    /// variant query lowering uses.
    pub fn project(&self, cols: &[&str]) -> Table {
        self.try_project(cols)
            .unwrap_or_else(|c| panic!("no column {c} in table {}", self.name))
    }

    /// Fallible projection: returns the first unknown column name as the
    /// error.
    pub fn try_project(&self, cols: &[&str]) -> Result<Table, String> {
        let mut fields = Vec::with_capacity(cols.len());
        let mut data = Vec::with_capacity(cols.len());
        for &c in cols {
            let i = self.schema.index_of(c).ok_or_else(|| c.to_string())?;
            fields.push(self.schema.fields[i].clone());
            data.push(self.data.col(i).clone());
        }
        Ok(Table {
            name: self.name.clone(),
            schema: Schema { fields },
            data: Batch::new(data),
            mem_node: self.mem_node,
        })
    }

    /// Column view by name. Panics if absent.
    pub fn column(&self, name: &str) -> &Column {
        let i = self
            .schema
            .index_of(name)
            .unwrap_or_else(|| panic!("no column {name} in table {}", self.name));
        self.data.col(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_batch(n: usize) -> Batch {
        Batch::new(vec![
            Column::from_i32((0..n as i32).collect()),
            Column::from_i64((0..n as i64).collect()),
        ])
    }

    #[test]
    fn batch_geometry() {
        let b = two_col_batch(10);
        assert_eq!(b.rows(), 10);
        assert_eq!(b.bytes(), 10 * (4 + 8));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        Batch::new(vec![Column::from_i32(vec![1]), Column::from_i32(vec![1, 2])]);
    }

    #[test]
    fn split_into_packets() {
        let b = two_col_batch(10);
        let packets = b.split(4);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].rows(), 4);
        assert_eq!(packets[2].rows(), 2);
        // Views, not copies: values line up.
        assert_eq!(packets[1].col(0).as_i32(), &[4, 5, 6, 7]);
    }

    #[test]
    fn partition_tag_propagates_through_slice() {
        let b = two_col_batch(8).with_partition(3);
        assert_eq!(b.slice(0, 4).partition, Some(3));
    }

    #[test]
    fn table_lookup_by_name() {
        let schema = Schema::new([("k", DataType::I32), ("v", DataType::I64)]);
        let t = Table::new("r", schema, two_col_batch(5));
        assert_eq!(t.column("v").as_i64().len(), 5);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.schema.row_width(), 12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn schema_arity_checked() {
        let schema = Schema::new([("k", DataType::I32)]);
        Table::new("r", schema, two_col_batch(5));
    }

    #[test]
    fn placement_tag() {
        let schema = Schema::new([("k", DataType::I32), ("v", DataType::I64)]);
        let t = Table::new("r", schema, two_col_batch(5)).on(MemNode::GpuDram(1));
        assert_eq!(t.mem_node, MemNode::GpuDram(1));
    }
}
