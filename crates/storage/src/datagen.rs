//! Data generators for the paper's micro-benchmarks.
//!
//! §6.2: "two equally-sized tables, each with two 4-byte columns: a key and
//! a payload … Both tables have exactly the same keys" — [`gen_key_fk_table`].
//!
//! Figure 5 additionally requires that "all produced partitions have exactly
//! the same size" under radix partitioning — [`gen_balanced_partition_keys`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::table::{Batch, DataType, Schema, Table};

/// A pair of join inputs with a known expected match count.
#[derive(Debug, Clone)]
pub struct JoinTablePair {
    /// Build side.
    pub r: Table,
    /// Probe side.
    pub s: Table,
    /// Number of output tuples an equi-join on `k` must produce.
    pub expected_matches: u64,
}

/// A shuffled permutation of `0..n` as `i32` keys.
pub fn gen_unique_keys(n: usize, seed: u64) -> Vec<i32> {
    let mut keys: Vec<i32> = (0..n as i32).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// `n` uniform values in `[0, max)`.
pub fn gen_uniform_i32(n: usize, max: i32, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

/// `n` Zipf-distributed values over `[0, universe)` with exponent `theta`.
///
/// Uses the classic CDF-inversion approximation; `theta = 0` degenerates to
/// uniform. Used to exercise the co-processing join's skew guard (the paper
/// assumes "no single key for which the corresponding tuples do not fit in
/// GPU memory", §5).
pub fn gen_zipf_i32(n: usize, universe: usize, theta: f64, seed: u64) -> Vec<i32> {
    assert!(universe > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    if theta <= 0.0 {
        return (0..n).map(|_| rng.gen_range(0..universe as i32)).collect();
    }
    // Precompute the harmonic normaliser.
    let zeta: f64 = (1..=universe).map(|k| 1.0 / (k as f64).powf(theta)).sum();
    // Inverse-CDF sampling over a precomputed cumulative table (universe is
    // modest in tests; for large universes use the bisection on the fly).
    let mut cdf = Vec::with_capacity(universe);
    let mut acc = 0.0;
    for k in 1..=universe {
        acc += 1.0 / (k as f64).powf(theta) / zeta;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u) as i32
        })
        .collect()
}

/// Keys for `n` tuples such that radix partitioning on the low
/// `fanout_bits` bits yields *exactly equal* partition sizes
/// (requires `fanout_bits` to divide `n` evenly).
pub fn gen_balanced_partition_keys(n: usize, fanout_bits: u32, seed: u64) -> Vec<i32> {
    let fanout = 1usize << fanout_bits;
    assert!(
        n.is_multiple_of(fanout),
        "{n} tuples do not split evenly into {fanout} partitions"
    );
    let per = n / fanout;
    let mut keys: Vec<i32> = (0..n)
        .map(|i| {
            let p = i % fanout; // low bits = partition id
            let hi = i / fanout;
            ((hi << fanout_bits) | p) as i32
        })
        .collect();
    debug_assert!(per > 0);
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// The paper's §6.2 microbenchmark inputs: two tables of `rows` tuples with
/// identical (unique, shuffled) key sets and 4-byte payloads, so the join
/// output has exactly `rows` tuples.
pub fn gen_key_fk_table(keys: usize, rows: usize, seed: u64) -> Table {
    assert!(rows >= keys && rows.is_multiple_of(keys), "rows must be a multiple of keys");
    let mut k = Vec::with_capacity(rows);
    for rep in 0..rows / keys {
        k.extend(gen_unique_keys(keys, seed.wrapping_add(rep as u64)));
    }
    let payload: Vec<i32> = (0..rows as i32).collect();
    let schema = Schema::new([("k", DataType::I32), ("v", DataType::I32)]);
    Table::new(
        format!("t{seed}"),
        schema,
        Batch::new(vec![Column::from_i32(k), Column::from_i32(payload)]),
    )
}

/// Build the §6.2 pair: equal-sized tables with the same unique key set.
pub fn gen_join_pair(rows: usize, seed: u64) -> JoinTablePair {
    let r = gen_key_fk_table(rows, rows, seed);
    let s = gen_key_fk_table(rows, rows, seed.wrapping_add(1000));
    JoinTablePair { r, s, expected_matches: rows as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn unique_keys_are_a_permutation() {
        let keys = gen_unique_keys(1000, 7);
        let set: HashSet<i32> = keys.iter().copied().collect();
        assert_eq!(set.len(), 1000);
        assert_eq!(*keys.iter().min().unwrap(), 0);
        assert_eq!(*keys.iter().max().unwrap(), 999);
        // Deterministic under the same seed, different under another.
        assert_eq!(keys, gen_unique_keys(1000, 7));
        assert_ne!(keys, gen_unique_keys(1000, 8));
    }

    #[test]
    fn balanced_keys_balance_partitions() {
        let bits = 4;
        let n = 1 << 12;
        let keys = gen_balanced_partition_keys(n, bits, 3);
        let mut counts = vec![0usize; 1 << bits];
        for k in &keys {
            counts[(*k as usize) & ((1 << bits) - 1)] += 1;
        }
        assert!(counts.iter().all(|&c| c == n >> bits), "{counts:?}");
        // Keys are unique (it is still a valid join key set).
        let set: HashSet<i32> = keys.iter().copied().collect();
        assert_eq!(set.len(), n);
    }

    #[test]
    fn join_pair_has_same_key_sets() {
        let pair = gen_join_pair(512, 42);
        let rk: HashSet<i32> = pair.r.column("k").as_i32().iter().copied().collect();
        let sk: HashSet<i32> = pair.s.column("k").as_i32().iter().copied().collect();
        assert_eq!(rk, sk);
        assert_eq!(pair.expected_matches, 512);
    }

    #[test]
    fn zipf_skews_towards_small_values() {
        let v = gen_zipf_i32(20_000, 1000, 1.0, 9);
        let head = v.iter().filter(|&&x| x < 10).count();
        let tail = v.iter().filter(|&&x| x >= 990).count();
        assert!(head > tail * 5, "no skew: head={head} tail={tail}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform_range() {
        let v = gen_zipf_i32(1000, 50, 0.0, 9);
        assert!(v.iter().all(|&x| (0..50).contains(&x)));
    }

    #[test]
    fn uniform_stays_in_range() {
        let v = gen_uniform_i32(1000, 10, 1);
        assert!(v.iter().all(|&x| (0..10).contains(&x)));
    }
}
