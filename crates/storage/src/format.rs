//! Binary columnar file format.
//!
//! The paper evaluates over "a binary columnar format for the inputs"
//! (§6.4). This module implements a compact format:
//!
//! ```text
//! magic "HAPE" | version u32 | name | n_cols u32 | n_rows u64
//!   per column: name | dtype u8 | payload
//!   Str columns: codes payload + dictionary (n u32, then length-prefixed strings)
//! ```
//!
//! All integers little-endian; strings length-prefixed (u32).

use std::io::{self, Read, Write};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::column::{Column, ColumnData};
use crate::dict::Dictionary;
use crate::table::{Batch, DataType, Field, Schema, Table};

const MAGIC: &[u8; 4] = b"HAPE";
const VERSION: u32 = 1;

/// Errors arising when decoding the binary format.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input bytes.
    Corrupt(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "io error: {e}"),
            FormatError::Corrupt(m) => write!(f, "corrupt table file: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, FormatError> {
    if buf.remaining() < 4 {
        return Err(FormatError::Corrupt("truncated string length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(FormatError::Corrupt("truncated string payload".into()));
    }
    let bytes = buf.copy_to_bytes(n);
    String::from_utf8(bytes.to_vec()).map_err(|_| FormatError::Corrupt("invalid utf-8".into()))
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::I32 => 0,
        DataType::I64 => 1,
        DataType::F64 => 2,
        DataType::Date => 3,
        DataType::Str => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType, FormatError> {
    Ok(match tag {
        0 => DataType::I32,
        1 => DataType::I64,
        2 => DataType::F64,
        3 => DataType::Date,
        4 => DataType::Str,
        t => return Err(FormatError::Corrupt(format!("unknown dtype tag {t}"))),
    })
}

/// Serialise a table to a writer.
pub fn write_table(table: &Table, w: &mut impl Write) -> Result<(), FormatError> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_str(&mut buf, &table.name);
    buf.put_u32_le(table.schema.len() as u32);
    buf.put_u64_le(table.rows() as u64);
    for (field, col) in table.schema.fields.iter().zip(&table.data.columns) {
        put_str(&mut buf, &field.name);
        buf.put_u8(dtype_tag(field.dtype));
        match field.dtype {
            DataType::I32 | DataType::Date => {
                for v in col.as_i32() {
                    buf.put_i32_le(*v);
                }
            }
            DataType::I64 => {
                for v in col.as_i64() {
                    buf.put_i64_le(*v);
                }
            }
            DataType::F64 => {
                for v in col.as_f64() {
                    buf.put_f64_le(*v);
                }
            }
            DataType::Str => {
                for c in col.as_codes() {
                    buf.put_u32_le(*c);
                }
                let dict = col.dict().expect("str column without dict");
                buf.put_u32_le(dict.len() as u32);
                for (_, s) in dict.iter() {
                    put_str(&mut buf, s);
                }
            }
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialise a table from a reader.
pub fn read_table(r: &mut impl Read) -> Result<Table, FormatError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 8 {
        return Err(FormatError::Corrupt("short header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(FormatError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(FormatError::Corrupt(format!("unsupported version {version}")));
    }
    let name = get_str(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(FormatError::Corrupt("short table header".into()));
    }
    let n_cols = buf.get_u32_le() as usize;
    let n_rows = buf.get_u64_le() as usize;
    let mut fields = Vec::with_capacity(n_cols);
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let col_name = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(FormatError::Corrupt("missing dtype".into()));
        }
        let dtype = tag_dtype(buf.get_u8())?;
        let need = n_rows * dtype.width();
        if buf.remaining() < need {
            return Err(FormatError::Corrupt(format!(
                "column {col_name}: need {need} bytes, have {}",
                buf.remaining()
            )));
        }
        let col = match dtype {
            DataType::I32 | DataType::Date => {
                let v: Vec<i32> = (0..n_rows).map(|_| buf.get_i32_le()).collect();
                Column::new(ColumnData::I32(v))
            }
            DataType::I64 => {
                let v: Vec<i64> = (0..n_rows).map(|_| buf.get_i64_le()).collect();
                Column::new(ColumnData::I64(v))
            }
            DataType::F64 => {
                let v: Vec<f64> = (0..n_rows).map(|_| buf.get_f64_le()).collect();
                Column::new(ColumnData::F64(v))
            }
            DataType::Str => {
                let codes: Vec<u32> = (0..n_rows).map(|_| buf.get_u32_le()).collect();
                if buf.remaining() < 4 {
                    return Err(FormatError::Corrupt("missing dictionary".into()));
                }
                let n_dict = buf.get_u32_le() as usize;
                let mut dict = Dictionary::new();
                for _ in 0..n_dict {
                    let s = get_str(&mut buf)?;
                    dict.intern(&s);
                }
                if codes.iter().any(|&c| c as usize >= dict.len()) {
                    return Err(FormatError::Corrupt("code out of dictionary range".into()));
                }
                Column::from_codes(codes, Arc::new(dict))
            }
        };
        fields.push(Field::new(col_name, dtype));
        columns.push(col);
    }
    Ok(Table::new(name, Schema { fields }, Batch::new(columns)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let schema = Schema::new([
            ("k", DataType::I32),
            ("amount", DataType::F64),
            ("when", DataType::Date),
            ("region", DataType::Str),
            ("big", DataType::I64),
        ]);
        Table::new(
            "sample",
            schema,
            Batch::new(vec![
                Column::from_i32(vec![1, 2, 3]),
                Column::from_f64(vec![1.5, -2.25, 0.0]),
                Column::from_i32(vec![10_000, 10_001, 10_002]),
                Column::from_strs(["ASIA", "EUROPE", "ASIA"]),
                Column::from_i64(vec![i64::MIN, 0, i64::MAX]),
            ]),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_table();
        let mut bytes = Vec::new();
        write_table(&t, &mut bytes).unwrap();
        let rt = read_table(&mut bytes.as_slice()).unwrap();
        assert_eq!(rt.name, "sample");
        assert_eq!(rt.schema, t.schema);
        assert_eq!(rt.rows(), 3);
        assert_eq!(rt.column("k").as_i32(), t.column("k").as_i32());
        assert_eq!(rt.column("amount").as_f64(), t.column("amount").as_f64());
        assert_eq!(rt.column("when").as_i32(), t.column("when").as_i32());
        assert_eq!(rt.column("big").as_i64(), t.column("big").as_i64());
        assert_eq!(rt.column("region").as_codes(), t.column("region").as_codes());
        assert_eq!(rt.column("region").dict().unwrap().get(1), Some("EUROPE"));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Vec::new();
        write_table(&sample_table(), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            read_table(&mut bytes.as_slice()),
            Err(FormatError::Corrupt(m)) if m.contains("magic")
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut bytes = Vec::new();
        write_table(&sample_table(), &mut bytes).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(read_table(&mut &cut[..]).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new([("k", DataType::I32)]);
        let t = Table::new("empty", schema, Batch::new(vec![Column::from_i32(vec![])]));
        let mut bytes = Vec::new();
        write_table(&t, &mut bytes).unwrap();
        let rt = read_table(&mut bytes.as_slice()).unwrap();
        assert_eq!(rt.rows(), 0);
    }
}
