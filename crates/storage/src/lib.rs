//! # hape-storage — columnar storage substrate
//!
//! In-memory columnar tables with cheap zero-copy slicing (the unit of
//! engine-level data flow is a [`Batch`] — the paper's "packet"), dictionary
//! encoding for strings, placement tags over the server's memory nodes, a
//! binary columnar file format (the paper's input format, §6.4), and the
//! data generators used by the evaluation (uniform/shuffled join keys,
//! partition-balanced keys for the Figure 5 study, Zipf for skew tests).
//!
//! Every storage type is `Send + Sync` by construction (Arc-backed shared
//! immutable data, no interior mutability): the engine's parallel data
//! plane shares [`Column`] views, [`Batch`] packets and whole tables
//! across its worker-pool threads without copies or locks. The assertions
//! below are compile-time guarantees, not tests — losing them (e.g. by
//! introducing an `Rc` or a `Cell`) breaks the build, not CI.

#![forbid(unsafe_code)]

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<column::Column>();
    assert_send_sync::<column::ColumnData>();
    assert_send_sync::<dict::Dictionary>();
    assert_send_sync::<table::Batch>();
    assert_send_sync::<table::Table>();
    assert_send_sync::<table::Schema>();
};

pub mod column;
pub mod datagen;
pub mod dict;
pub mod format;
pub mod table;

pub use column::{Column, ColumnData};
pub use datagen::{
    gen_balanced_partition_keys, gen_key_fk_table, gen_uniform_i32, gen_unique_keys,
    gen_zipf_i32, JoinTablePair,
};
pub use dict::Dictionary;
pub use format::{read_table, write_table, FormatError};
pub use table::{Batch, DataType, Field, Schema, Table};

/// Commonly used items.
pub mod prelude {
    pub use crate::column::{Column, ColumnData};
    pub use crate::datagen::gen_key_fk_table;
    pub use crate::table::{Batch, DataType, Field, Schema, Table};
}
