//! Bench target regenerating Figure 8 (TPC-H CPU/GPU/hybrid + baselines).

fn main() {
    let fig = hape_bench::figures::fig8(0.05);
    hape_bench::figures::print_figure(&fig);
}
