//! Criterion micro-benchmarks of the hot building blocks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hape_join::common::ChainedTable;
use hape_join::partition::radix_partition_pass;
use hape_join::hash32;
use hape_sim::cache::SetAssocCache;
use hape_sim::gpu::{atomic_cycles, conflict_cycles, distinct_chunks};
use hape_sim::spec::CacheLevelSpec;
use hape_storage::datagen::gen_unique_keys;

fn bench_hash(c: &mut Criterion) {
    let keys = gen_unique_keys(1 << 16, 1);
    let mut g = c.benchmark_group("hash32");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("fibonacci", |b| {
        b.iter(|| keys.iter().map(|&k| hash32(black_box(k), 16) as u64).sum::<u64>())
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let keys = gen_unique_keys(1 << 18, 2);
    let vals: Vec<u32> = (0..keys.len() as u32).collect();
    let mut g = c.benchmark_group("radix_partition_pass");
    g.throughput(Throughput::Elements(keys.len() as u64));
    for bits in [4u32, 8] {
        g.bench_function(format!("fanout_{}", 1 << bits), |b| {
            b.iter(|| radix_partition_pass(black_box(&keys), &vals, 0, bits))
        });
    }
    g.finish();
}

fn bench_chained_table(c: &mut Criterion) {
    let keys = gen_unique_keys(1 << 16, 3);
    let table = ChainedTable::build(&keys);
    let mut g = c.benchmark_group("chained_table");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("build", |b| b.iter(|| ChainedTable::build(black_box(&keys))));
    g.bench_function("probe", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in &keys {
                table.probe(&keys, black_box(k), |_| hits += 1);
            }
            hits
        })
    });
    g.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let spec = CacheLevelSpec { size: 48 << 10, line: 128, assoc: 4, hit_ns: 1.0 };
    let addrs: Vec<u64> = (0..1u64 << 14).map(|i| (i * 7919) % (1 << 22)).collect();
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("set_assoc_access", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(spec);
            for &a in &addrs {
                cache.access(black_box(a));
            }
            cache.stats().hits
        })
    });
    g.finish();
}

fn bench_gpu_models(c: &mut Criterion) {
    let addrs: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
    let words: Vec<u32> = (0..32u32).map(|i| i * 3 % 64).collect();
    let mut g = c.benchmark_group("gpu_models");
    g.bench_function("coalesce_random_warp", |b| {
        b.iter(|| distinct_chunks(black_box(&addrs), 128).count())
    });
    g.bench_function("bank_conflicts", |b| {
        b.iter(|| conflict_cycles(black_box(&words), 32))
    });
    g.bench_function("atomic_conflicts", |b| {
        b.iter(|| atomic_cycles(black_box(&words), 32))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_partition,
    bench_chained_table,
    bench_cache_sim,
    bench_gpu_models
);
criterion_main!(benches);
