//! Bench target regenerating Figure 6 (single-device join comparison).

fn main() {
    let fig = hape_bench::figures::fig6(&[1 << 20, 1 << 21, 1 << 22, 1 << 23]);
    hape_bench::figures::print_figure(&fig);
}
