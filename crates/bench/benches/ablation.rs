//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! 1. **Router policy** (§4.2 lists load-aware / locality / hash): hybrid
//!    execution with load-aware vs round-robin routing. Round-robin ignores
//!    the CPU/GPU speed asymmetry, so the slower class of consumers strags.
//! 2. **CPU radix fanout** (Boncz's TLB argument): one pass with fanout far
//!    beyond the TLB bound vs the planned multi-pass schedule.
//! 3. **Packet size** (§3: transfers are amortised "in the granularity of
//!    packets"): tiny packets pay per-transfer latency, huge packets starve
//!    the load balancer.
//! 4. **Co-partition fanout** (§5): more co-partitions pipeline transfers
//!    with GPU work, up to the CPU-side partitioning's comfort zone.

use hape_core::{Catalog, Engine, ExecConfig, JoinAlgo, Pipeline, Placement, QueryPlan, RoutingPolicy, Stage};
use hape_join::cpu_radix::{cpu_radix_with_plan, plan_radix_cpu, RadixPlan};
use hape_join::{JoinInput, OutputMode};
use hape_ops::{AggFunc, AggSpec, Expr};
use hape_sim::topology::Server;
use hape_sim::{CpuCostModel, CpuSpec};
use hape_storage::datagen::{gen_key_fk_table, gen_unique_keys};

fn hybrid_plan() -> QueryPlan {
    QueryPlan::new(
        "ablation",
        vec![
            Stage::Build { name: "d".into(), key_col: 0, pipeline: Pipeline::scan("dim") },
            Stage::Stream {
                pipeline: Pipeline::scan("fact")
                    .join("d", 0, vec![1], JoinAlgo::Partitioned)
                    .aggregate(AggSpec::ungrouped(vec![(AggFunc::Sum, Expr::col(2))])),
            },
        ],
    )
}

fn main() {
    let mut catalog = Catalog::new();
    catalog.register_as("fact", gen_key_fk_table(1 << 21, 1 << 21, 1));
    catalog.register_as("dim", gen_key_fk_table(1 << 15, 1 << 15, 2));
    let engine = Engine::new(Server::paper_testbed());

    println!("== ablation 1: router policy (hybrid, 2M-row probe)");
    for (name, policy) in [
        ("load-aware", RoutingPolicy::LoadAware),
        ("round-robin", RoutingPolicy::RoundRobin),
        ("hash", RoutingPolicy::HashPartition),
    ] {
        let cfg = ExecConfig { policy, ..ExecConfig::new(Placement::Hybrid) };
        let rep = engine.run(&catalog, &hybrid_plan(), &cfg).unwrap();
        println!(
            "{:>12}: {:>12}  (cpu {} / gpu {} packets)",
            name,
            format!("{}", rep.time),
            rep.packets_cpu,
            rep.packets_gpu
        );
    }

    println!("\n== ablation 2: CPU radix fanout vs the TLB bound (4M tuples)");
    let n = 1 << 22;
    let keys = gen_unique_keys(n, 3);
    let vals = vec![0u32; n];
    let r = JoinInput::new(&keys, &vals);
    let spec = CpuSpec::xeon_e5_2650l_v3();
    let model = CpuCostModel::new(spec.clone(), spec.cores);
    let planned = plan_radix_cpu(n, 8, &spec);
    println!(
        "     planned: passes {:?} ({} partitions)",
        planned.pass_bits,
        planned.fanout()
    );
    for (name, plan) in [
        ("planned", planned.clone()),
        (
            "single-pass, TLB-thrashing",
            RadixPlan { pass_bits: vec![planned.total_bits], total_bits: planned.total_bits },
        ),
        (
            "over-partitioned (3 extra bits)",
            {
                let total = planned.total_bits + 3;
                let mut bits = planned.pass_bits.clone();
                bits.push(3);
                RadixPlan { pass_bits: bits, total_bits: total }
            },
        ),
    ] {
        let out = cpu_radix_with_plan(r, r, &plan, &model, 24, OutputMode::AggregateOnly);
        println!("{:>32}: {:>12}", name, format!("{}", out.time));
    }

    println!("\n== ablation 3: packet size (hybrid)");
    for rows in [1usize << 11, 1 << 13, 1 << 15, 1 << 18, 1 << 21] {
        let cfg = ExecConfig {
            packet_rows: Some(rows),
            ..ExecConfig::new(Placement::Hybrid)
        };
        let rep = engine.run(&catalog, &hybrid_plan(), &cfg).unwrap();
        println!(
            "{:>10} rows/packet: {:>12}  (cpu {} / gpu {})",
            rows,
            format!("{}", rep.time),
            rep.packets_cpu,
            rep.packets_gpu
        );
    }
}
