//! Bench target regenerating Figure 9 (Q5: partitioned vs non-partitioned).

fn main() {
    let fig = hape_bench::figures::fig9(0.05);
    hape_bench::figures::print_figure(&fig);
}
