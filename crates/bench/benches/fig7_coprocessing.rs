//! Bench target regenerating Figure 7 (co-processing join, 1 vs 2 GPUs).

fn main() {
    let fig = hape_bench::figures::fig7(&[1 << 21, 1 << 22, 1 << 23, 1 << 24]);
    hape_bench::figures::print_figure(&fig);
}
