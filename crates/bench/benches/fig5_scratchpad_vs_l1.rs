//! Bench target regenerating Figure 5 (scratchpad vs L1 probe phase).
//!
//! Runs once per `cargo bench` with reduced input size and prints the
//! series; the `figures` binary offers paper-scale runs.

fn main() {
    let fig = hape_bench::figures::fig5(1 << 19, &[128, 256, 512, 1024, 2048, 4096]);
    hape_bench::figures::print_figure(&fig);
}
