//! Wall-clock measurement of the parallel data-plane runtime.
//!
//! The figure harness reports *simulated* time; this module measures the
//! engine's *real* elapsed time per `(query, placement, threads)` cell with
//! [`std::time::Instant`] — the repo's first actual performance trajectory.
//! Each cell runs the same TPC-H plan under an [`ExecConfig`] whose
//! `threads` pins the data-plane pool size; the control plane guarantees
//! the simulated makespan and result rows are bit-identical across cells of
//! the same `(query, placement)`, which [`bench_tpch`] asserts as it
//! measures.
//!
//! [`write_json`] serialises the points (hand-rolled — no serde in the
//! offline workspace) to `BENCH_tpch.json`, which CI smoke regenerates on
//! every run.

use std::time::Instant;

use hape_core::{Engine, ExecConfig, JoinAlgo, Placement};
use hape_sim::topology::Server;
use hape_tpch::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};

/// One measured `(query, placement, threads)` cell.
#[derive(Debug, Clone)]
pub struct WallPoint {
    /// Query label (`Q1`, `Q5`, `Q6`, `Q9*`).
    pub query: String,
    /// Device placement.
    pub placement: Placement,
    /// Data-plane threads the cell ran with.
    pub threads: usize,
    /// Real elapsed seconds of `Engine::run` (lower → place → interpret).
    pub wall_seconds: f64,
    /// Simulated makespan in seconds (thread-count-invariant).
    pub sim_seconds: f64,
    /// False when the engine reported a typed failure (e.g. Q9's §6.4
    /// GPU out-of-memory under a manual GPU placement) — the paper's
    /// missing bar; `wall_seconds`/`sim_seconds` are 0.
    pub completed: bool,
}

/// The wall-clock TPC-H sweep: every query × placement × thread count.
///
/// Panics if a `(query, placement)` pair reports different simulated
/// makespans or result rows across thread counts — the determinism
/// guarantee this PR's control plane exists to keep.
pub fn bench_tpch(
    sf: f64,
    placements: &[Placement],
    thread_counts: &[usize],
    packet_rows: Option<usize>,
) -> Vec<WallPoint> {
    let data = hape_tpch::generate(sf, 420);
    let catalog = base_catalog(&data);
    let server = Server::tpch_scaled(sf);
    let engine = Engine::new(server);
    let queries: Vec<(&str, hape_core::LoweredQuery)> = vec![
        ("Q1", q1_query().lower(&catalog).expect("Q1 lowers")),
        ("Q5", q5_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q5 lowers")),
        ("Q6", q6_query().lower(&catalog).expect("Q6 lowers")),
        ("Q9*", q9_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q9 lowers")),
    ];
    let mut points = Vec::new();
    for (name, q) in &queries {
        for &placement in placements {
            // The determinism tripwire: identical simulated results — and
            // identical success/failure — at every thread count. Inner
            // `None` records a typed failure (e.g. Q9's GPU OOM).
            type SimRef = Option<(hape_sim::SimTime, Vec<(hape_ops::GroupKey, Vec<f64>)>)>;
            let mut reference: Option<SimRef> = None;
            for &threads in thread_counts {
                let mut cfg = ExecConfig::new(placement).with_threads(threads);
                cfg.packet_rows = packet_rows;
                let started = Instant::now();
                let outcome = engine.run(&q.catalog, &q.plan, &cfg);
                let wall = started.elapsed().as_secs_f64();
                let observed: SimRef =
                    outcome.as_ref().ok().map(|rep| (rep.time, rep.rows.clone()));
                match &reference {
                    None => reference = Some(observed.clone()),
                    Some(want) => {
                        assert_eq!(
                            want.is_some(),
                            observed.is_some(),
                            "{name}/{placement}: success/failure flipped at threads={threads}"
                        );
                        if let (Some((t, rows)), Some((got_t, got_rows))) = (want, &observed) {
                            assert_eq!(
                                t, got_t,
                                "{name}/{placement}: makespan diverged at threads={threads}"
                            );
                            assert_eq!(
                                rows, got_rows,
                                "{name}/{placement}: rows diverged at threads={threads}"
                            );
                        }
                    }
                }
                let point = match observed {
                    Some((time, _)) => WallPoint {
                        query: name.to_string(),
                        placement,
                        threads,
                        wall_seconds: wall,
                        sim_seconds: time.as_secs(),
                        completed: true,
                    },
                    None => WallPoint {
                        query: name.to_string(),
                        placement,
                        threads,
                        wall_seconds: 0.0,
                        sim_seconds: 0.0,
                        completed: false,
                    },
                };
                points.push(point);
            }
        }
    }
    points
}

/// Total wall seconds per thread count, over the cells that completed at
/// *every* measured thread count (so totals compare like with like).
pub fn totals_by_threads(points: &[WallPoint]) -> Vec<(usize, f64)> {
    let mut threads: Vec<usize> = points.iter().map(|p| p.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    let complete_everywhere = |p: &WallPoint| {
        points
            .iter()
            .filter(|o| o.query == p.query && o.placement == p.placement)
            .all(|o| o.completed)
    };
    threads
        .iter()
        .map(|&t| {
            let total: f64 = points
                .iter()
                .filter(|p| p.threads == t && complete_everywhere(p))
                .map(|p| p.wall_seconds)
                .sum();
            (t, total)
        })
        .collect()
}

/// Render the sweep as an aligned table with a speedup summary.
pub fn print_wall(points: &[WallPoint]) {
    println!("== wall-clock TPC-H sweep (seconds of real time per engine run)");
    println!("{:>6} {:>8} {:>8} {:>14} {:>14}", "query", "place", "threads", "wall_s", "sim_s");
    for p in points {
        if p.completed {
            println!(
                "{:>6} {:>8} {:>8} {:>14.6} {:>14.6}",
                p.query,
                p.placement.to_string(),
                p.threads,
                p.wall_seconds,
                p.sim_seconds
            );
        } else {
            println!(
                "{:>6} {:>8} {:>8} {:>14} {:>14}",
                p.query,
                p.placement.to_string(),
                p.threads,
                "-",
                "-"
            );
        }
    }
    let totals = totals_by_threads(points);
    for (t, total) in &totals {
        println!("total threads={t}: {total:.6}s");
    }
    if let (Some((tmin, base)), Some((tmax, best))) = (totals.first(), totals.last()) {
        if *best > 0.0 && totals.len() > 1 {
            println!("speedup threads={tmax} vs threads={tmin}: {:.2}x", base / best);
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialise the sweep to JSON (hand-rolled; the offline workspace has no
/// serde). The shape is stable for the perf trajectory:
/// `{sf, thread_counts, points: [{query, placement, threads, wall_seconds,
/// sim_seconds, completed}], totals: [{threads, wall_seconds}],
/// speedup_max_vs_min}`.
pub fn to_json(sf: f64, points: &[WallPoint]) -> String {
    let mut threads: Vec<usize> = points.iter().map(|p| p.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"sf\": {sf},\n"));
    out.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"placement\": \"{}\", \"threads\": {}, \
             \"wall_seconds\": {}, \"sim_seconds\": {}, \"completed\": {}}}{}\n",
            json_escape(&p.query),
            p.placement,
            p.threads,
            p.wall_seconds,
            p.sim_seconds,
            p.completed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let totals = totals_by_threads(points);
    out.push_str("  \"totals\": [\n");
    for (i, (t, total)) in totals.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {t}, \"wall_seconds\": {total}}}{}\n",
            if i + 1 < totals.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let speedup = match (totals.first(), totals.last()) {
        (Some((_, base)), Some((_, best))) if *best > 0.0 => base / best,
        _ => 1.0,
    };
    out.push_str(&format!("  \"speedup_max_vs_min\": {speedup}\n"));
    out.push('}');
    out
}

/// Write the sweep to `path` (conventionally `BENCH_tpch.json`).
pub fn write_json(sf: f64, points: &[WallPoint], path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(sf, points) + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(q: &str, t: usize, wall: f64, completed: bool) -> WallPoint {
        WallPoint {
            query: q.into(),
            placement: Placement::CpuOnly,
            threads: t,
            wall_seconds: wall,
            sim_seconds: 0.5,
            completed,
        }
    }

    #[test]
    fn totals_skip_cells_missing_at_any_thread_count() {
        let points = vec![
            point("Q1", 1, 2.0, true),
            point("Q1", 8, 1.0, true),
            point("Q9*", 1, 9.0, true),
            point("Q9*", 8, 0.0, false), // incomplete at 8 → excluded at 1 too
        ];
        let totals = totals_by_threads(&points);
        assert_eq!(totals, vec![(1, 2.0), (8, 1.0)]);
    }

    #[test]
    fn json_shape_is_stable() {
        let points = vec![point("Q1", 1, 2.0, true), point("Q1", 8, 1.0, true)];
        let json = to_json(0.01, &points);
        assert!(json.contains("\"thread_counts\": [1, 8]"));
        assert!(json.contains("\"speedup_max_vs_min\": 2"));
        assert!(json.contains("\"placement\": \"cpu\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn smoke_sweep_is_deterministic_and_complete() {
        let points = bench_tpch(0.01, &[Placement::CpuOnly, Placement::Auto], &[1, 2], None);
        // 4 queries × 2 placements × 2 thread counts.
        assert_eq!(points.len(), 16);
        assert!(points.iter().all(|p| p.completed), "cpu/auto complete every query");
        // bench_tpch itself asserts sim-time identity across thread counts.
    }
}
