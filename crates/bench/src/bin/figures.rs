//! Regenerate the paper's figures and the wall-clock benchmark.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|all] [--full] [--smoke] [--sf <f64>]
//!         [--placements <p,p,...>] [--packet-rows <n>] [--threads <n,n,...>]
//!         [--wall [--out <path>]] [--serve [--out <path>]]
//!         [--behavioral [--users <n>] [--out <path>]]
//!         [--trace <path>] [--profile]
//! ```
//!
//! Default sizes are scaled down (see EXPERIMENTS.md); `--full` uses
//! paper-scale inputs where host memory permits (slow). `--smoke` shrinks
//! every figure to seconds of runtime — the CI guard that keeps this
//! harness runnable while the criterion benches stay gated off.
//!
//! `--placements` selects the Proteus series of fig8 by name (`cpu`,
//! `gpu`, `hybrid`, `auto` — `Placement`'s `FromStr`); `auto` plots the
//! cost-based optimizer against the manual placements. `--packet-rows`
//! overrides the auto packet-sizing heuristic for sweeps; `--threads`
//! pins the data-plane pool size (fig8 uses the first value).
//!
//! `--wall` runs the wall-clock TPC-H sweep instead of the figures: real
//! `Instant`-measured elapsed per `(query, placement, threads)` next to
//! the (thread-count-invariant) simulated makespan, written to
//! `BENCH_tpch.json` (`--out` overrides the path). CI smoke invokes it so
//! the perf trajectory has data points.
//!
//! `--serve` runs the concurrent-admission smoke instead: a
//! mixed-placement TPC-H workload submitted to a `SessionServer` twice
//! (cold, then warm against the cross-query build cache), reporting
//! queries/sec, admission waits and cache-served builds per batch, written
//! to `BENCH_serve.json` (`--out` overrides; `--threads` pins the
//! data-plane pool with its first value). CI uploads it next to
//! `BENCH_tpch.json`.
//!
//! `--behavioral` runs the stateful-analytics suite × placement matrix
//! over the deterministic web-analytics event log (`--users` sizes it;
//! `--smoke` shrinks it for CI), asserting `auto` matches the best manual
//! placement on every query and writing `BENCH_behavioral.json` (`--out`
//! overrides; `--threads` pins the data-plane pool with its first value).
//!
//! `--chaos` runs the fault-injection sweep instead: every benchmark
//! query × placement executed clean and under the canonical seeded fault
//! plan (`--seed` varies the schedule), recording fired faults, priced
//! retries/replans and the degraded/clean makespan ratio per cell, and
//! asserting the answers survive recovery — the process exits non-zero
//! when any cell's rows diverge. Written to `CHAOS_tpch.json` (`--out`
//! overrides); CI smoke runs it and uploads the artifact.
//!
//! `--trace <path>` runs the TPC-H workload under the cost-based
//! optimizer with the execution tracing plane attached and writes the
//! Chrome trace JSON (sim-time and wall-time lanes, workers as threads —
//! load it in `chrome://tracing` or Perfetto). `--profile` prints the
//! deterministic plain-text predicted-vs-observed profile table instead
//! (the two flags compose: one traced run feeds both exporters).
//!
//! Unknown `--flags` are rejected with an error and the usage synopsis —
//! a typo like `--trase x.json` aborts instead of silently running the
//! figures.

use hape_bench::behavioral::{bench_behavioral, print_behavioral};
use hape_bench::chaos::{chaos_tpch, print_chaos};
use hape_bench::figures::{fig5, fig6, fig7, fig8_opts, fig9, print_figure};
use hape_bench::serve::{bench_serve, print_serve};
use hape_bench::trace::{trace_tpch, write_chrome_trace};
use hape_bench::verify::{print_verify, verify_tpch};
use hape_bench::wall::{bench_tpch, print_wall, write_json};
use hape_core::Placement;

/// Flags that take a value.
const VALUE_FLAGS: [&str; 8] = [
    "--sf",
    "--placements",
    "--packet-rows",
    "--threads",
    "--out",
    "--users",
    "--trace",
    "--seed",
];
/// Flags that stand alone.
const BOOL_FLAGS: [&str; 8] = [
    "--full",
    "--smoke",
    "--wall",
    "--serve",
    "--behavioral",
    "--profile",
    "--verify",
    "--chaos",
];

const USAGE: &str = "usage: figures [fig5|fig6|fig7|fig8|fig9|all] [--full] [--smoke] \
                     [--sf <f64>] [--placements <p,p,...>] [--packet-rows <n>] \
                     [--threads <n,n,...>] [--wall] [--serve] [--behavioral [--users <n>]] \
                     [--verify] [--chaos [--seed <n>]] [--out <path>] [--trace <path>] \
                     [--profile]";

/// A rejected command line — typed, so a typo aborts with the usage
/// synopsis instead of silently running without the intended flag.
#[derive(Debug)]
enum CliError {
    /// A `--flag` that is neither a value flag nor a boolean flag.
    UnknownFlag(String),
    /// A value flag at the end of the line, with nothing following it.
    MissingValue(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} expects a value"),
        }
    }
}

impl std::error::Error for CliError {}

/// Every argument must be a known flag, a known flag's value, or the
/// positional figure id.
fn validate_args(args: &[String]) -> Result<(), CliError> {
    let mut is_value = false;
    for a in args {
        if is_value {
            is_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            is_value = true;
            continue;
        }
        if BOOL_FLAGS.contains(&a.as_str()) {
            continue;
        }
        if a.starts_with("--") {
            return Err(CliError::UnknownFlag(a.clone()));
        }
    }
    if is_value {
        return Err(CliError::MissingValue(args.last().expect("non-empty").clone()));
    }
    Ok(())
}

/// The first positional argument, skipping flags *and their values*
/// (`--sf 0.1` must not make `0.1` the figure id).
fn positional(args: &[String]) -> Option<&String> {
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_value = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        return Some(a);
    }
    None
}

/// The value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = validate_args(&args) {
        eprintln!("{e}\n{USAGE}");
        std::process::exit(2);
    }
    let which = positional(&args).map(String::as_str).unwrap_or("all").to_string();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let sf = flag_value(&args, "--sf").and_then(|v| v.parse::<f64>().ok()).unwrap_or(if full {
        1.0
    } else if smoke {
        0.01
    } else {
        0.05
    });
    let placements: Vec<Placement> = flag_value(&args, "--placements")
        .map(|list| {
            list.split(',')
                .map(|p| p.parse::<Placement>().unwrap_or_else(|e| panic!("{e}")))
                .collect()
        })
        .unwrap_or_else(|| {
            vec![Placement::CpuOnly, Placement::Hybrid, Placement::GpuOnly, Placement::Auto]
        });
    let packet_rows = flag_value(&args, "--packet-rows").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| panic!("--packet-rows expects a row count"))
    });
    // `--threads` as given; absent means "engine default" for the figure
    // runs and the [1, max] comparison sweep for `--wall`.
    let threads_flag: Option<Vec<usize>> = flag_value(&args, "--threads").map(|list| {
        list.split(',')
            .map(|t| {
                t.parse::<usize>()
                    .unwrap_or_else(|_| panic!("--threads expects a list like 1,8"))
                    .max(1)
            })
            .collect()
    });

    // `--trace` / `--profile`: one traced TPC-H run under Auto feeds both
    // exporters — the Chrome JSON artifact and/or the profile table.
    let trace_path = flag_value(&args, "--trace");
    let profile = args.iter().any(|a| a == "--profile");
    if trace_path.is_some() || profile {
        let threads = threads_flag.as_ref().and_then(|t| t.first().copied());
        let trace = trace_tpch(sf, threads, packet_rows);
        if let Some(path) = trace_path {
            write_chrome_trace(&trace, path).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!(
                "wrote {path} ({} spans, {} counters)",
                trace.spans.len(),
                trace.counters.len()
            );
        }
        if profile {
            print!("{}", trace.render_profile());
        }
        return;
    }

    if args.iter().any(|a| a == "--verify") {
        let out = flag_value(&args, "--out").map(String::as_str).unwrap_or("VERIFY_tpch.json");
        let users = flag_value(&args, "--users")
            .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("--users expects a count")))
            .unwrap_or(if smoke { 2_000 } else { 20_000 });
        let sweep = verify_tpch(sf, users);
        print_verify(&sweep);
        hape_bench::verify::write_json(&sweep, out)
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
        if !sweep.clean() {
            eprintln!("static and runtime verdicts disagree — see {out}");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--chaos") {
        let out = flag_value(&args, "--out").map(String::as_str).unwrap_or("CHAOS_tpch.json");
        let users = flag_value(&args, "--users")
            .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("--users expects a count")))
            .unwrap_or(if smoke { 2_000 } else { 20_000 });
        let seed = flag_value(&args, "--seed")
            .map(|v| v.parse::<u64>().unwrap_or_else(|_| panic!("--seed expects a u64")))
            .unwrap_or(42);
        let sweep = chaos_tpch(sf, users, seed);
        print_chaos(&sweep);
        hape_bench::chaos::write_json(&sweep, out)
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
        if !sweep.rows_identical() {
            eprintln!("a fault schedule changed an answer — see {out}");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--behavioral") {
        let out =
            flag_value(&args, "--out").map(String::as_str).unwrap_or("BENCH_behavioral.json");
        let users = flag_value(&args, "--users")
            .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("--users expects a count")))
            .unwrap_or(if smoke { 2_000 } else { 20_000 });
        let threads = threads_flag.as_ref().and_then(|t| t.first().copied());
        let bench = bench_behavioral(users, threads);
        print_behavioral(&bench);
        hape_bench::behavioral::write_json(&bench, out)
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--serve") {
        let out = flag_value(&args, "--out").map(String::as_str).unwrap_or("BENCH_serve.json");
        let threads = threads_flag.as_ref().and_then(|t| t.first().copied());
        let bench = bench_serve(sf, threads);
        print_serve(&bench);
        hape_bench::serve::write_json(&bench, out)
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--wall") {
        let threads = threads_flag.unwrap_or_else(|| {
            let max = std::thread::available_parallelism().map_or(1, |n| n.get());
            if max > 1 {
                vec![1, max]
            } else {
                vec![1]
            }
        });
        let out = flag_value(&args, "--out").map(String::as_str).unwrap_or("BENCH_tpch.json");
        let points = bench_tpch(sf, &placements, &threads, packet_rows);
        print_wall(&points);
        write_json(sf, &points, out).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("wrote {out}");
        return;
    }

    let run = |id: &str| which == "all" || which == id;

    if run("fig5") {
        let tuples = if full {
            32 << 20
        } else if smoke {
            1 << 17
        } else {
            1 << 20
        };
        let sizes: &[usize] =
            if smoke { &[256, 1024, 4096] } else { &[128, 256, 512, 1024, 2048, 4096] };
        print_figure(&fig5(tuples, sizes));
    }
    if run("fig6") {
        let sizes: Vec<usize> = if full {
            vec![1 << 20, 1 << 23, 1 << 25, 1 << 27]
        } else if smoke {
            vec![1 << 19, 1 << 21]
        } else {
            vec![1 << 20, 1 << 21, 1 << 22, 1 << 23]
        };
        print_figure(&fig6(&sizes));
    }
    if run("fig7") {
        let sizes: Vec<usize> = if full {
            vec![256 << 20, 512 << 20, 1024 << 20]
        } else if smoke {
            vec![1 << 20, 1 << 21]
        } else {
            vec![1 << 21, 1 << 22, 1 << 23, 1 << 24]
        };
        print_figure(&fig7(&sizes));
    }
    if run("fig8") {
        let fig8_threads = threads_flag.as_ref().and_then(|t| t.first().copied());
        print_figure(&fig8_opts(sf, &placements, packet_rows, fig8_threads));
    }
    if run("fig9") {
        print_figure(&fig9(sf));
    }
}
