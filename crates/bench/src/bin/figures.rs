//! Regenerate the paper's figures.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|all] [--full] [--smoke] [--sf <f64>]
//!         [--placements <p,p,...>]
//! ```
//!
//! Default sizes are scaled down (see EXPERIMENTS.md); `--full` uses
//! paper-scale inputs where host memory permits (slow). `--smoke` shrinks
//! every figure to seconds of runtime — the CI guard that keeps this
//! harness runnable while the criterion benches stay gated off.
//!
//! `--placements` selects the Proteus series of fig8 by name (`cpu`,
//! `gpu`, `hybrid`, `auto` — `Placement`'s `FromStr`); `auto` plots the
//! cost-based optimizer against the manual placements.

use hape_bench::figures::{fig5, fig6, fig7, fig8_with, fig9, print_figure};
use hape_core::Placement;

/// The first positional argument, skipping flags *and their values*
/// (`--sf 0.1` must not make `0.1` the figure id).
fn positional(args: &[String]) -> Option<&String> {
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--sf" || a == "--placements" {
            skip_value = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        return Some(a);
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = positional(&args).map(String::as_str).unwrap_or("all").to_string();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let sf = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if full {
            1.0
        } else if smoke {
            0.01
        } else {
            0.05
        });
    let placements: Vec<Placement> = args
        .iter()
        .position(|a| a == "--placements")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|p| p.parse::<Placement>().unwrap_or_else(|e| panic!("{e}")))
                .collect()
        })
        .unwrap_or_else(|| {
            vec![Placement::CpuOnly, Placement::Hybrid, Placement::GpuOnly, Placement::Auto]
        });

    let run = |id: &str| which == "all" || which == id;

    if run("fig5") {
        let tuples = if full {
            32 << 20
        } else if smoke {
            1 << 17
        } else {
            1 << 20
        };
        let sizes: &[usize] =
            if smoke { &[256, 1024, 4096] } else { &[128, 256, 512, 1024, 2048, 4096] };
        print_figure(&fig5(tuples, sizes));
    }
    if run("fig6") {
        let sizes: Vec<usize> = if full {
            vec![1 << 20, 1 << 23, 1 << 25, 1 << 27]
        } else if smoke {
            vec![1 << 19, 1 << 21]
        } else {
            vec![1 << 20, 1 << 21, 1 << 22, 1 << 23]
        };
        print_figure(&fig6(&sizes));
    }
    if run("fig7") {
        let sizes: Vec<usize> = if full {
            vec![256 << 20, 512 << 20, 1024 << 20]
        } else if smoke {
            vec![1 << 20, 1 << 21]
        } else {
            vec![1 << 21, 1 << 22, 1 << 23, 1 << 24]
        };
        print_figure(&fig7(&sizes));
    }
    if run("fig8") {
        print_figure(&fig8_with(sf, &placements));
    }
    if run("fig9") {
        print_figure(&fig9(sf));
    }
}
