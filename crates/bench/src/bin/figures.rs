//! Regenerate the paper's figures.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|all] [--full] [--sf <f64>]
//! ```
//!
//! Default sizes are scaled down (see EXPERIMENTS.md); `--full` uses
//! paper-scale inputs where host memory permits (slow).

use hape_bench::figures::{fig5, fig6, fig7, fig8, fig9, print_figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all").to_string();
    let full = args.iter().any(|a| a == "--full");
    let sf = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if full { 1.0 } else { 0.05 });

    let run = |id: &str| which == "all" || which == id;

    if run("fig5") {
        let tuples = if full { 32 << 20 } else { 1 << 20 };
        let sizes = [128usize, 256, 512, 1024, 2048, 4096];
        print_figure(&fig5(tuples, &sizes));
    }
    if run("fig6") {
        let sizes: Vec<usize> = if full {
            vec![1 << 20, 1 << 23, 1 << 25, 1 << 27]
        } else {
            vec![1 << 20, 1 << 21, 1 << 22, 1 << 23]
        };
        print_figure(&fig6(&sizes));
    }
    if run("fig7") {
        let sizes: Vec<usize> = if full {
            vec![256 << 20, 512 << 20, 1024 << 20]
        } else {
            vec![1 << 21, 1 << 22, 1 << 23, 1 << 24]
        };
        print_figure(&fig7(&sizes));
    }
    if run("fig8") {
        print_figure(&fig8(sf));
    }
    if run("fig9") {
        print_figure(&fig9(sf));
    }
}
