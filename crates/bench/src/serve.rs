//! Throughput measurement of the concurrent serving layer.
//!
//! [`bench_serve`] drives a mixed-placement TPC-H workload through
//! `SessionServer::run_all` twice on the same server — a **cold** batch
//! that builds every hash table, then a **warm** batch that re-submits the
//! identical workload and hits the cross-query build cache — and measures
//! real elapsed time (queries/sec), total simulated time, admission waits
//! and cache-served builds per batch. The simulated totals are
//! deterministic, so the warm-beats-cold comparison is asserted, not just
//! reported.
//!
//! [`write_json`] serialises to `BENCH_serve.json` (hand-rolled — no serde
//! in the offline workspace), uploaded by CI next to `BENCH_tpch.json`.

use std::time::Instant;

use hape_core::serve::SessionServer;
use hape_core::{ExecConfig, JoinAlgo, Placement, Session};
use hape_sim::topology::Server;
use hape_tpch::queries::{q1_query, q5_query, q6_query, q9_query};

/// Aggregate measurements of one `run_all` batch.
#[derive(Debug, Clone)]
pub struct ServeBatch {
    /// Submitted queries.
    pub queries: usize,
    /// Queries that completed (the workload is chosen so all do).
    pub completed: usize,
    /// Real elapsed seconds of the whole batch.
    pub wall_seconds: f64,
    /// Completed queries per real second.
    pub qps: f64,
    /// Total simulated seconds across completed queries (deterministic).
    pub sim_seconds_total: f64,
    /// Scheduler rounds queries spent queued on the GPU admission gate.
    pub admission_waits: usize,
    /// Build stages served from the cross-query cache.
    pub builds_cached: usize,
}

/// The cold/warm serving benchmark result.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// TPC-H scale factor.
    pub sf: f64,
    /// The GPU admission budget in bytes (smallest GPU's memory).
    pub gpu_budget: u64,
    /// First batch: builds execute (repeated structures *within* the
    /// batch — the same query under two placements — already share).
    pub cold: ServeBatch,
    /// Second identical batch: every memoised build side hits the cache.
    pub warm: ServeBatch,
}

impl ServeBench {
    /// Simulated-time speedup of the warm batch over the cold one.
    pub fn warm_speedup_sim(&self) -> f64 {
        if self.warm.sim_seconds_total > 0.0 {
            self.cold.sim_seconds_total / self.warm.sim_seconds_total
        } else {
            1.0
        }
    }
}

/// The mixed-placement workload: every TPC-H query under placements that
/// complete at this scale (Q9's broadcast doesn't fit a manual GPU
/// placement — it rides the optimizer's co-processing plan instead).
fn workload() -> Vec<(hape_core::Query, Placement)> {
    vec![
        (q1_query(), Placement::CpuOnly),
        (q1_query(), Placement::Hybrid),
        (q5_query(JoinAlgo::Partitioned), Placement::Hybrid),
        (q5_query(JoinAlgo::Partitioned), Placement::Auto),
        (q6_query(), Placement::GpuOnly),
        (q6_query(), Placement::Hybrid),
        (q9_query(JoinAlgo::Partitioned), Placement::CpuOnly),
        (q9_query(JoinAlgo::Partitioned), Placement::Auto),
    ]
}

fn run_batch(server: &mut SessionServer, threads: Option<usize>) -> ServeBatch {
    let jobs = workload();
    let queries = jobs.len();
    let mut handles = Vec::with_capacity(queries);
    for (query, placement) in &jobs {
        let mut cfg = ExecConfig::new(*placement);
        cfg.threads = threads;
        handles.push(server.submit_with(query, &cfg));
    }
    let started = Instant::now();
    let batch = server.run_all();
    let wall_seconds = started.elapsed().as_secs_f64();
    let mut completed = 0usize;
    let mut sim_seconds_total = 0.0f64;
    for &h in &handles {
        if let Ok(rep) = batch.report(h) {
            completed += 1;
            sim_seconds_total += rep.time.as_secs();
        }
    }
    ServeBatch {
        queries,
        completed,
        wall_seconds,
        qps: if wall_seconds > 0.0 { completed as f64 / wall_seconds } else { 0.0 },
        sim_seconds_total,
        admission_waits: batch.total_admission_waits(),
        builds_cached: batch.total_builds_cached(),
    }
}

/// Run the cold/warm concurrent-serving benchmark at scale factor `sf`.
///
/// Panics if the warm batch fails to hit the cache or to beat the cold
/// batch's (deterministic) total simulated time — the regression tripwire
/// for the serving layer.
pub fn bench_serve(sf: f64, threads: Option<usize>) -> ServeBench {
    let data = hape_tpch::generate(sf, 420);
    let mut session = Session::new(Server::tpch_scaled(sf));
    session.register(data.lineitem);
    session.register(data.orders);
    session.register(data.customer);
    session.register(data.supplier);
    session.register(data.partsupp);
    session.register(data.nation);
    session.register(data.region);
    let mut server = SessionServer::new(session);
    let gpu_budget = server.gpu_budget().unwrap_or(0);

    let cold = run_batch(&mut server, threads);
    let warm = run_batch(&mut server, threads);
    assert_eq!(cold.completed, cold.queries, "workload must complete cold");
    assert_eq!(warm.completed, warm.queries, "workload must complete warm");
    assert!(
        warm.builds_cached > cold.builds_cached,
        "warm batch must hit the cache beyond intra-batch sharing: {} !> {}",
        warm.builds_cached,
        cold.builds_cached
    );
    assert!(
        warm.sim_seconds_total < cold.sim_seconds_total,
        "cache-served builds must shorten total simulated time: {} !< {}",
        warm.sim_seconds_total,
        cold.sim_seconds_total
    );
    ServeBench { sf, gpu_budget, cold, warm }
}

/// Render the benchmark as an aligned table.
pub fn print_serve(bench: &ServeBench) {
    println!("== concurrent serving benchmark (cold vs warm batch, sf={})", bench.sf);
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>12} {:>8} {:>8}",
        "batch", "queries", "wall_s", "qps", "sim_total_s", "waits", "cached"
    );
    for (name, b) in [("cold", &bench.cold), ("warm", &bench.warm)] {
        println!(
            "{:>6} {:>8} {:>12.6} {:>10.2} {:>12.6} {:>8} {:>8}",
            name,
            b.queries,
            b.wall_seconds,
            b.qps,
            b.sim_seconds_total,
            b.admission_waits,
            b.builds_cached
        );
    }
    println!("warm speedup (simulated): {:.2}x", bench.warm_speedup_sim());
}

fn batch_json(b: &ServeBatch) -> String {
    format!(
        "{{\"queries\": {}, \"completed\": {}, \"wall_seconds\": {}, \"qps\": {}, \
         \"sim_seconds_total\": {}, \"admission_waits\": {}, \"builds_cached\": {}}}",
        b.queries,
        b.completed,
        b.wall_seconds,
        b.qps,
        b.sim_seconds_total,
        b.admission_waits,
        b.builds_cached
    )
}

/// Serialise to JSON (hand-rolled; no serde in the offline workspace).
/// Stable shape: `{sf, gpu_budget_bytes, cold: {...}, warm: {...},
/// warm_speedup_sim}`.
pub fn to_json(bench: &ServeBench) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"sf\": {},\n", bench.sf));
    out.push_str(&format!("  \"gpu_budget_bytes\": {},\n", bench.gpu_budget));
    out.push_str(&format!("  \"cold\": {},\n", batch_json(&bench.cold)));
    out.push_str(&format!("  \"warm\": {},\n", batch_json(&bench.warm)));
    out.push_str(&format!("  \"warm_speedup_sim\": {}\n", bench.warm_speedup_sim()));
    out.push('}');
    out
}

/// Write the benchmark to `path` (conventionally `BENCH_serve.json`).
pub fn write_json(bench: &ServeBench, path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(bench) + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_warm_beats_cold_and_json_is_stable() {
        let bench = bench_serve(0.01, Some(2));
        assert_eq!(bench.cold.queries, 8);
        assert!(bench.warm.builds_cached > 0);
        assert!(bench.warm_speedup_sim() > 1.0);
        let json = to_json(&bench);
        assert!(json.contains("\"cold\": {\"queries\": 8"));
        assert!(json.contains("\"warm_speedup_sim\": "));
        assert!(json.ends_with('}'));
    }
}
