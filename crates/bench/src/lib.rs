//! # hape-bench — the paper-figure regeneration harness
//!
//! One function per evaluation figure (§6). Each returns a [`Figure`] whose
//! series mirror the paper's legend, with simulated-time y-values. Default
//! input sizes are scaled down from the paper's (the shapes, crossovers and
//! ratios are the reproduction target — see `EXPERIMENTS.md`); `full`
//! variants run at paper scale where memory permits.

#![forbid(unsafe_code)]

pub mod behavioral;
pub mod chaos;
pub mod figures;
pub mod serve;
pub mod trace;
pub mod verify;
pub mod wall;

pub use behavioral::{bench_behavioral, print_behavioral, BehavioralBench, BehavioralPoint};
pub use chaos::{chaos_tpch, print_chaos, ChaosPoint, ChaosSweep};
pub use figures::{
    fig5, fig6, fig7, fig8, fig9, print_figure, Figure, Series, FIG6_DEFAULT_SIZES,
    FIG7_DEFAULT_SIZES,
};
pub use serve::{bench_serve, print_serve, ServeBatch, ServeBench};
pub use trace::{trace_tpch, write_chrome_trace};
pub use verify::{print_verify, verify_tpch, VerifyPoint, VerifySweep};
pub use wall::{bench_tpch, print_wall, write_json, WallPoint};

/// Commonly used items.
pub mod prelude {
    pub use crate::behavioral::{bench_behavioral, print_behavioral};
    pub use crate::chaos::{chaos_tpch, print_chaos};
    pub use crate::figures::{fig5, fig6, fig7, fig8, fig9, print_figure};
    pub use crate::serve::{bench_serve, print_serve};
    pub use crate::trace::{trace_tpch, write_chrome_trace};
    pub use crate::verify::{print_verify, verify_tpch};
    pub use crate::wall::{bench_tpch, print_wall, write_json};
}
