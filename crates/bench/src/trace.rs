//! The tracing front-end of the bench harness: run the TPC-H workload
//! under the cost-based optimizer with a [`TraceRecorder`] attached and
//! export the result — `figures --trace <path>` writes the Chrome trace
//! JSON (load it in `chrome://tracing` or Perfetto), `figures --profile`
//! prints the plain-text predicted-vs-observed profile table.
//!
//! The simulated side of everything exported here is deterministic: the
//! profile table is bit-identical across runs and thread counts, while
//! the Chrome export's wall-time lane reflects the real elapsed time of
//! this particular run.

use hape_core::{Engine, ExecConfig, JoinAlgo, Placement, Trace, TraceRecorder};
use hape_sim::topology::Server;
use hape_tpch::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};

/// Run Q1/Q5/Q6/Q9* once each under [`Placement::Auto`] with tracing on
/// and return the combined [`Trace`]: per-query/stage/packet spans, the
/// optimizer's estimates next to observed stage times, and the engine
/// counters. `threads` pins the data-plane pool (wall-clock only);
/// `packet_rows` overrides the auto packet-sizing heuristic.
pub fn trace_tpch(sf: f64, threads: Option<usize>, packet_rows: Option<usize>) -> Trace {
    let data = hape_tpch::generate(sf, 420);
    let catalog = base_catalog(&data);
    let engine = Engine::new(Server::tpch_scaled(sf));
    let recorder = TraceRecorder::new();
    let queries = vec![
        ("Q1", q1_query().lower(&catalog).expect("Q1 lowers")),
        ("Q5", q5_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q5 lowers")),
        ("Q6", q6_query().lower(&catalog).expect("Q6 lowers")),
        ("Q9*", q9_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q9 lowers")),
    ];
    for (name, q) in &queries {
        let mut cfg = ExecConfig::new(Placement::Auto).with_trace(recorder.clone());
        cfg.threads = threads;
        cfg.packet_rows = packet_rows;
        engine
            .run(&q.catalog, &q.plan, &cfg)
            .unwrap_or_else(|e| panic!("{name} completes under Auto: {e}"));
    }
    recorder.snapshot()
}

/// Write a trace's Chrome JSON export to `path` (conventionally
/// `TRACE_tpch.json`, uploaded by CI next to the `BENCH_*.json` files).
pub fn write_chrome_trace(trace: &Trace, path: &str) -> std::io::Result<()> {
    std::fs::write(path, trace.to_chrome_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_core::SpanKind;

    #[test]
    fn traced_tpch_smoke_exports_all_layers() {
        let trace = trace_tpch(0.01, Some(1), None);
        // All four layers left spans: optimizer estimates, query roots,
        // stages, packets.
        for kind in [SpanKind::Optimize, SpanKind::Query, SpanKind::Stage, SpanKind::Packet] {
            assert!(trace.spans.iter().any(|s| s.kind == kind), "no {kind} span in traced run");
        }
        assert_eq!(trace.spans.iter().filter(|s| s.kind == SpanKind::Query).count(), 4);
        // Every stage span of an Auto run carries the estimate side.
        assert!(trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Stage)
            .all(|s| s.estimate.is_some()));
        let json = trace.to_chrome_json();
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"sim-time\"") && json.contains("\"wall-time\""));
        let profile = trace.render_profile();
        assert!(profile.contains("Q5") && profile.contains("est/act"));
    }
}
