//! Figure regeneration functions.

use hape_baselines::{DbmsC, DbmsG};
use hape_core::{Engine, ExecConfig, JoinAlgo, Placement};
use hape_join::gpu_radix::build_probe_phase;
use hape_join::{
    coprocess_join, cpu_npj, cpu_radix, gpu_npj, gpu_radix, radix_partition, BuildProbeVariant,
    CoprocessConfig, JoinInput, OutputMode,
};
use hape_sim::topology::Server;
use hape_sim::{CpuCostModel, Fidelity, GpuSim, GpuSpec};
use hape_storage::datagen::{gen_balanced_partition_keys, gen_unique_keys};
use hape_tpch::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};

/// One line/bar series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// `(x, seconds)` points; `None` y marks "system cannot run this point"
    /// (out of GPU memory / unsupported), which the paper renders as a
    /// missing bar.
    pub points: Vec<(f64, Option<f64>)>,
}

/// A regenerated figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id, e.g. `"fig6"`.
    pub id: String,
    /// Title (the paper's caption).
    pub title: String,
    /// X-axis meaning.
    pub xlabel: String,
    /// The series.
    pub series: Vec<Series>,
}

/// Print a figure as an aligned table.
pub fn print_figure(fig: &Figure) {
    println!("== {} — {}", fig.id, fig.title);
    print!("{:>24}", fig.xlabel);
    for s in &fig.series {
        print!("{:>18}", s.label);
    }
    println!();
    let n = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        print!("{:>24}", fig.series[0].points[i].0);
        for s in &fig.series {
            match s.points[i].1 {
                Some(y) => print!("{y:>18.6}"),
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }
    println!();
}

fn vals_for(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// **Figure 5** — Scratchpad (SM) vs L1 during the GPU radix join's probe
/// phase: execution time vs partition size, over balanced co-partitions of
/// a `tuples`-row table (paper: 32M; default 1M), exact cache simulation.
pub fn fig5(tuples: usize, partition_sizes: &[usize]) -> Figure {
    let sim = GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Exact);
    let mut series: Vec<Series> =
        [BuildProbeVariant::Sm, BuildProbeVariant::SmL1, BuildProbeVariant::L1]
            .iter()
            .map(|v| Series { label: v.label().to_string(), points: Vec::new() })
            .collect();
    for &psize in partition_sizes {
        let fanout = (tuples / psize).next_power_of_two();
        let bits = fanout.trailing_zeros();
        let n = psize * fanout; // exact multiple so partitions balance
        let keys = gen_balanced_partition_keys(n, bits, 42);
        let vals = vals_for(n);
        let input = JoinInput::new(&keys, &vals);
        let (rp, _) = radix_partition(input, bits, bits.clamp(1, 8));
        let skeys = gen_balanced_partition_keys(n, bits, 43);
        let sinput = JoinInput::new(&skeys, &vals);
        let (sp, _) = radix_partition(sinput, bits, bits.clamp(1, 8));
        for (si, variant) in
            [BuildProbeVariant::Sm, BuildProbeVariant::SmL1, BuildProbeVariant::L1]
                .iter()
                .enumerate()
        {
            let (out, _) =
                build_probe_phase(&sim, &rp, &sp, *variant, OutputMode::AggregateOnly);
            assert_eq!(out.stats.matches, n as u64, "balanced key sets must fully match");
            series[si].points.push((psize as f64, Some(out.time.as_secs())));
        }
    }
    Figure {
        id: "fig5".into(),
        title: "Scratchpad (SM) vs L1 during GPU radix's probing phase".into(),
        xlabel: "partition size (#elements)".into(),
        series,
    }
}

/// Default table sizes for Figure 6 (paper: 1M..128M).
pub const FIG6_DEFAULT_SIZES: [usize; 4] = [1 << 20, 1 << 21, 1 << 22, 1 << 23];

/// **Figure 6** — parallel CPU and (single-)GPU joins, data pre-loaded on
/// the executing device: Partitioned/Non-partitioned × CPU/GPU + DBMS C/G.
pub fn fig6(sizes: &[usize]) -> Figure {
    let server = Server::paper_testbed();
    let workers = server.total_cpu_cores();
    let model = CpuCostModel::new(server.cpus[0].clone(), server.cpus[0].cores);
    let sim = GpuSim::new(server.gpus[0].clone(), Fidelity::Analytic);
    let dbms_c = DbmsC::new(server.clone());
    let dbms_g = DbmsG::new(server);
    let mut series: Vec<Series> = [
        "Partitioned CPU",
        "Partitioned GPU",
        "Non-partitioned CPU",
        "Non-Partitioned GPU",
        "DBMS C",
        "DBMS G",
    ]
    .iter()
    .map(|l| Series { label: l.to_string(), points: Vec::new() })
    .collect();
    for &n in sizes {
        let rk = gen_unique_keys(n, 1);
        let sk = gen_unique_keys(n, 2);
        let vals = vals_for(n);
        let r = JoinInput::new(&rk, &vals);
        let s = JoinInput::new(&sk, &vals);
        let x = n as f64 / 1e6;
        let expect = n as u64;
        let push = |ser: &mut Series, out: Option<hape_join::JoinOutcome>| match out {
            Some(o) => {
                assert_eq!(o.stats.matches, expect);
                ser.points.push((x, Some(o.time.as_secs())));
            }
            None => ser.points.push((x, None)),
        };
        push(&mut series[0], Some(cpu_radix(r, s, &model, workers, OutputMode::AggregateOnly)));
        push(
            &mut series[1],
            gpu_radix(&sim, r, s, BuildProbeVariant::Sm, OutputMode::AggregateOnly).ok(),
        );
        push(&mut series[2], Some(cpu_npj(r, s, &model, workers, OutputMode::AggregateOnly)));
        push(&mut series[3], gpu_npj(&sim, r, s, OutputMode::AggregateOnly).ok());
        push(&mut series[4], Some(dbms_c.join_microbench(r, s)));
        push(&mut series[5], dbms_g.join_microbench(r, s).ok());
    }
    Figure {
        id: "fig6".into(),
        title: "Comparison of parallel CPU and (single) GPU joins".into(),
        xlabel: "table size (Mtuples)".into(),
        series,
    }
}

/// Default sizes for Figure 7 (paper: 256M..2048M; these are scaled, with
/// GPU memory shrunk proportionally so the joins are genuinely out-of-GPU).
pub const FIG7_DEFAULT_SIZES: [usize; 4] = [1 << 21, 1 << 22, 1 << 23, 1 << 24];

/// **Figure 7** — join co-processing on CPU-resident data too large for GPU
/// memory: 1 GPU, 2 GPUs, DBMS C, DBMS G.
///
/// GPU capacity is scaled as `capacity × n / 256M`, preserving the paper's
/// data-to-memory ratio at every point.
pub fn fig7(sizes: &[usize]) -> Figure {
    let mut series: Vec<Series> = ["1 GPU", "2 GPUs", "DBMS C", "DBMS G"]
        .iter()
        .map(|l| Series { label: l.to_string(), points: Vec::new() })
        .collect();
    for &n in sizes {
        let mem_factor = n as f64 / (256 << 20) as f64;
        let server = Server::paper_testbed_gpu_mem_scaled(mem_factor);
        let rk = gen_unique_keys(n, 5);
        let sk = gen_unique_keys(n, 6);
        let vals = vals_for(n);
        let r = JoinInput::new(&rk, &vals);
        let s = JoinInput::new(&sk, &vals);
        let x = n as f64 / 1e6;
        for (si, gpus) in [(0usize, 1usize), (1, 2)] {
            let cfg = CoprocessConfig { n_gpus: gpus, ..Default::default() };
            let rep = coprocess_join(&server, r, s, &cfg).expect("co-processing failed");
            assert_eq!(rep.outcome.stats.matches, n as u64);
            series[si].points.push((x, Some(rep.outcome.time.as_secs())));
        }
        let dbms_c = DbmsC::new(server.clone());
        let out = dbms_c.join_large(r, s);
        assert_eq!(out.stats.matches, n as u64);
        series[2].points.push((x, Some(out.time.as_secs())));
        // DBMS G: UVA out-of-GPU access; the paper stops plotting it after
        // 512M (scaled: 2× the base size) because it "performs poorly".
        let dbms_g = DbmsG::new(server);
        if mem_factor <= 2.0 {
            series[3].points.push((x, Some(dbms_g.join_uva_time(n as u64).as_secs())));
        } else {
            series[3].points.push((x, None));
        }
    }
    Figure {
        id: "fig7".into(),
        title: "Comparison of join co-processing using 1 and 2 GPUs".into(),
        xlabel: "table size (Mtuples)".into(),
        series,
    }
}

/// The Proteus series label for a placement (paper legend style).
fn proteus_label(placement: Placement) -> &'static str {
    match placement {
        Placement::CpuOnly => "Proteus CPUs",
        Placement::GpuOnly => "Proteus GPUs",
        Placement::Hybrid => "Proteus Hybrid",
        Placement::Auto => "Proteus Auto",
    }
}

/// **Figure 8** — TPC-H Q1/Q5/Q6/Q9* end-to-end with the paper's series:
/// DBMS C, Proteus CPU, Proteus Hybrid, Proteus GPU, Proteus Auto, DBMS G.
/// GPU memory scales with `sf/100` so the paper's SF-100 capacity effects
/// reproduce (Q9's broadcast tables overflow the GPUs: the manual GPU
/// placements fail while Auto plans the §5 co-processing stage).
pub fn fig8(sf: f64) -> Figure {
    fig8_with(sf, &[Placement::CpuOnly, Placement::Hybrid, Placement::GpuOnly, Placement::Auto])
}

/// [`fig8`] with a CLI-selectable Proteus placement list (one series per
/// placement, between the DBMS C and DBMS G baselines): pass
/// `Placement::Auto` to plot the cost-based optimizer against the manual
/// placements — on Q9 it plans the intra-operator co-processing stage
/// (§5) instead of retreating to the CPUs, with no hand-written fallback
/// anywhere in the harness.
pub fn fig8_with(sf: f64, placements: &[Placement]) -> Figure {
    fig8_opts(sf, placements, None, None)
}

/// [`fig8_with`] with the execution knobs the CLI sweeps: an explicit
/// packet size (`--packet-rows`, `None` = the auto heuristic in
/// [`ExecConfig::auto_packet_rows`]) and a data-plane thread count
/// (`--threads`, `None` = environment/host default). Both are wall-clock
/// knobs for the Proteus series; simulated packet routing changes with
/// packet size but never with threads.
pub fn fig8_opts(
    sf: f64,
    placements: &[Placement],
    packet_rows: Option<usize>,
    threads: Option<usize>,
) -> Figure {
    let data = hape_tpch::generate(sf, 420);
    let catalog = base_catalog(&data);
    let server = Server::tpch_scaled(sf);
    let engine = Engine::new(server.clone());
    let dbms_c = DbmsC::new(server.clone());
    let dbms_g = DbmsG::new(server);
    let queries: Vec<(&str, hape_core::LoweredQuery)> = vec![
        ("Q1", q1_query().lower(&catalog).expect("Q1 lowers")),
        ("Q5", q5_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q5 lowers")),
        ("Q6", q6_query().lower(&catalog).expect("Q6 lowers")),
        ("Q9*", q9_query(JoinAlgo::Partitioned).lower(&catalog).expect("Q9 lowers")),
    ];
    let mut series: Vec<Series> = std::iter::once("DBMS C")
        .chain(placements.iter().map(|&p| proteus_label(p)))
        .chain(std::iter::once("DBMS G"))
        .map(|l| Series { label: l.to_string(), points: Vec::new() })
        .collect();
    for (qi, (_name, q)) in queries.iter().enumerate() {
        let x = qi as f64 + 1.0;
        series[0].points.push((
            x,
            Some(dbms_c.run_plan(&q.catalog, &q.plan).expect("DBMS-C runs").time.as_secs()),
        ));
        for (si, &placement) in placements.iter().enumerate() {
            // Q9's hash tables exceed GPU memory (§6.4): the manual GPU
            // placements are missing bars, while Auto completes it through
            // the optimizer-planned co-processing stage — no special-cased
            // fallback here.
            let mut cfg = ExecConfig::new(placement);
            cfg.packet_rows = packet_rows;
            cfg.threads = threads;
            let t = engine.run(&q.catalog, &q.plan, &cfg).ok().map(|rep| rep.time.as_secs());
            series[1 + si].points.push((x, t));
        }
        let last = series.len() - 1;
        series[last]
            .points
            .push((x, dbms_g.run_plan(&q.catalog, &q.plan).ok().map(|r| r.time.as_secs())));
    }
    Figure {
        id: "fig8".into(),
        title: "CPU-, GPU-only and Hybrid performance on TPC-H (x = Q1,Q5,Q6,Q9*)".into(),
        xlabel: "query".into(),
        series,
    }
}

/// **Figure 9** — partitioned vs non-partitioned GPU-side join inside
/// TPC-H Q5, for GPU-only and Hybrid execution.
pub fn fig9(sf: f64) -> Figure {
    let data = hape_tpch::generate(sf, 421);
    let catalog = base_catalog(&data);
    let server = Server::tpch_scaled(sf);
    let engine = Engine::new(server);
    let mut series: Vec<Series> = ["Non partitioned join", "Partitioned join"]
        .iter()
        .map(|l| Series { label: l.to_string(), points: Vec::new() })
        .collect();
    for (xi, placement) in [(1.0, Placement::GpuOnly), (2.0, Placement::Hybrid)] {
        for (si, algo) in [(0usize, JoinAlgo::NonPartitioned), (1, JoinAlgo::Partitioned)] {
            let q5 = q5_query(algo).lower(&catalog).expect("Q5 lowers");
            let t = engine
                .run(&q5.catalog, &q5.plan, &ExecConfig::new(placement))
                .expect("Q5 fits GPU memory")
                .time
                .as_secs();
            series[si].points.push((xi, Some(t)));
        }
    }
    Figure {
        id: "fig9".into(),
        title: "Partitioned vs Non-Partitioned join on TPC-H Q5 (x=1: GPU, x=2: Hybrid)".into(),
        xlabel: "configuration".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_sm_flat_and_fastest() {
        let fig = fig5(1 << 17, &[256, 1024, 4096]);
        let sm = &fig.series[0];
        let sml1 = &fig.series[1];
        let l1 = &fig.series[2];
        for i in 0..sm.points.len() {
            let (s, m, l) =
                (sm.points[i].1.unwrap(), sml1.points[i].1.unwrap(), l1.points[i].1.unwrap());
            assert!(s <= m * 1.05, "SM {s} !<= SM+L1 {m} at point {i}");
            assert!(m <= l * 1.05, "SM+L1 {m} !<= L1 {l} at point {i}");
        }
        // L1 degrades with partition size; SM stays near-flat.
        let sm_ratio = sm.points.last().unwrap().1.unwrap() / sm.points[0].1.unwrap();
        let l1_ratio = l1.points.last().unwrap().1.unwrap() / l1.points[0].1.unwrap();
        assert!(l1_ratio > sm_ratio, "L1 should degrade faster: {l1_ratio} vs {sm_ratio}");
    }

    #[test]
    fn fig6_shape_partitioned_gpu_wins() {
        let fig = fig6(&[1 << 19, 1 << 21]);
        let last = fig.series[0].points.len() - 1;
        let p_cpu = fig.series[0].points[last].1.unwrap();
        let p_gpu = fig.series[1].points[last].1.unwrap();
        let np_cpu = fig.series[2].points[last].1.unwrap();
        let np_gpu = fig.series[3].points[last].1.unwrap();
        assert!(p_gpu < np_gpu, "partitioned GPU {p_gpu} !< NPJ GPU {np_gpu}");
        assert!(p_gpu < p_cpu, "partitioned GPU {p_gpu} !< partitioned CPU {p_cpu}");
        assert!(p_cpu < np_cpu, "partitioned CPU {p_cpu} !< NPJ CPU {np_cpu}");
    }

    #[test]
    fn fig8_auto_bar_completes_q9_where_gpu_only_cannot() {
        let fig = fig8_with(0.01, &[Placement::GpuOnly, Placement::Auto]);
        assert_eq!(fig.series[1].label, "Proteus GPUs");
        assert_eq!(fig.series[2].label, "Proteus Auto");
        let q9 = fig.series[1].points.len() - 1;
        assert!(fig.series[1].points[q9].1.is_none(), "Q9 GPU-only must be a missing bar");
        assert!(fig.series[2].points[q9].1.is_some(), "Q9 Auto must complete");
        assert!(fig.series[2].points.iter().all(|p| p.1.is_some()), "Auto runs every query");
    }

    #[test]
    fn fig7_shape_two_gpus_faster_dbmsg_collapses() {
        let fig = fig7(&[1 << 20, 1 << 21]);
        for i in 0..2 {
            let one = fig.series[0].points[i].1.unwrap();
            let two = fig.series[1].points[i].1.unwrap();
            assert!(two < one, "2 GPUs {two} !< 1 GPU {one}");
            let g = fig.series[3].points[i].1.unwrap();
            assert!(g > two * 3.0, "DBMS G should collapse out-of-GPU: {g} vs {two}");
        }
    }
}
