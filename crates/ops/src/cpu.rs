//! CPU operator implementations.
//!
//! Each operator performs real work over the batch and returns the simulated
//! time charged against the worker's [`CpuCostModel`]. Within a compiled
//! pipeline these run back-to-back over one packet — the data makes a single
//! trip through the core (the JIT fusion property, §2.2); only the columns an
//! operator actually touches are charged for bandwidth.

use hape_sim::{CpuCostModel, SimTime};
use hape_storage::Batch;

use crate::agg::{AggSpec, AggState};
use crate::expr::{eval, eval_bool, Expr};

/// Cost of a source scan delivering `bytes` from local memory.
pub fn scan_cost(bytes: u64, model: &CpuCostModel) -> SimTime {
    model.seq_read(bytes)
}

/// Cost of a fused filter over `rows` input rows at `pred_ops` predicate
/// operations per row (see [`filter`]): the predicate evaluation only —
/// survivors stay in selection vectors.
pub fn filter_cost(rows: u64, pred_ops: f64, model: &CpuCostModel) -> SimTime {
    model.compute_simd(rows, pred_ops + 1.0)
}

/// Cost of a fused projection of `rows` rows at `ops` expression operations
/// per row (see [`project`]).
pub fn project_cost(rows: u64, ops: f64, model: &CpuCostModel) -> SimTime {
    model.compute_simd(rows, ops + 0.5)
}

/// Cost of folding `rows` input rows into an aggregation whose group table
/// holds `n_groups` groups *after* the fold (see [`agg_update`]): expression
/// evaluation plus random accesses into the group hash table. Split out so
/// the control plane can price a packet's fold from recorded statistics
/// while the actual fold runs on the data plane.
pub fn agg_cost(spec: &AggSpec, rows: u64, n_groups: usize, model: &CpuCostModel) -> SimTime {
    let table_bytes = (n_groups.max(1) * 64) as u64;
    model.compute_simd(rows, spec.ops_per_row()) + model.random_accesses(rows, table_bytes)
}

/// Filter: keep rows where `pred` holds. Returns the surviving batch.
///
/// Charged as a *fused* operator: the pipeline's source scan already paid
/// for streaming the packet, and in JIT-compiled pipelines survivors stay
/// in registers/selection vectors (§2.2) — so a fused filter costs only its
/// predicate evaluation. Consumers that genuinely materialise (vector-at-a-
/// time engines, pipeline breakers) charge that themselves.
pub fn filter(batch: &Batch, pred: &Expr, model: &CpuCostModel) -> (Batch, SimTime) {
    let n = batch.rows() as u64;
    let keep = eval_bool(pred, batch);
    let sel: Vec<u32> =
        keep.iter().enumerate().filter(|(_, &k)| k).map(|(i, _)| i as u32).collect();
    let out = Batch {
        columns: batch.columns.iter().map(|c| c.take(&sel)).collect(),
        partition: batch.partition,
    };
    let compute = filter_cost(n, pred.ops_per_row(), model);
    (out, compute)
}

/// Materialise one projection expression over a batch. A bare reference to
/// an `f64` column is a zero-copy view of the Arc-backed storage; everything
/// else evaluates into a fresh `f64` column.
pub fn project_column(e: &Expr, batch: &Batch) -> hape_storage::Column {
    if let Expr::Col(i) = e {
        let c = batch.col(*i);
        if c.data_type() == hape_storage::table::DataType::F64 {
            return c.clone();
        }
    }
    hape_storage::Column::from_f64(eval(e, batch).into_f64().into_owned())
}

/// Project: produce one `f64` column per expression.
pub fn project(batch: &Batch, exprs: &[Expr], model: &CpuCostModel) -> (Batch, SimTime) {
    let n = batch.rows() as u64;
    let mut cols = Vec::with_capacity(exprs.len());
    let mut ops = 0.0;
    for e in exprs {
        ops += e.ops_per_row();
        cols.push(project_column(e, batch));
    }
    let out = Batch { columns: cols, partition: batch.partition };
    // Fused projection: inputs were streamed by the scan, outputs stay in
    // registers for the next fused operator.
    let t = project_cost(n, ops, model);
    (out, t)
}

/// Fold one batch into an aggregation state.
pub fn agg_update(state: &mut AggState, batch: &Batch, model: &CpuCostModel) -> SimTime {
    let n = batch.rows() as u64;
    let spec = state.spec().clone();
    state.update(batch);
    // Fused aggregation: the argument columns were streamed by the scan;
    // what remains is expression evaluation plus random accesses into the
    // (usually tiny) group hash table.
    agg_cost(&spec, n, state.n_groups(), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use hape_sim::CpuSpec;
    use hape_storage::Column;

    fn model() -> CpuCostModel {
        CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12)
    }

    fn batch(n: usize) -> Batch {
        Batch::new(vec![
            Column::from_i32((0..n as i32).collect()),
            Column::from_f64((0..n).map(|i| i as f64).collect()),
        ])
    }

    #[test]
    fn filter_selects_and_charges() {
        let b = batch(1000);
        let pred = Expr::lt(Expr::col(0), Expr::LitI32(100));
        let (out, t) = filter(&b, &pred, &model());
        assert_eq!(out.rows(), 100);
        assert!(t.as_ns() > 0.0);
        // All columns survive, filtered.
        assert_eq!(out.col(1).as_f64()[99], 99.0);
    }

    #[test]
    fn filter_cost_scales_with_input() {
        let pred = Expr::lt(Expr::col(0), Expr::LitI32(0));
        let (_, small) = filter(&batch(1_000), &pred, &model());
        let (_, large) = filter(&batch(100_000), &pred, &model());
        assert!(large.as_secs() > 50.0 * small.as_secs());
    }

    #[test]
    fn project_computes() {
        let b = batch(10);
        let (out, _) = project(&b, &[Expr::mul(Expr::col(1), Expr::LitF64(2.0))], &model());
        assert_eq!(out.col(0).as_f64()[3], 6.0);
    }

    #[test]
    fn agg_update_folds_and_charges() {
        let spec = AggSpec::ungrouped(vec![(AggFunc::Sum, Expr::col(1))]);
        let mut st = AggState::new(spec);
        let t = agg_update(&mut st, &batch(100), &model());
        assert!(t.as_ns() > 0.0);
        assert_eq!(st.finish()[0].1[0], (0..100).sum::<usize>() as f64);
    }
}
