//! # hape-ops — relational operators
//!
//! Vectorised expression evaluation plus the scan/filter/project/aggregate
//! operators, each with a CPU implementation (charged against the analytic
//! [`hape_sim::CpuCostModel`]) and a GPU implementation (executed as kernels
//! on the [`hape_sim::GpuSim`]). Operators do *real* work over real data and
//! return the simulated time the work costs — the contract the HAPE pipeline
//! compiler builds on.

#![forbid(unsafe_code)]

pub mod agg;
pub mod cpu;
pub mod expr;
pub mod gpu;
pub mod stateful;

pub use agg::{AggFunc, AggSpec, AggState, GroupKey};
pub use expr::{
    col, eval, eval_bool, lit, ColumnResolver, Expr, ExprValue, NamedExpr, ResolveError,
};
pub use stateful::{run_stateful, StatefulAgg};

/// Commonly used items.
pub mod prelude {
    pub use crate::agg::{AggFunc, AggSpec, AggState};
    pub use crate::expr::{col, lit, Expr, NamedExpr};
    pub use crate::stateful::StatefulAgg;
}
