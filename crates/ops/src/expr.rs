//! Vectorised expression evaluation over batches.
//!
//! Expressions are evaluated one batch at a time into transient vectors —
//! within a compiled pipeline these play the role of the "registers" JIT
//! code generation keeps intermediate results in (§2.2): they are never
//! materialised across operators.

use hape_storage::table::DataType;
use hape_storage::Batch;

/// A scalar expression over the columns of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    /// `i32` literal.
    LitI32(i32),
    /// `i64` literal.
    LitI64(i64),
    /// `f64` literal.
    LitF64(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Equality.
    Eq(Box<Expr>, Box<Expr>),
    /// Less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
}

// The `add`/`sub`/`mul` constructors intentionally mirror the SQL-ish
// builder vocabulary rather than implementing `std::ops` (they take the
// operands by value as plain functions, not methods on self).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::Le(Box::new(a), Box::new(b))
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Gt(Box::new(a), Box::new(b))
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Ge(Box::new(a), Box::new(b))
    }

    /// `a && b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Approximate arithmetic operations per row (for cost charging).
    pub fn ops_per_row(&self) -> f64 {
        match self {
            Expr::Col(_) | Expr::LitI32(_) | Expr::LitI64(_) | Expr::LitF64(_) => 0.25,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Eq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => 1.0 + a.ops_per_row() + b.ops_per_row(),
        }
    }

    /// Column indices referenced by this expression.
    pub fn columns_used(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::LitI32(_) | Expr::LitI64(_) | Expr::LitF64(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Eq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }
}

/// A scalar expression over *named* columns — what the logical query
/// builder accepts before lowering.
///
/// Built with [`col`] / [`lit`] and the combinator methods, then resolved
/// against a visible column set into a positional [`Expr`] by
/// [`NamedExpr::resolve`]. String literals are legal only as the direct
/// operand of a comparison against a column; the resolver translates them
/// into dictionary codes (or a never-matching sentinel when the value is
/// absent from the dictionary, mirroring SQL semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum NamedExpr {
    /// Column reference by name.
    Col(String),
    /// `i32` literal.
    LitI32(i32),
    /// `i64` literal.
    LitI64(i64),
    /// `f64` literal.
    LitF64(f64),
    /// String literal (resolved to a dictionary code).
    LitStr(String),
    /// Addition.
    Add(Box<NamedExpr>, Box<NamedExpr>),
    /// Subtraction.
    Sub(Box<NamedExpr>, Box<NamedExpr>),
    /// Multiplication.
    Mul(Box<NamedExpr>, Box<NamedExpr>),
    /// Equality.
    Eq(Box<NamedExpr>, Box<NamedExpr>),
    /// Less-than.
    Lt(Box<NamedExpr>, Box<NamedExpr>),
    /// Less-or-equal.
    Le(Box<NamedExpr>, Box<NamedExpr>),
    /// Greater-than.
    Gt(Box<NamedExpr>, Box<NamedExpr>),
    /// Greater-or-equal.
    Ge(Box<NamedExpr>, Box<NamedExpr>),
    /// Logical and.
    And(Box<NamedExpr>, Box<NamedExpr>),
    /// Logical or.
    Or(Box<NamedExpr>, Box<NamedExpr>),
}

/// A named column reference: `col("l_shipdate")`.
pub fn col(name: impl Into<String>) -> NamedExpr {
    NamedExpr::Col(name.into())
}

/// A literal: `lit(42)`, `lit(0.05)`, `lit("ASIA")`.
pub fn lit(value: impl Into<NamedExpr>) -> NamedExpr {
    value.into()
}

impl From<i32> for NamedExpr {
    fn from(v: i32) -> Self {
        NamedExpr::LitI32(v)
    }
}

impl From<i64> for NamedExpr {
    fn from(v: i64) -> Self {
        NamedExpr::LitI64(v)
    }
}

impl From<f64> for NamedExpr {
    fn from(v: f64) -> Self {
        NamedExpr::LitF64(v)
    }
}

impl From<&str> for NamedExpr {
    fn from(v: &str) -> Self {
        NamedExpr::LitStr(v.to_string())
    }
}

impl From<String> for NamedExpr {
    fn from(v: String) -> Self {
        NamedExpr::LitStr(v)
    }
}

macro_rules! named_binop {
    ($(#[$doc:meta] $fn_name:ident => $variant:ident),* $(,)?) => {$(
        #[$doc]
        pub fn $fn_name(self, rhs: impl Into<NamedExpr>) -> NamedExpr {
            NamedExpr::$variant(Box::new(self), Box::new(rhs.into()))
        }
    )*};
}

// `add`/`sub`/`mul` are the query-builder vocabulary (`col("a").add(lit(1))`),
// deliberately consuming `impl Into<NamedExpr>` rather than the std::ops
// signatures.
#[allow(clippy::should_implement_trait)]
impl NamedExpr {
    named_binop! {
        /// `self + rhs`.
        add => Add,
        /// `self - rhs`.
        sub => Sub,
        /// `self * rhs`.
        mul => Mul,
        /// `self == rhs`.
        eq => Eq,
        /// `self < rhs`.
        lt => Lt,
        /// `self <= rhs`.
        le => Le,
        /// `self > rhs`.
        gt => Gt,
        /// `self >= rhs`.
        ge => Ge,
        /// `self && rhs`.
        and => And,
        /// `self || rhs`.
        or => Or,
    }

    /// `lo <= self < hi` — the half-open range filter every date predicate
    /// in TPC-H uses.
    pub fn between(self, lo: impl Into<NamedExpr>, hi: impl Into<NamedExpr>) -> NamedExpr {
        let lo_cmp = self.clone().ge(lo);
        let hi_cmp = self.lt(hi);
        lo_cmp.and(hi_cmp)
    }

    /// Column names referenced by this expression (deduplicated, sorted).
    pub fn columns_used(&self) -> Vec<String> {
        let mut cols = Vec::new();
        self.collect_named_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_named_columns(&self, out: &mut Vec<String>) {
        match self {
            NamedExpr::Col(n) => out.push(n.clone()),
            NamedExpr::LitI32(_)
            | NamedExpr::LitI64(_)
            | NamedExpr::LitF64(_)
            | NamedExpr::LitStr(_) => {}
            NamedExpr::Add(a, b)
            | NamedExpr::Sub(a, b)
            | NamedExpr::Mul(a, b)
            | NamedExpr::Eq(a, b)
            | NamedExpr::Lt(a, b)
            | NamedExpr::Le(a, b)
            | NamedExpr::Gt(a, b)
            | NamedExpr::Ge(a, b)
            | NamedExpr::And(a, b)
            | NamedExpr::Or(a, b) => {
                a.collect_named_columns(out);
                b.collect_named_columns(out);
            }
        }
    }

    /// Resolve names into positions, producing a positional [`Expr`].
    ///
    /// String literals are resolved through the comparison they appear in:
    /// `col("r_name").eq(lit("ASIA"))` becomes an integer comparison on the
    /// column's dictionary code.
    pub fn resolve<R: ColumnResolver>(&self, r: &R) -> Result<Expr, ResolveError> {
        match self {
            NamedExpr::Col(n) => Ok(Expr::Col(self.resolve_col(n, r)?)),
            NamedExpr::LitI32(v) => Ok(Expr::LitI32(*v)),
            NamedExpr::LitI64(v) => Ok(Expr::LitI64(*v)),
            NamedExpr::LitF64(v) => Ok(Expr::LitF64(*v)),
            NamedExpr::LitStr(s) => {
                Err(ResolveError::StringLiteralContext { literal: s.clone() })
            }
            NamedExpr::Add(a, b) => Ok(Expr::add(a.resolve(r)?, b.resolve(r)?)),
            NamedExpr::Sub(a, b) => Ok(Expr::sub(a.resolve(r)?, b.resolve(r)?)),
            NamedExpr::Mul(a, b) => Ok(Expr::mul(a.resolve(r)?, b.resolve(r)?)),
            NamedExpr::Eq(a, b) => self.resolve_cmp(a, b, r, Expr::eq),
            NamedExpr::Lt(a, b) => self.resolve_cmp(a, b, r, Expr::lt),
            NamedExpr::Le(a, b) => self.resolve_cmp(a, b, r, Expr::le),
            NamedExpr::Gt(a, b) => self.resolve_cmp(a, b, r, Expr::gt),
            NamedExpr::Ge(a, b) => self.resolve_cmp(a, b, r, Expr::ge),
            NamedExpr::And(a, b) => Ok(Expr::and(a.resolve(r)?, b.resolve(r)?)),
            NamedExpr::Or(a, b) => Ok(Expr::or(a.resolve(r)?, b.resolve(r)?)),
        }
    }

    fn resolve_col<R: ColumnResolver>(&self, name: &str, r: &R) -> Result<usize, ResolveError> {
        r.index_of(name).ok_or_else(|| ResolveError::UnknownColumn { column: name.to_string() })
    }

    /// Resolve a comparison, translating a string-literal operand against
    /// the column on the other side.
    fn resolve_cmp<R: ColumnResolver>(
        &self,
        a: &NamedExpr,
        b: &NamedExpr,
        r: &R,
        build: fn(Expr, Expr) -> Expr,
    ) -> Result<Expr, ResolveError> {
        match (a, b) {
            (NamedExpr::Col(c), NamedExpr::LitStr(s)) => {
                let idx = self.resolve_col(c, r)?;
                Ok(build(Expr::Col(idx), Expr::LitI32(r.str_code(c, s)?)))
            }
            (NamedExpr::LitStr(s), NamedExpr::Col(c)) => {
                let idx = self.resolve_col(c, r)?;
                Ok(build(Expr::LitI32(r.str_code(c, s)?), Expr::Col(idx)))
            }
            _ => Ok(build(a.resolve(r)?, b.resolve(r)?)),
        }
    }
}

/// What [`NamedExpr::resolve`] needs from the surrounding scope.
pub trait ColumnResolver {
    /// Positional index of a visible column, if any.
    fn index_of(&self, name: &str) -> Option<usize>;

    /// Dictionary code of `value` in string column `name`. Implementations
    /// return a never-matching sentinel (e.g. `-1`) when `value` is not in
    /// the dictionary, and an error when the column is not a string column.
    fn str_code(&self, name: &str, value: &str) -> Result<i32, ResolveError>;
}

/// Why a [`NamedExpr`] failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name is not visible in the current scope.
    UnknownColumn {
        /// The unresolved name.
        column: String,
    },
    /// A string literal appeared outside a direct column comparison.
    StringLiteralContext {
        /// The literal.
        literal: String,
    },
    /// A string literal was compared against a non-string column.
    StringLiteralType {
        /// The literal.
        literal: String,
        /// The non-string column.
        column: String,
    },
}

/// Result of evaluating an expression over a batch.
///
/// The numeric arm borrows the Arc-backed column storage whenever the
/// expression is a direct reference to an `f64` column — the hot
/// aggregate-argument and projection paths never copy those values; only
/// genuinely computed results own their vector.
#[derive(Debug, Clone)]
pub enum ExprValue<'a> {
    /// Numeric values (all arithmetic is carried out in `f64`; exact-integer
    /// paths matter only for key columns, which operators read directly).
    /// Borrowed when the expression is a bare `f64` column reference.
    F64(std::borrow::Cow<'a, [f64]>),
    /// Boolean vector (predicates).
    Bool(Vec<bool>),
}

impl<'a> ExprValue<'a> {
    /// The numeric values; panics on booleans.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ExprValue::F64(v) => v,
            ExprValue::Bool(_) => panic!("expected numeric expression, got boolean"),
        }
    }

    /// The boolean vector; panics on numerics.
    pub fn as_bool(&self) -> &[bool] {
        match self {
            ExprValue::Bool(v) => v,
            ExprValue::F64(_) => panic!("expected boolean expression, got numeric"),
        }
    }

    /// The numeric values as a possibly-borrowed slice; panics on booleans.
    pub fn into_f64(self) -> std::borrow::Cow<'a, [f64]> {
        match self {
            ExprValue::F64(v) => v,
            ExprValue::Bool(_) => panic!("expected numeric expression, got boolean"),
        }
    }
}

fn column_as_f64(batch: &Batch, i: usize) -> std::borrow::Cow<'_, [f64]> {
    use std::borrow::Cow;
    let c = batch.col(i);
    match c.data_type() {
        DataType::I32 | DataType::Date => {
            Cow::Owned(c.as_i32().iter().map(|&v| v as f64).collect())
        }
        DataType::I64 => Cow::Owned(c.as_i64().iter().map(|&v| v as f64).collect()),
        DataType::F64 => Cow::Borrowed(c.as_f64()),
        DataType::Str => Cow::Owned(c.as_codes().iter().map(|&v| v as f64).collect()),
    }
}

/// Evaluate `expr` over `batch`.
pub fn eval<'a>(expr: &Expr, batch: &'a Batch) -> ExprValue<'a> {
    let n = batch.rows();
    match expr {
        Expr::Col(i) => ExprValue::F64(column_as_f64(batch, *i)),
        Expr::LitI32(v) => ExprValue::F64(std::borrow::Cow::Owned(vec![*v as f64; n])),
        Expr::LitI64(v) => ExprValue::F64(std::borrow::Cow::Owned(vec![*v as f64; n])),
        Expr::LitF64(v) => ExprValue::F64(std::borrow::Cow::Owned(vec![*v; n])),
        Expr::Add(a, b) => binary_num(a, b, batch, |x, y| x + y),
        Expr::Sub(a, b) => binary_num(a, b, batch, |x, y| x - y),
        Expr::Mul(a, b) => binary_num(a, b, batch, |x, y| x * y),
        Expr::Eq(a, b) => binary_cmp(a, b, batch, |x, y| x == y),
        Expr::Lt(a, b) => binary_cmp(a, b, batch, |x, y| x < y),
        Expr::Le(a, b) => binary_cmp(a, b, batch, |x, y| x <= y),
        Expr::Gt(a, b) => binary_cmp(a, b, batch, |x, y| x > y),
        Expr::Ge(a, b) => binary_cmp(a, b, batch, |x, y| x >= y),
        Expr::And(a, b) => binary_bool(a, b, batch, |x, y| x && y),
        Expr::Or(a, b) => binary_bool(a, b, batch, |x, y| x || y),
    }
}

fn binary_num<'a>(
    a: &Expr,
    b: &Expr,
    batch: &'a Batch,
    f: impl Fn(f64, f64) -> f64,
) -> ExprValue<'a> {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_f64(), vb.as_f64());
    ExprValue::F64(std::borrow::Cow::Owned(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect()))
}

fn binary_cmp<'a>(
    a: &Expr,
    b: &Expr,
    batch: &'a Batch,
    f: impl Fn(f64, f64) -> bool,
) -> ExprValue<'a> {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_f64(), vb.as_f64());
    ExprValue::Bool(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect())
}

fn binary_bool<'a>(
    a: &Expr,
    b: &Expr,
    batch: &'a Batch,
    f: impl Fn(bool, bool) -> bool,
) -> ExprValue<'a> {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_bool(), vb.as_bool());
    ExprValue::Bool(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect())
}

/// Evaluate a predicate into a boolean vector.
pub fn eval_bool(expr: &Expr, batch: &Batch) -> Vec<bool> {
    match eval(expr, batch) {
        ExprValue::Bool(v) => v,
        ExprValue::F64(_) => panic!("predicate does not evaluate to boolean"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::Column;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_i32(vec![1, 2, 3, 4]),
            Column::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
        ])
    }

    #[test]
    fn arithmetic() {
        // col1 * (1 - col0) — the Q1 `extendedprice * (1 - discount)` shape.
        let e = Expr::mul(Expr::col(1), Expr::sub(Expr::LitF64(1.0), Expr::col(0)));
        let b = batch();
        let v = eval(&e, &b);
        assert_eq!(v.as_f64(), &[0.0, -20.0, -60.0, -120.0]);
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::and(
            Expr::ge(Expr::col(0), Expr::LitI32(2)),
            Expr::lt(Expr::col(1), Expr::LitF64(40.0)),
        );
        assert_eq!(eval_bool(&e, &batch()), vec![false, true, true, false]);
    }

    #[test]
    fn ops_per_row_counts_nodes() {
        let e = Expr::mul(Expr::col(1), Expr::sub(Expr::LitF64(1.0), Expr::col(0)));
        assert!(e.ops_per_row() > 2.0);
        assert!(Expr::col(0).ops_per_row() < 1.0);
    }

    #[test]
    fn f64_column_reference_borrows_the_storage() {
        // The hot aggregate-argument path: a bare `f64` column reference
        // must evaluate to a borrow of the Arc-backed slice, not a copy.
        let b = batch();
        match eval(&Expr::col(1), &b) {
            ExprValue::F64(std::borrow::Cow::Borrowed(s)) => {
                assert_eq!(s.as_ptr(), b.col(1).as_f64().as_ptr());
            }
            other => panic!("expected a borrowed slice, got {other:?}"),
        }
        // Computed expressions still own their result.
        match eval(&Expr::add(Expr::col(1), Expr::LitF64(0.0)), &b) {
            ExprValue::F64(std::borrow::Cow::Owned(_)) => {}
            other => panic!("expected an owned vector, got {other:?}"),
        }
    }

    #[test]
    fn columns_used_deduplicates() {
        let e = Expr::add(Expr::col(1), Expr::mul(Expr::col(0), Expr::col(1)));
        assert_eq!(e.columns_used(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "boolean")]
    fn type_confusion_panics() {
        let e = Expr::add(Expr::col(0), Expr::col(1));
        eval_bool(&e, &batch());
    }

    /// Toy scope: `a` at 0 (numeric), `region` at 1 (strings ASIA=7).
    struct ToyScope;

    impl ColumnResolver for ToyScope {
        fn index_of(&self, name: &str) -> Option<usize> {
            match name {
                "a" => Some(0),
                "region" => Some(1),
                _ => None,
            }
        }

        fn str_code(&self, name: &str, value: &str) -> Result<i32, ResolveError> {
            if name != "region" {
                return Err(ResolveError::StringLiteralType {
                    literal: value.to_string(),
                    column: name.to_string(),
                });
            }
            Ok(if value == "ASIA" { 7 } else { -1 })
        }
    }

    #[test]
    fn named_exprs_resolve_to_positions() {
        let e = col("a").mul(lit(2.0)).resolve(&ToyScope).unwrap();
        let b = batch();
        let v = eval(&e, &b);
        assert_eq!(v.as_f64(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn named_unknown_column_reported() {
        let err = col("missing").le(lit(3)).resolve(&ToyScope).unwrap_err();
        assert_eq!(err, ResolveError::UnknownColumn { column: "missing".into() });
    }

    #[test]
    fn string_literal_becomes_dictionary_code() {
        let e = col("region").eq(lit("ASIA")).resolve(&ToyScope).unwrap();
        assert_eq!(e.columns_used(), vec![1]);
        // And an absent value resolves to the never-matching sentinel.
        let e = col("region").eq(lit("ATLANTIS")).resolve(&ToyScope).unwrap();
        match e {
            Expr::Eq(_, rhs) => assert_eq!(*rhs, Expr::LitI32(-1)),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn string_literal_against_numeric_column_rejected() {
        let err = col("a").eq(lit("ASIA")).resolve(&ToyScope).unwrap_err();
        assert!(matches!(err, ResolveError::StringLiteralType { .. }));
    }

    #[test]
    fn stray_string_literal_rejected() {
        let err = col("a").add(lit("ASIA")).resolve(&ToyScope).unwrap_err();
        assert!(matches!(err, ResolveError::StringLiteralContext { .. }));
    }

    #[test]
    fn between_expands_to_half_open_range() {
        let e = col("a").between(lit(2), lit(4)).resolve(&ToyScope).unwrap();
        assert_eq!(eval_bool(&e, &batch()), vec![false, true, true, false]);
    }

    #[test]
    fn named_columns_used_deduplicates() {
        let e = col("a").add(col("region").mul(col("a")));
        assert_eq!(e.columns_used(), vec!["a".to_string(), "region".to_string()]);
    }
}
